"""Capability certificates and Neuman-style cascaded delegation.

Section 6.5 of the paper describes how a capability issued by a Community
Authorization Server (CAS) travels hop-by-hop to the end domain:

* The CAS issues the user a *capability certificate*: subject is the user
  (CN-tagged as a capability subject), the subject public key is a fresh
  **proxy key** whose private half the user holds, and the X.509v3
  extension field carries the capability attributes (e.g. "all
  capabilities of the ESnet group").
* To delegate, the current holder mints a new capability certificate whose
  subject is the delegate and whose subject public key is the delegate's
  *existing* public key (known from the SSL handshake — no new key pair is
  created).  The extensions are copied and may only be **narrowed** by
  additional restrictions such as ``valid for RAR``.  The new certificate
  is signed with the private key matching the public key in the *previous*
  certificate (the cascaded-authorization rule of Neuman [19]).
* The end domain submits the whole chain to a policy engine, which runs
  the seven checks the paper enumerates.  :func:`verify_delegation_chain`
  implements checks 1–6 (issuance, every signing-key linkage, proof of
  possession by the final holder, and tamper detection on the capability
  sets); check 7 — actually *using* the capabilities for authorization —
  is the policy engine's job (:mod:`repro.policy`).
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.crypto import cache as verification_cache
from repro.crypto import canonical
from repro.crypto.dn import DistinguishedName
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, get_scheme
from repro.crypto.x509 import Certificate, sign_certificate
from repro.errors import DelegationError
from repro.obs import metrics as obs_metrics
from repro.obs.audit import ledger as obs_audit

__all__ = [
    "EXT_CAPABILITY_FLAG",
    "EXT_CAPABILITIES",
    "EXT_RESTRICTIONS",
    "ProxyCredential",
    "issue_capability",
    "delegate",
    "DelegationResult",
    "RevocationOracle",
    "verify_delegation_chain",
    "split_capability_chains",
    "prove_possession",
    "check_possession",
    "capability_set",
    "restriction_set",
    "is_capability_certificate",
]

#: Extension keys used on capability certificates ("Capability Certificate
#: Flag" and the attribute payload in the paper's Figure 7).
EXT_CAPABILITY_FLAG = "capability_certificate_flag"
EXT_CAPABILITIES = "capabilities"
EXT_RESTRICTIONS = "restrictions"

#: CN suffix marking a subject DN as a capability subject ("potentially
#: modified to indicate that this is a capability certificate").
CAPABILITY_CN_TAG = " (capability)"

logger = logging.getLogger(__name__)

#: Buckets for delegation-chain lengths (certificates per chain).
_CHAIN_LENGTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class ProxyCredential:
    """What a capability holder possesses: the certificate naming it as the
    subject plus the private key matching the certificate's subject public
    key.  Holding the private key is what makes delegation (and proof of
    possession) possible."""

    certificate: Certificate
    private_key: PrivateKey

    @property
    def capabilities(self) -> frozenset[str]:
        return capability_set(self.certificate)

    @property
    def restrictions(self) -> frozenset[str]:
        return restriction_set(self.certificate)


def capability_set(cert: Certificate) -> frozenset[str]:
    """The capability strings carried by *cert* (empty when absent)."""
    return frozenset(cert.extension(EXT_CAPABILITIES, ()))


def restriction_set(cert: Certificate) -> frozenset[str]:
    """The restriction strings carried by *cert* (empty when absent)."""
    return frozenset(cert.extension(EXT_RESTRICTIONS, ()))


def is_capability_certificate(cert: Certificate) -> bool:
    return bool(cert.extension(EXT_CAPABILITY_FLAG, False))


def issue_capability(
    *,
    issuer: DistinguishedName,
    issuer_signing_key: PrivateKey,
    subject: DistinguishedName,
    capabilities: Iterable[str],
    serial: int,
    rng: random.Random,
    scheme: str = "rsa",
    not_before: float = 0.0,
    not_after: float = 10 * 365 * 24 * 3600.0,
    tag_subject: bool = True,
) -> ProxyCredential:
    """Issue a fresh capability certificate with a new proxy key pair.

    This is what a CAS does at "grid-login": the returned credential's
    private key is handed to the user; the certificate can be shown to
    anyone.
    """
    caps = tuple(sorted(set(capabilities)))
    if not caps:
        raise DelegationError("a capability certificate needs at least one capability")
    proxy: KeyPair = get_scheme(scheme).generate(rng)
    subject_dn = subject
    if tag_subject:
        cn = subject.common_name or "capability-subject"
        subject_dn = subject.with_cn(cn + CAPABILITY_CN_TAG)
    cert = sign_certificate(
        serial=serial,
        issuer=issuer,
        subject=subject_dn,
        public_key=proxy.public,
        signing_key=issuer_signing_key,
        not_before=not_before,
        not_after=not_after,
        extensions={
            EXT_CAPABILITY_FLAG: True,
            EXT_CAPABILITIES: caps,
            EXT_RESTRICTIONS: (),
        },
    )
    return ProxyCredential(certificate=cert, private_key=proxy.private)


def delegate(
    holder: ProxyCredential,
    *,
    delegate_subject: DistinguishedName,
    delegate_public_key: PublicKey,
    extra_restrictions: Iterable[str] = (),
    drop_capabilities: Iterable[str] = (),
    serial: int | None = None,
) -> Certificate:
    """Delegate *holder*'s capability to a new subject.

    The new certificate is signed with the holder's private proxy key, its
    subject public key is the delegate's existing key (per the paper, the
    key learned in the SSL handshake), capabilities may only shrink and
    restrictions may only grow.  Returns the new capability certificate;
    the delegate's :class:`ProxyCredential` pairs it with the delegate's
    own private key.
    """
    parent = holder.certificate
    if not is_capability_certificate(parent):
        raise DelegationError("cannot delegate: parent is not a capability certificate")
    caps = capability_set(parent) - frozenset(drop_capabilities)
    if not caps:
        raise DelegationError("delegation would drop every capability")
    restrictions = restriction_set(parent) | frozenset(extra_restrictions)
    cert = sign_certificate(
        serial=parent.serial if serial is None else serial,
        issuer=parent.subject,
        subject=delegate_subject,
        public_key=delegate_public_key,
        signing_key=holder.private_key,
        not_before=parent.not_before,
        not_after=parent.not_after,
        extensions={
            EXT_CAPABILITY_FLAG: True,
            EXT_CAPABILITIES: tuple(sorted(caps)),
            EXT_RESTRICTIONS: tuple(sorted(restrictions)),
        },
    )
    registry = obs_metrics.get_registry()
    if registry is not None:
        registry.counter(
            "delegations_total", "Capability delegations minted",
        ).inc()
    logger.debug(
        "delegated %d capabilities from %s to %s",
        len(caps), parent.subject, delegate_subject,
    )
    return cert


# ---------------------------------------------------------------------------
# Proof of possession
# ---------------------------------------------------------------------------

_POSSESSION_CONTEXT = "repro.capability.possession"


def prove_possession(private_key: PrivateKey, nonce: bytes) -> bytes:
    """Sign a verifier-chosen nonce, proving possession of *private_key*."""
    scheme = get_scheme(private_key.scheme)
    return scheme.sign(private_key, canonical.encode([_POSSESSION_CONTEXT, nonce]))


def check_possession(cert: Certificate, nonce: bytes, proof: bytes) -> bool:
    """Verify a proof produced by :func:`prove_possession` against the
    subject public key of *cert*."""
    scheme = get_scheme(cert.public_key.scheme)
    return scheme.verify(
        cert.public_key, canonical.encode([_POSSESSION_CONTEXT, nonce]), proof
    )


# ---------------------------------------------------------------------------
# Chain verification — the paper's seven checks (1–6 here, 7 in repro.policy)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DelegationResult:
    """Outcome of a successful chain verification.

    ``capabilities`` is the *effective* (most-narrowed) capability set,
    ``restrictions`` the union of all restrictions accumulated along the
    chain, and ``holders`` the subjects in delegation order (user first).
    """

    capabilities: frozenset[str]
    restrictions: frozenset[str]
    holders: tuple[DistinguishedName, ...]
    issuer: DistinguishedName


def _note_chain_checks(
    chain: Sequence[Certificate], source: str, *, detail: str = ""
) -> None:
    """Note each chain certificate plus a summary delegation check into
    the audit pending buffer, tagged with the verdict *source*."""
    for cert in chain:
        obs_audit.note_check(
            "capability_certificate",
            subject=str(cert.subject),
            fingerprint=cert.fingerprint,
            source=source,
        )
    obs_audit.note_check(
        "delegation",
        subject=(
            f"{chain[0].issuer} -> {chain[-1].subject}" if chain else ""
        ),
        fingerprint=chain[-1].fingerprint if chain else "",
        source=source,
        detail=detail or f"chain length {len(chain)}",
    )


PossessionProver = Callable[[bytes], bytes]

#: Oracle answering "is this certificate revoked right now?" — typically
#: a CA's :meth:`~repro.crypto.x509.CertificateAuthority.is_revoked` or a
#: truststore's aggregate checker.
RevocationOracle = Callable[[Certificate], bool]


def verify_delegation_chain(
    chain: Sequence[Certificate],
    *,
    trusted_issuers: dict[DistinguishedName, PublicKey],
    at_time: float = 0.0,
    possession_nonce: bytes | None = None,
    possession_prover: PossessionProver | None = None,
    revocation_checker: RevocationOracle | None = None,
) -> DelegationResult:
    """Verify a capability delegation chain, root (CAS-issued) first.

    Implements checks 1–6 from Section 6.5:

    1. a trusted issuer (CAS) issued the root capability certificate;
    2. each delegation was signed with the private key matching the public
       (proxy) key of the *previous* certificate — for the first hop this
       proves the user could use the private proxy key, for later hops it
       proves each BB's delegation;
    3. + 4. (the same linkage rule applied at every subsequent hop);
    5. when a nonce and prover are supplied, the final holder proves
       possession of the private key matching the final certificate;
    6. the capability payload was never widened and restrictions were
       never removed along the chain.

    *revocation_checker*, when supplied, additionally rejects any chain
    element the oracle reports as revoked.

    Raises :class:`~repro.errors.DelegationError` on any violation.

    With verification caching enabled (:mod:`repro.crypto.cache`), a
    chain already verified under the same trusted issuer key is served
    from cache; validity windows, the revocation oracle, and the
    proof-of-possession exchange (check 5 needs a live nonce) are always
    re-run on the hit path.
    """
    caches = verification_cache.get_caches()
    cache_key: tuple[object, ...] | None = None
    if caches is not None and chain:
        issuer_key_for_cache = trusted_issuers.get(chain[0].issuer)
        if issuer_key_for_cache is not None:
            cache_key = (
                tuple(cert.fingerprint for cert in chain),
                str(chain[0].issuer),
                issuer_key_for_cache.key_id,
            )
            entry = caches.get_verdict("delegation", cache_key)
            if entry is not None and _delegation_hit_valid(
                entry,
                at_time=at_time,
                possession_nonce=possession_nonce,
                possession_prover=possession_prover,
                revocation_checker=revocation_checker,
            ):
                cached_result: DelegationResult = entry[0]
                if obs_audit.get_ledger() is not None:
                    _note_chain_checks(chain, "cache:delegation")
                return cached_result
    try:
        result = _verify_delegation_chain_metered(
            chain,
            trusted_issuers=trusted_issuers,
            at_time=at_time,
            possession_nonce=possession_nonce,
            possession_prover=possession_prover,
            revocation_checker=revocation_checker,
        )
    except DelegationError as exc:
        obs_audit.note_check(
            "delegation",
            fingerprint=chain[-1].fingerprint if chain else "",
            verdict="rejected",
            source="fresh",
            detail=str(exc),
        )
        raise
    if obs_audit.get_ledger() is not None:
        _note_chain_checks(chain, "fresh")
    if caches is not None and cache_key is not None:
        caches.put_verdict(
            "delegation", cache_key, (result, tuple(chain)),
            tuple(cert.fingerprint for cert in chain),
        )
    return result


def _delegation_hit_valid(
    entry: tuple[DelegationResult, tuple[Certificate, ...]],
    *,
    at_time: float,
    possession_nonce: bytes | None,
    possession_prover: PossessionProver | None,
    revocation_checker: RevocationOracle | None,
) -> bool:
    """Re-run the time/revocation/possession-dependent subset of the §6.5
    checks on a cache hit; signature math and narrowing are immutable
    facts of the (content-addressed) chain and stay cached."""
    _, chain = entry
    for cert in chain:
        if not cert.valid_at(at_time):
            return False
        if revocation_checker is not None and revocation_checker(cert):
            return False
    if possession_nonce is not None:
        if possession_prover is None:
            return False
        proof = possession_prover(possession_nonce)
        if not check_possession(chain[-1], possession_nonce, proof):
            return False
    return True


def _verify_delegation_chain_metered(
    chain: Sequence[Certificate],
    *,
    trusted_issuers: dict[DistinguishedName, PublicKey],
    at_time: float,
    possession_nonce: bytes | None,
    possession_prover: PossessionProver | None,
    revocation_checker: RevocationOracle | None,
) -> DelegationResult:
    registry = obs_metrics.get_registry()
    if registry is None:
        return _verify_delegation_chain_impl(
            chain,
            trusted_issuers=trusted_issuers,
            at_time=at_time,
            possession_nonce=possession_nonce,
            possession_prover=possession_prover,
            revocation_checker=revocation_checker,
        )
    timer = registry.histogram(
        "delegation_chain_verify_seconds",
        "Wall-clock cost of one delegation-chain verification",
    )
    try:
        with timer.time():
            result = _verify_delegation_chain_impl(
                chain,
                trusted_issuers=trusted_issuers,
                at_time=at_time,
                possession_nonce=possession_nonce,
                possession_prover=possession_prover,
                revocation_checker=revocation_checker,
            )
    except DelegationError as exc:
        registry.counter(
            "delegation_chain_verifications_total",
            "Capability delegation-chain verifications, by result",
        ).inc(result="fail")
        logger.debug("delegation chain rejected: %s", exc)
        raise
    registry.counter(
        "delegation_chain_verifications_total",
        "Capability delegation-chain verifications, by result",
    ).inc(result="ok")
    registry.histogram(
        "delegation_chain_length",
        "Certificates per verified delegation chain",
        buckets=_CHAIN_LENGTH_BUCKETS,
    ).observe(len(chain))
    return result


def _verify_delegation_chain_impl(
    chain: Sequence[Certificate],
    *,
    trusted_issuers: dict[DistinguishedName, PublicKey],
    at_time: float = 0.0,
    possession_nonce: bytes | None = None,
    possession_prover: PossessionProver | None = None,
    revocation_checker: RevocationOracle | None = None,
) -> DelegationResult:
    if not chain:
        raise DelegationError("empty delegation chain")

    if revocation_checker is not None:
        for idx, cert in enumerate(chain):
            if revocation_checker(cert):
                raise DelegationError(
                    f"chain element {idx} ({cert.subject}, serial "
                    f"{cert.serial}) has been revoked"
                )

    root = chain[0]
    if not is_capability_certificate(root):
        raise DelegationError("root certificate lacks the capability flag")
    # Check 1: trusted issuance of the root.
    issuer_key = trusted_issuers.get(root.issuer)
    if issuer_key is None:
        raise DelegationError(f"capability issuer {root.issuer} is not trusted")
    if not root.verify_signature(issuer_key):
        raise DelegationError(
            f"root capability signature does not verify under issuer {root.issuer}"
        )

    caps = capability_set(root)
    restrictions = restriction_set(root)
    holders = [root.subject]

    prev = root
    for idx, cert in enumerate(chain[1:], start=1):
        if not is_capability_certificate(cert):
            raise DelegationError(f"chain element {idx} lacks the capability flag")
        if not cert.valid_at(at_time):
            raise DelegationError(
                f"chain element {idx} ({cert.subject}) not valid at t={at_time}"
            )
        if cert.issuer != prev.subject:
            raise DelegationError(
                f"chain element {idx} names issuer {cert.issuer}, expected the "
                f"previous subject {prev.subject}"
            )
        # Checks 2–4: signed with the key matching the previous certificate's
        # subject public key (the proxy-key cascade).
        if not cert.verify_signature(prev.public_key):
            raise DelegationError(
                f"delegation to {cert.subject} was not signed with the proxy key "
                f"of {prev.subject}"
            )
        # Check 6: capability sets may only narrow; restrictions only grow.
        child_caps = capability_set(cert)
        if not child_caps <= caps:
            raise DelegationError(
                f"delegation to {cert.subject} widens capabilities: "
                f"{sorted(child_caps - caps)}"
            )
        if not child_caps:
            raise DelegationError(f"delegation to {cert.subject} carries no capabilities")
        child_restrictions = restriction_set(cert)
        if not restrictions <= child_restrictions:
            raise DelegationError(
                f"delegation to {cert.subject} drops restrictions: "
                f"{sorted(restrictions - child_restrictions)}"
            )
        caps = child_caps
        restrictions = child_restrictions
        holders.append(cert.subject)
        prev = cert

    if not root.valid_at(at_time):
        raise DelegationError(f"root capability not valid at t={at_time}")

    # Check 5: proof of possession by the final holder.
    if possession_nonce is not None:
        if possession_prover is None:
            raise DelegationError("possession nonce supplied without a prover")
        proof = possession_prover(possession_nonce)
        if not check_possession(chain[-1], possession_nonce, proof):
            raise DelegationError(
                f"final holder failed proof of possession for {chain[-1].subject}"
            )

    return DelegationResult(
        capabilities=frozenset(caps),
        restrictions=frozenset(restrictions),
        holders=tuple(holders),
        issuer=root.issuer,
    )


def split_capability_chains(
    certs: Sequence[Certificate],
) -> list[tuple[Certificate, ...]]:
    """Partition a flat capability-certificate list into delegation chains.

    A user may hold credentials from several communities; all their
    certificates travel together in the RAR.  Each certificate attaches to
    the chain whose current tip it chains from — issuer DN matches the
    tip's subject *and* the signature verifies under the tip's (proxy)
    public key (the only reliable discriminator when one holder delegates
    several communities to the same next hop).  Certificates that chain
    from nothing seen so far start new chains (the CAS-issued roots).
    """
    chains: list[list[Certificate]] = []
    for cert in certs:
        attached = False
        for chain in chains:
            tip = chain[-1]
            if (
                cert.issuer == tip.subject
                and capability_set(cert) <= capability_set(tip)
                and cert.verify_signature(tip.public_key)
            ):
                chain.append(cert)
                attached = True
                break
        if not attached:
            chains.append([cert])
    return [tuple(chain) for chain in chains]
