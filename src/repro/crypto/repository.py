"""A certificate repository — the paper's second key-distribution option.

§6.4: "Maintain a certificate repository accessible through secure LDAP.
Upon receipt of the reservation specification, C would extract the
distinguished name (DN) of A from it, and would search in the certificate
repository for the related public key.  It is important to note that
there has to be a strong trust relationship with the repository."

This module implements that alternative so the ablation benchmark can
compare it against the paper's preferred in-request scheme with real
code, not a model:

* :class:`CertificateRepository` — DN-indexed certificate store with
  query counting and simulated per-lookup latency;
* :func:`repro.core.trust.verify_rar_with_repository` — a verification
  path that resolves inner-signer keys from the repository instead of
  from introduced certificates.

The "strong trust relationship" requirement is explicit: a repository is
constructed *by* a trusting party with a flag acknowledging the trust,
and lookups of DNs the repository does not vouch for fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.crypto.dn import DistinguishedName
from repro.crypto.x509 import Certificate
from repro.errors import CertificateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector

__all__ = ["CertificateRepository"]


@dataclass
class CertificateRepository:
    """A trusted, DN-indexed certificate directory.

    ``lookup_latency_s`` models the secure-LDAP round trip a verifier
    pays per unknown signer — the quantity the paper's in-request scheme
    eliminates.
    """

    name: str = "ldap.grid"
    lookup_latency_s: float = 0.002
    _store: dict[DistinguishedName, Certificate] = field(default_factory=dict)
    #: Total lookups served (the ablation's cost metric).
    queries: int = 0
    #: Simulated time spent answering lookups.
    total_latency_s: float = 0.0
    #: Optional deterministic fault injector (timeout/unavailable).
    injector: "FaultInjector | None" = None

    def publish(self, certificate: Certificate) -> None:
        """Publish (or replace) the certificate for its subject DN."""
        self._store[certificate.subject] = certificate

    def withdraw(self, dn: DistinguishedName) -> None:
        if dn not in self._store:
            raise CertificateError(f"{self.name}: no certificate for {dn}")
        del self._store[dn]

    def lookup(self, dn: DistinguishedName) -> Certificate:
        """Resolve *dn* to a certificate; raises
        :class:`~repro.errors.CertificateError` for unknown DNs (or
        :class:`~repro.errors.RepositoryUnavailableError` under an
        injected outage)."""
        if self.injector is not None:
            self.injector.repository_op(self.name)
        self.queries += 1
        self.total_latency_s += self.lookup_latency_s
        cert = self._store.get(dn)
        if cert is None:
            raise CertificateError(f"{self.name}: no certificate for {dn}")
        return cert

    def __contains__(self, dn: DistinguishedName) -> bool:
        return dn in self._store

    def __len__(self) -> int:
        return len(self._store)
