"""Batched transitive-trust verification — the miss path, amortized.

A :class:`~repro.core.concurrent.ConcurrentSignaller` burst presents the
same shape of work over and over: every RAR in the batch descends from
the same user request, carries the same capability-delegation chain, and
was wrapped by BBs whose certificates repeat across items.  Verified
sequentially with cold caches, each item re-runs the signature math for
every shared layer — the exact O(batch x chain) cost this module removes.

:func:`verify_rar_batch` checks a whole batch in one pass:

* **Dedup by content digest.**  Items whose ``(RAR bytes, verifier,
  peer certificate)`` triple is identical are verified once; duplicates
  reuse the verdict (or its error) outright.
* **Shared sub-verification work.**  All items run under one
  :class:`~repro.crypto.cache.VerificationCaches` scope, so inner-layer
  signatures, introduced-certificate checks and capability-delegation
  links shared *between* distinct RARs are each verified once — the
  signature cache keys on content digest, which is exactly the sharing
  structure of a batch.  When the PR-5 process-global caches are
  enabled, they are used directly and the batch **feeds them in bulk**:
  later single-item traffic hits verdicts this batch established.
* **Per-item isolation.**  A bad RAR rejects alone: its error is
  captured in its :class:`BatchResult`; every other item still verifies
  (and still benefits from the shared work).  Verdict-cache hits are
  re-guarded per item by the PR-5 validity/revocation checks, so a
  revocation landing mid-batch can never be papered over by the memo.

Equivalence with sequential :func:`~repro.core.trust.verify_rar` — same
verdicts, same error types, for every member mix including revoked,
expired and forged signers — is asserted by the Hypothesis property
suite in ``tests/differential/``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core import fastpath
from repro.core.envelope import SignedEnvelope
from repro.core.trust import VerifiedRAR, verify_rar
from repro.crypto import cache as verification_cache
from repro.crypto.dn import DistinguishedName
from repro.crypto.truststore import TrustStore
from repro.crypto.x509 import Certificate
from repro.errors import ReproError

__all__ = [
    "BatchItem",
    "BatchResult",
    "verify_rar_batch",
    "use_batch_caches",
]


@dataclass(frozen=True)
class BatchItem:
    """One RAR to verify, with its receiving context."""

    rar: SignedEnvelope
    verifier: DistinguishedName
    peer_certificate: Certificate


@dataclass(frozen=True)
class BatchResult:
    """Outcome for one batch item: exactly one of *verified* / *error*."""

    verified: VerifiedRAR | None
    error: ReproError | None
    #: True when this item's verdict was reused from an identical earlier
    #: item of the same batch (content-digest dedup).
    deduplicated: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def require(self) -> VerifiedRAR:
        """The verdict, re-raising the item's error if it failed."""
        if self.error is not None:
            raise self.error
        assert self.verified is not None
        return self.verified


def _item_digest(item: BatchItem) -> tuple[bytes, str, str]:
    return (
        verification_cache.digest(item.rar.cbe_bytes()),
        str(item.verifier),
        item.peer_certificate.fingerprint,
    )


def verify_rar_batch(
    items: Sequence[BatchItem],
    *,
    truststore: TrustStore,
    at_time: float = 0.0,
    caches: verification_cache.VerificationCaches | None = None,
) -> list[BatchResult]:
    """Verify every item of a batch in one pass, results in item order.

    The semantics of each individual result are *identical* to calling
    :func:`~repro.core.trust.verify_rar` sequentially with the same
    arguments: the only differences are cost (shared work is done once)
    and that errors are captured per item rather than raised.

    Cache scope, in precedence order: an explicit *caches* argument; the
    process-global PR-5 caches when enabled (the batch then feeds them
    in bulk); otherwise a fresh batch-local cache set that is discarded
    afterwards — dedup within the batch without changing global state.
    """
    if caches is None:
        caches = verification_cache.get_caches()
    scope = (
        verification_cache.use_caches(caches)
        if caches is not None
        else verification_cache.use_caches()
    )
    results: dict[int, BatchResult] = {}
    first_of: dict[tuple[bytes, str, str], int] = {}
    with scope:
        for index, item in enumerate(items):
            key = _item_digest(item)
            earlier = first_of.get(key)
            if earlier is not None:
                prior = results[earlier]
                results[index] = BatchResult(
                    verified=prior.verified,
                    error=prior.error,
                    deduplicated=True,
                )
                continue
            first_of[key] = index
            try:
                verified = verify_rar(
                    item.rar,
                    verifier=item.verifier,
                    peer_certificate=item.peer_certificate,
                    truststore=truststore,
                    at_time=at_time,
                )
            except ReproError as exc:
                results[index] = BatchResult(verified=None, error=exc)
            else:
                results[index] = BatchResult(verified=verified, error=None)
    return [results[i] for i in range(len(items))]


@contextmanager
def use_batch_caches() -> Iterator[verification_cache.VerificationCaches | None]:
    """Scope for a concurrent signalling burst: share verification work
    across the burst's threads the way :func:`verify_rar_batch` shares it
    across items.

    No-op (yielding ``None``) when batched verification is disabled by
    the :mod:`~repro.core.fastpath` config or when the PR-5 process
    caches are already enabled — in the latter case the burst simply
    feeds the existing caches and installing a scope would only narrow
    their lifetime.
    """
    if not fastpath.get_config().batch_verification:
        yield None
        return
    if verification_cache.get_caches() is not None:
        yield verification_cache.get_caches()
        return
    with verification_cache.use_caches() as caches:
        yield caches
