"""Trust stores: anchors, directly trusted peers, and trust policy.

Every principal (user agent, bandwidth broker, policy server) owns a
:class:`TrustStore`.  It records:

* **anchors** — CA certificates trusted outright (each domain's own CA and
  the CA certificates exchanged in SLAs with peered domains);
* **peers** — end-entity certificates trusted directly because a contract
  (SLA) binds the two parties — the paper's "certificates of the peered
  BBs … used during the SSL handshake";
* a :class:`TrustPolicy` bounding how far web-of-trust *introductions* may
  extend (the paper: "checking its own security policy which might limit
  the depth of an acceptable trust chain").

The store answers two questions: is this certificate acceptable on its own
(anchored or peered), and what does my policy allow for introduced keys?
The protocol-level walk over an introduction chain lives in
:mod:`repro.core.trust`, which consumes this store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.crypto.dn import DistinguishedName
from repro.crypto.keys import PublicKey
from repro.crypto.x509 import Certificate, verify_chain
from repro.errors import CertificateError, UntrustedIssuerError

__all__ = ["TrustPolicy", "TrustStore"]


@dataclass(frozen=True)
class TrustPolicy:
    """Local security policy applied when accepting introduced keys.

    ``max_introduction_depth`` counts *introductions*, i.e. hops beyond a
    directly trusted peer: depth 0 accepts only anchored/peered
    certificates, depth 1 accepts keys introduced by a direct peer, and so
    on.  ``require_secure_scheme`` rejects keys from non-cryptographic
    signature schemes (:class:`~repro.crypto.keys.SimulatedScheme`).
    """

    max_introduction_depth: int = 4
    require_secure_scheme: bool = False
    require_ca_issued_peers: bool = True


class TrustStore:
    """Anchors + direct peers + policy for one principal."""

    def __init__(self, policy: TrustPolicy | None = None) -> None:
        self.policy = policy if policy is not None else TrustPolicy()
        self._anchors: dict[str, Certificate] = {}
        self._peers: dict[DistinguishedName, Certificate] = {}
        #: Revocation oracles (e.g. each anchored CA's ``is_revoked``).
        self._revocation_checkers: list[Callable[[Certificate], bool]] = []

    def add_revocation_checker(
        self, checker: Callable[[Certificate], bool]
    ) -> None:
        """Register a ``Certificate -> bool`` oracle (True = revoked).
        Typically each anchored CA's ``is_revoked`` — the simulation's
        stand-in for fetching that CA's CRL."""
        self._revocation_checkers.append(checker)

    def is_revoked(self, cert: Certificate) -> bool:
        return any(check(cert) for check in self._revocation_checkers)

    # -- population -----------------------------------------------------------

    def add_anchor(self, cert: Certificate) -> None:
        """Trust *cert* outright (typically a CA certificate)."""
        self._anchors[cert.fingerprint] = cert

    def add_peer(self, cert: Certificate) -> None:
        """Trust the end-entity *cert* directly (contractual/SLA trust).

        With ``require_ca_issued_peers`` the peer certificate must chain
        to an anchor already in the store — this mirrors the SLA handing
        over both the peer certificate *and* its issuing CA certificate.
        """
        if self.policy.require_ca_issued_peers:
            issuers = [a for a in self._anchors.values() if a.subject == cert.issuer]
            if not issuers:
                raise UntrustedIssuerError(
                    f"peer {cert.subject}: issuer {cert.issuer} is not an anchor"
                )
            if not any(cert.verify_signature(a.public_key) for a in issuers):
                raise CertificateError(
                    f"peer certificate for {cert.subject} does not verify under "
                    f"any anchored issuer"
                )
        self._peers[cert.subject] = cert

    def add_introduced_peer(self, cert: Certificate) -> None:
        """Trust *cert* directly on the strength of a verified web-of-trust
        introduction (paper §6.4: after tracing a signalling path, the end
        domain may accept the source BB's key and open a direct channel).
        Bypasses the CA-issuance requirement — callers must only use this
        with certificates that arrived inside a verified envelope chain
        within the local depth policy."""
        self._peers[cert.subject] = cert

    # -- queries ---------------------------------------------------------------

    @property
    def anchors(self) -> tuple[Certificate, ...]:
        return tuple(self._anchors.values())

    @property
    def peers(self) -> tuple[Certificate, ...]:
        return tuple(self._peers.values())

    def is_anchor(self, cert: Certificate) -> bool:
        return cert.fingerprint in self._anchors

    def is_direct_peer(self, cert: Certificate) -> bool:
        known = self._peers.get(cert.subject)
        return known is not None and known.fingerprint == cert.fingerprint

    def peer_certificate(self, dn: DistinguishedName) -> Certificate | None:
        return self._peers.get(dn)

    def accepts_directly(self, cert: Certificate, *, at_time: float = 0.0) -> bool:
        """True when *cert* is acceptable without any introduction: it is an
        anchor, a direct peer, or chains to an anchor."""
        if not cert.valid_at(at_time):
            return False
        if self.is_revoked(cert):
            return False
        if self.is_anchor(cert) or self.is_direct_peer(cert):
            return True
        try:
            verify_chain(
                [cert], self._anchors.values(), at_time=at_time,
                revocation_checker=self.is_revoked if self._revocation_checkers else None,
            )
            return True
        except CertificateError:
            return False

    def scheme_acceptable(self, key: PublicKey) -> bool:
        """Apply the ``require_secure_scheme`` policy knob to *key*."""
        if not self.policy.require_secure_scheme:
            return True
        from repro.crypto.keys import get_scheme

        return get_scheme(key.scheme).secure

    def depth_acceptable(self, introduction_depth: int) -> bool:
        """True when a key introduced through *introduction_depth* hops is
        within policy (0 = direct)."""
        return introduction_depth <= self.policy.max_introduction_depth
