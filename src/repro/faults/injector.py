"""The runtime fault injector the instrumented subsystems consult.

One :class:`FaultInjector` holds a :class:`~repro.faults.plan.FaultPlan`
and a per-target operation counter.  Instrumented code calls exactly one
method per operation:

* :meth:`channel_transmit` — from ``SecureChannel.transmit``; may drop
  the message (:class:`~repro.errors.MessageDroppedError`), return it
  with extra delay, or corrupt one signed-payload field;
* :meth:`broker_op` — from ``BandwidthBroker`` admit/claim/cancel; may
  raise :class:`~repro.errors.BrokerUnavailableError` (crash window);
* :meth:`policy_op` — from ``PolicyServer`` verify/decide; may raise
  :class:`~repro.errors.PolicyUnavailableError`;
* :meth:`repository_op` — from ``CertificateRepository.lookup``; may
  raise :class:`~repro.errors.RepositoryUnavailableError`.

The injector never imports the subsystems it breaks (corruption is
duck-typed through ``with_tampered_field``), so ``repro.faults`` sits
beside ``repro.core``, not above it.  Every triggered fault is recorded
in :attr:`triggered` and emitted as a ``FAULT`` event plus a
``faults_injected_total`` counter.
"""

from __future__ import annotations

import logging
import threading
from typing import Any

from repro.errors import (
    BrokerUnavailableError,
    MessageDroppedError,
    PolicyUnavailableError,
    RepositoryUnavailableError,
)
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, TargetKind
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.events import EventKind

__all__ = ["FaultInjector"]

logger = logging.getLogger(__name__)

#: Field flipped by CORRUPT faults.  Changing any signed-payload byte
#: breaks the signature; this one is only consulted *after* signature
#: verification, so the receiver observes the canonical symptom — a
#: :class:`~repro.errors.TamperedMessageError` from ``require_valid`` —
#: rather than a structural parse error.
_CORRUPT_FIELD = "capability_certs"
_CORRUPT_VALUE = "corrupted-by-fault-injection"


class FaultInjector:
    """Deterministic fault delivery against a fixed plan."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: Per-(target kind, target) operation counters.
        self._op_counts: dict[tuple[TargetKind, str], int] = {}
        #: Every fault actually delivered, as ``(spec, op_index)``.
        self.triggered: list[tuple[FaultSpec, int]] = []
        # Concurrent signalling workers share one injector; the op
        # counters are read-modify-write, so they take a lock.
        self._lock = threading.Lock()

    # -- bookkeeping -------------------------------------------------------------

    def _next_op(self, target_kind: TargetKind, target: str) -> int:
        key = (target_kind, target)
        with self._lock:
            op = self._op_counts.get(key, 0)
            self._op_counts[key] = op + 1
        return op

    def _active(
        self, target_kind: TargetKind, target: str, op: int
    ) -> tuple[FaultSpec, ...]:
        return tuple(
            spec for spec in self.plan.for_target(target_kind, target)
            if spec.window_contains(op)
        )

    def _record(self, spec: FaultSpec, op: int) -> None:
        with self._lock:
            self.triggered.append((spec, op))
        logger.info("fault injected: %s (op %d)", spec.describe(), op)
        registry = obs_metrics.get_registry()
        if registry is not None:
            registry.counter(
                "faults_injected_total",
                "Faults delivered by the injector, by target kind and kind",
            ).inc(target_kind=spec.target_kind.value, kind=spec.kind.value)
        event_log = obs_events.get_event_log()
        if event_log is not None:
            event_log.emit(
                EventKind.FAULT,
                reason=spec.describe(),
                target=spec.target, op=op,
            )

    def op_count(self, target_kind: TargetKind, target: str) -> int:
        """Operations seen so far against one target (test hook)."""
        with self._lock:
            return self._op_counts.get((target_kind, target), 0)

    # -- injection points --------------------------------------------------------

    def channel_transmit(self, link: str, message: Any) -> tuple[Any, float]:
        """One message crossing *link*; returns ``(message, extra_delay_s)``
        or raises :class:`~repro.errors.MessageDroppedError`."""
        op = self._next_op(TargetKind.CHANNEL, link)
        delay_s = 0.0
        for spec in self._active(TargetKind.CHANNEL, link, op):
            self._record(spec, op)
            if spec.kind is FaultKind.DROP:
                raise MessageDroppedError(
                    f"fault injection: message lost on link {link} (op {op})"
                )
            if spec.kind is FaultKind.DELAY:
                delay_s += spec.delay_s
            elif spec.kind is FaultKind.CORRUPT:
                tamper = getattr(message, "with_tampered_field", None)
                if callable(tamper):
                    message = tamper(_CORRUPT_FIELD, _CORRUPT_VALUE)
        return message, delay_s

    def broker_op(self, domain: str) -> None:
        """One operation against domain *domain*'s broker."""
        op = self._next_op(TargetKind.BROKER, domain)
        for spec in self._active(TargetKind.BROKER, domain, op):
            self._record(spec, op)
            raise BrokerUnavailableError(
                f"fault injection: bandwidth broker of {domain} is down "
                f"(op {op})"
            )

    def policy_op(self, domain: str) -> None:
        """One query against domain *domain*'s policy server."""
        op = self._next_op(TargetKind.POLICY, domain)
        for spec in self._active(TargetKind.POLICY, domain, op):
            self._record(spec, op)
            what = (
                "timed out" if spec.kind is FaultKind.TIMEOUT
                else "is unavailable"
            )
            raise PolicyUnavailableError(
                f"fault injection: policy server of {domain} {what} (op {op})"
            )

    def repository_op(self, name: str) -> None:
        """One lookup against certificate repository *name*."""
        op = self._next_op(TargetKind.REPOSITORY, name)
        for spec in self._active(TargetKind.REPOSITORY, name, op):
            self._record(spec, op)
            what = (
                "timed out" if spec.kind is FaultKind.TIMEOUT
                else "is unavailable"
            )
            raise RepositoryUnavailableError(
                f"fault injection: certificate repository {name} {what} "
                f"(op {op})"
            )
