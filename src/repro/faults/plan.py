"""Declarative fault plans: what breaks, where, and for how long.

A :class:`FaultSpec` is pure data, so a schedule of specs is trivially
serializable, diffable, and — crucially — hashable into a digest that
proves two runs injected the very same faults.  Activation windows are
counted in *operations against the target*, not wall time: "the third
message on link A|B" replays identically however long verification or
backoff took, which timestamp-based triggering never would.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import FaultPlanError

__all__ = [
    "TargetKind",
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "single_fault_matrix",
]


class TargetKind(str, enum.Enum):
    """What kind of component a fault targets."""

    CHANNEL = "channel"
    BROKER = "broker"
    POLICY = "policy"
    REPOSITORY = "repository"


class FaultKind(str, enum.Enum):
    """The fault vocabulary, per target kind (see ``_VALID``)."""

    #: Channel: the message is lost on the wire.
    DROP = "drop"
    #: Channel: the message arrives ``delay_s`` late.
    DELAY = "delay"
    #: Channel: one payload field is flipped; the signature no longer
    #: verifies (an on-path modification, §6.4's threat).
    CORRUPT = "corrupt"
    #: Broker: the BB process is down for the window.  A finite window
    #: models crash + restart; ``ops=None`` a permanent outage.
    CRASH = "crash"
    #: Policy server / repository: the query times out.
    TIMEOUT = "timeout"
    #: Policy server / repository: the service refuses to answer.
    UNAVAILABLE = "unavailable"


_VALID: dict[TargetKind, frozenset[FaultKind]] = {
    TargetKind.CHANNEL: frozenset(
        {FaultKind.DROP, FaultKind.DELAY, FaultKind.CORRUPT}
    ),
    TargetKind.BROKER: frozenset({FaultKind.CRASH}),
    TargetKind.POLICY: frozenset({FaultKind.TIMEOUT, FaultKind.UNAVAILABLE}),
    TargetKind.REPOSITORY: frozenset(
        {FaultKind.TIMEOUT, FaultKind.UNAVAILABLE}
    ),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault: target, kind, and an occurrence window.

    The window covers per-target operation indices
    ``[start_op, start_op + ops)``; ``ops=None`` makes the fault
    persistent from ``start_op`` on.  ``target`` is a channel link label
    (``"A|B"``, see :func:`repro.core.channel.link_label`), a broker or
    policy-server domain, or a repository name.
    """

    target_kind: TargetKind
    target: str
    kind: FaultKind
    start_op: int = 0
    ops: int | None = 1
    #: Extra one-way latency for DELAY faults (seconds, modelled).
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _VALID[self.target_kind]:
            raise FaultPlanError(
                f"fault kind {self.kind.value!r} is not valid for "
                f"{self.target_kind.value} targets"
            )
        if not self.target:
            raise FaultPlanError("fault target must be non-empty")
        if self.start_op < 0:
            raise FaultPlanError("start_op must be >= 0")
        if self.ops is not None and self.ops < 1:
            raise FaultPlanError("ops must be >= 1 (or None for persistent)")
        if self.kind is FaultKind.DELAY and self.delay_s <= 0.0:
            raise FaultPlanError("DELAY faults need a positive delay_s")

    def window_contains(self, op_index: int) -> bool:
        if op_index < self.start_op:
            return False
        if self.ops is None:
            return True
        return op_index < self.start_op + self.ops

    def describe(self) -> str:
        window = (
            f"op>={self.start_op}" if self.ops is None
            else f"ops[{self.start_op},{self.start_op + self.ops})"
        )
        extra = f" delay={self.delay_s:g}s" if self.kind is FaultKind.DELAY else ""
        return (
            f"{self.target_kind.value}:{self.target} "
            f"{self.kind.value} {window}{extra}"
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault specs plus the seed that selected it."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def for_target(
        self, target_kind: TargetKind, target: str
    ) -> tuple[FaultSpec, ...]:
        return tuple(
            s for s in self.specs
            if s.target_kind is target_kind and s.target == target
        )

    def describe(self) -> str:
        lines = [f"seed={self.seed}"]
        lines.extend(spec.describe() for spec in self.specs)
        return "\n".join(lines)

    def digest(self) -> str:
        """A stable fingerprint of this plan (same seed + same specs →
        same digest; the chaos CLI prints it as the reproducibility
        receipt)."""
        return hashlib.sha256(self.describe().encode()).hexdigest()[:16]


def single_fault_matrix(
    *,
    channel_links: Iterable[str] = (),
    broker_domains: Iterable[str] = (),
    policy_domains: Iterable[str] = (),
    repository_names: Iterable[str] = (),
    start_ops: Sequence[int] = (0, 1, 2),
    delay_s: float = 1.0,
) -> list[FaultSpec]:
    """Enumerate every single-fault case over the given targets.

    For each target, every valid fault kind is crossed with every start
    offset in *start_ops* — so a chaos run covers "the first message is
    lost", "the second is corrupted", "the broker crashes on its second
    admission", and so on.  Offsets past what a trial actually exercises
    simply never fire; the invariants must hold regardless.
    """
    matrix: list[FaultSpec] = []
    for link in channel_links:
        for kind in (FaultKind.DROP, FaultKind.DELAY, FaultKind.CORRUPT):
            for start in start_ops:
                matrix.append(
                    FaultSpec(
                        TargetKind.CHANNEL, link, kind,
                        start_op=start,
                        delay_s=delay_s if kind is FaultKind.DELAY else 0.0,
                    )
                )
    for domain in broker_domains:
        for start in start_ops:
            for ops in (1, 2):
                matrix.append(
                    FaultSpec(
                        TargetKind.BROKER, domain, FaultKind.CRASH,
                        start_op=start, ops=ops,
                    )
                )
    for domain in policy_domains:
        for kind in (FaultKind.TIMEOUT, FaultKind.UNAVAILABLE):
            for start in start_ops:
                matrix.append(
                    FaultSpec(TargetKind.POLICY, domain, kind, start_op=start)
                )
    for name in repository_names:
        for kind in (FaultKind.TIMEOUT, FaultKind.UNAVAILABLE):
            for start in start_ops:
                matrix.append(
                    FaultSpec(
                        TargetKind.REPOSITORY, name, kind, start_op=start
                    )
                )
    return matrix
