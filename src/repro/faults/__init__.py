"""Deterministic, seed-driven fault injection for the signalling fabric.

The reproduction's north star ("heavy traffic from millions of users")
is unreachable without proof that the hop-by-hop protocol degrades
gracefully when a hop fails — so this package makes hops fail, exactly
and repeatably:

* :mod:`repro.faults.plan` — the declarative fault vocabulary: a
  :class:`~repro.faults.plan.FaultSpec` names a target (a peer link, a
  broker, a policy server, the certificate repository), a fault kind
  (drop/delay/corrupt, crash/restart, timeout/unavailable), and an
  occurrence window in per-target operation counts;
* :mod:`repro.faults.injector` — the runtime hook the instrumented
  subsystems consult on every operation;
* :mod:`repro.faults.chaos` — the seeded chaos harness behind
  ``repro chaos``: one fresh testbed per trial, one fault per trial
  drawn from the full single-fault matrix, invariant checks after
  recovery (no capacity leaks, no stuck reservations, no leftover
  hooks).

Determinism is the design constraint throughout: the same seed must
reproduce the identical fault schedule, injection points, and backoff
jitter, or a chaos failure could never be debugged.
"""

from repro.faults.chaos import ChaosReport, TrialResult, run_chaos
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    TargetKind,
    single_fault_matrix,
)

__all__ = [
    "TargetKind",
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "single_fault_matrix",
    "FaultInjector",
    "ChaosReport",
    "TrialResult",
    "run_chaos",
]
