"""The seeded chaos harness behind ``repro chaos``.

Each trial builds a fresh four-domain testbed, arms exactly one fault
from the single-fault matrix, drives one end-to-end reservation through
the hop-by-hop protocol, lets recovery do whatever it does (retry,
deny, unwind, degrade), runs the soft-state sweep, and then checks the
*invariants that must survive any single fault*:

* **no capacity leak** — every admission-controller schedule is empty
  and no broker still maps a handle to bookings;
* **no stuck reservation** — nothing remains PENDING / GRANTED / ACTIVE;
* **no leftover instrumentation** — every channel dropped its injector.

The schedule is a pure function of the seed: the same ``--seed`` yields
the identical fault sequence, and the report carries the plan digest as
the reproducibility receipt.
"""

from __future__ import annotations

import contextlib
import logging
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import AlertEngine, FlightRecorder

from repro.bb.reservations import ReservationState
from repro.core.testbed import Testbed, build_linear_testbed
from repro.crypto.repository import CertificateRepository
from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    TargetKind,
    single_fault_matrix,
)
from repro.obs import audit as obs_audit
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.audit import DecisionLedger, ReconciliationReport
from repro.obs.slo import SLO, SLOReport, default_slos, evaluate_slos

__all__ = ["TrialResult", "ChaosReport", "run_chaos"]

logger = logging.getLogger(__name__)

#: States a reservation must not be left in once a trial is over.
_LIVE_STATES = (
    ReservationState.PENDING,
    ReservationState.GRANTED,
    ReservationState.ACTIVE,
)

#: Far-future instant for the post-trial soft-state sweep: any lease
#: still pending at trial end has certainly lapsed by then.
_SWEEP_AT = 1e9


@dataclass(frozen=True)
class TrialResult:
    """One chaos trial: the fault armed and what the fabric did."""

    index: int
    spec: FaultSpec
    granted: bool
    denial_reason: str
    #: Faults the injector actually delivered (0 when the armed window
    #: was never reached — the invariants must hold regardless).
    injected: int
    retries: int
    #: Invariant violations found after recovery (empty = healthy).
    violations: tuple[str, ...]
    #: Ledger-vs-broker reconciliation violations for this trial, when
    #: the run kept a decision ledger (``run_chaos(audit=True)``).
    audit_violations: tuple[str, ...] = ()


@dataclass
class ChaosReport:
    """Aggregate of one chaos run."""

    seed: int
    schedule_digest: str
    trials: list[TrialResult] = field(default_factory=list)
    #: SLO verdicts over the whole campaign's metrics + events (the
    #: harness runs every trial under a scoped registry and event log).
    slo_report: SLOReport | None = None
    #: The campaign's decision ledger (``audit=True`` runs only).
    ledger: DecisionLedger | None = None
    #: Ledger-internal reconciliation over the whole campaign.
    audit_report: ReconciliationReport | None = None

    @property
    def violations(self) -> list[str]:
        out = []
        for trial in self.trials:
            out.extend(
                f"trial {trial.index} [{trial.spec.describe()}]: {v}"
                for v in trial.violations
            )
        return out

    @property
    def audit_violations(self) -> list[str]:
        """Per-trial broker reconciliation + campaign ledger invariants."""
        out = []
        for trial in self.trials:
            out.extend(
                f"trial {trial.index} [{trial.spec.describe()}]: {v}"
                for v in trial.audit_violations
            )
        if self.audit_report is not None:
            out.extend(v.render() for v in self.audit_report.violations)
        return out

    @property
    def granted_count(self) -> int:
        return sum(1 for t in self.trials if t.granted)

    @property
    def injected_count(self) -> int:
        return sum(t.injected for t in self.trials)

    @property
    def retry_count(self) -> int:
        return sum(t.retries for t in self.trials)

    def summary(self) -> str:
        lines = [
            f"chaos: seed={self.seed} trials={len(self.trials)} "
            f"schedule={self.schedule_digest}",
            f"  faults injected : {self.injected_count}",
            f"  retries         : {self.retry_count}",
            f"  granted         : {self.granted_count}",
            f"  denied          : {len(self.trials) - self.granted_count}",
            f"  violations      : {len(self.violations)}",
        ]
        lines.extend(f"    {v}" for v in self.violations[:20])
        if len(self.violations) > 20:
            lines.append(f"    ... and {len(self.violations) - 20} more")
        if self.ledger is not None:
            audit = self.audit_violations
            lines.append(
                f"  audit           : {len(self.ledger)} ledger records, "
                f"{len(audit)} violation(s)"
            )
            lines.extend(f"    {v}" for v in audit[:20])
            if len(audit) > 20:
                lines.append(f"    ... and {len(audit) - 20} more")
        if self.slo_report is not None:
            lines.append("  SLO verdicts:")
            lines.extend(
                f"    {line}" for line in self.slo_report.render().splitlines()
            )
        return "\n".join(lines)


def _check_invariants(testbed: Testbed) -> list[str]:
    """The safety conditions every trial must restore (see module doc)."""
    violations: list[str] = []
    for domain, broker in testbed.brokers.items():
        for name in broker.admission.resources():
            schedule = broker.admission.schedule(name)
            if schedule.bookings:
                violations.append(
                    f"capacity leak: {domain}/{name} still holds "
                    f"{len(schedule.bookings)} booking(s)"
                )
        if broker._booking_map:
            violations.append(
                f"capacity leak: {domain} still maps handles "
                f"{sorted(broker._booking_map)} to bookings"
            )
        stuck = broker.reservations.in_state(*_LIVE_STATES)
        if stuck:
            violations.append(
                f"stuck reservation: {domain} left "
                + ", ".join(f"{r.handle}={r.state.value}" for r in stuck)
            )
    for channel in testbed.channels.all():
        if channel.injector is not None:
            violations.append(
                f"unreleased channel: {channel.link} still holds the injector"
            )
    return violations


def _run_trial(
    index: int,
    spec: FaultSpec,
    *,
    seed: int,
    domains: Sequence[str],
    rate_mbps: float,
    deadline_s: float,
    soft_state_ttl_s: float,
    repository_name: str,
) -> TrialResult:
    testbed = build_linear_testbed(
        list(domains), soft_state_ttl_s=soft_state_ttl_s
    )
    if spec.target_kind is TargetKind.REPOSITORY:
        # Repository trials run the protocol in §6.4-alternative-2 mode so
        # the repository is actually on the critical path.
        repository = CertificateRepository(name=repository_name)
        for broker in testbed.brokers.values():
            repository.publish(broker.certificate)
        testbed.hop_by_hop.repository = repository
    user = testbed.add_user(domains[0], "Alice")
    if testbed.hop_by_hop.repository is not None:
        testbed.hop_by_hop.repository.publish(user.certificate)

    injector = FaultInjector(FaultPlan((spec,), seed=seed))
    testbed.attach_injector(injector)
    granted = False
    denial_reason = ""
    retries = 0
    try:
        outcome = testbed.reserve(
            user,
            source=domains[0],
            destination=domains[-1],
            bandwidth_mbps=rate_mbps,
            deadline_s=deadline_s,
        )
        granted = outcome.granted
        denial_reason = outcome.denial_reason
        retries = outcome.retries
    except ReproError as exc:
        # An abort that escapes the protocol still counts as a denial;
        # the invariants below are what actually matter.
        denial_reason = f"aborted: {exc}"
        outcome = None
    if outcome is not None and outcome.granted:
        # Tear the reservation down *while the fault may still be armed*:
        # a broker that stays crashed here leaves its reservation to the
        # soft-state sweep, which the invariants then verify.
        try:
            testbed.hop_by_hop.cancel(outcome)
        except ReproError as exc:
            logger.info("trial %d: cancel failed (%s); sweep reclaims",
                        index, exc)
    testbed.detach_injector()
    testbed.sweep_soft_state(_SWEEP_AT)
    violations = _check_invariants(testbed)
    # Ledger-vs-broker reconciliation must run per trial, while the
    # trial's testbed (reservation tables, bookings) still exists.
    audit_violations: tuple[str, ...] = ()
    ledger = obs_audit.get_ledger()
    if ledger is not None:
        audit_violations = tuple(
            v.render()
            for v in obs_audit.reconcile_brokers(ledger, testbed.brokers)
        )
    return TrialResult(
        index=index,
        spec=spec,
        granted=granted,
        denial_reason=denial_reason,
        injected=len(injector.triggered),
        retries=retries,
        violations=tuple(violations),
        audit_violations=audit_violations,
    )


def run_chaos(
    *,
    seed: int = 7,
    trials: int = 200,
    domains: Sequence[str] = ("A", "B", "C", "D"),
    rate_mbps: float = 10.0,
    deadline_s: float = 30.0,
    soft_state_ttl_s: float = 60.0,
    repository_name: str = "ldap.grid",
    progress: Callable[[int, int], None] | None = None,
    slos: Sequence[SLO] | None = None,
    audit: bool = False,
    recorder: "FlightRecorder | None" = None,
    alert_engine: "AlertEngine | None" = None,
) -> ChaosReport:
    """Run *trials* single-fault chaos trials; the schedule (and every
    backoff-jitter draw downstream of it) is determined by *seed*.

    The whole campaign runs under a scoped metrics registry and event
    log, and the report carries SLO verdicts over them (*slos*, or
    :func:`~repro.obs.slo.default_slos`) — so a run answers "did
    recovery keep us inside the objectives?" as well as "did the
    invariants hold?".

    With ``audit=True`` the campaign also keeps a decision-provenance
    ledger: every trial is reconciled against its brokers while they
    still exist, the whole ledger is reconciled at the end, and the
    report carries both the ledger and the
    :class:`~repro.obs.audit.ReconciliationReport`.

    With a *recorder* the campaign is also flight-recorded: each trial's
    per-domain testbed clock restarts at zero, so the recorder samples
    the campaign registry once per trial with the **trial index** as the
    time axis, and the alert engine (defaulting to the tuned
    :func:`~repro.obs.telemetry.alerts.chaos_rules` profile) steps after
    each frame — the CI telemetry job gates zero CRITICAL alerts on
    the honest campaign this produces.
    """
    user_link = "|".join(sorted((domains[0], "Alice")))
    inter_links = [
        "|".join(sorted((a, b))) for a, b in zip(domains, domains[1:])
    ]
    matrix = single_fault_matrix(
        channel_links=[user_link, *inter_links],
        broker_domains=domains,
        policy_domains=domains,
        repository_names=[repository_name],
    )
    # Bounded windows are always survivable by bounded retries; the
    # *persistent* variants force retry exhaustion, dead-hop denials, and
    # partial-path unwinds — exactly where capacity leaks would hide.
    matrix.extend(
        FaultSpec(
            s.target_kind, s.target, s.kind,
            start_op=s.start_op, ops=None, delay_s=s.delay_s,
        )
        for s in list(matrix)
        if s.ops == 1
    )
    rng = random.Random(seed)
    schedule = [matrix[rng.randrange(len(matrix))] for _ in range(trials)]
    report = ChaosReport(
        seed=seed,
        schedule_digest=FaultPlan(tuple(schedule), seed=seed).digest(),
    )
    logger.info(
        "chaos: %d trials over %d matrix cases (digest %s)",
        trials, len(matrix), report.schedule_digest,
    )
    ledger_scope: contextlib.AbstractContextManager[DecisionLedger | None] = (
        obs_audit.use_ledger() if audit else contextlib.nullcontext()
    )
    engine = alert_engine
    if recorder is not None and engine is None:
        from repro.obs.telemetry import AlertEngine, chaos_rules
        engine = AlertEngine(chaos_rules())
    with obs_metrics.use_registry() as registry, \
            obs_events.use_event_log() as event_log, \
            ledger_scope as ledger:
        if recorder is not None:
            recorder.record_meta(
                campaign="chaos", seed=seed, trials=trials,
                schedule_digest=report.schedule_digest,
            )
        for index, spec in enumerate(schedule):
            report.trials.append(
                _run_trial(
                    index, spec,
                    seed=seed,
                    domains=domains,
                    rate_mbps=rate_mbps,
                    deadline_s=deadline_s,
                    soft_state_ttl_s=soft_state_ttl_s,
                    repository_name=repository_name,
                )
            )
            if recorder is not None:
                recorder.sample(float(index + 1), registry=registry)
                if engine is not None:
                    engine.step(
                        recorder.store, float(index + 1),
                        event_log=event_log, recorder=recorder,
                    )
            if progress is not None:
                progress(index + 1, trials)
    if ledger is not None:
        report.ledger = ledger
        report.audit_report = obs_audit.reconcile(ledger)
    report.slo_report = evaluate_slos(
        tuple(slos) if slos is not None else default_slos(),
        registry=registry,
        event_log=event_log,
    )
    return report
