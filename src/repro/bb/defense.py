"""Admission-plane defenses: rate limits, quotas, replay guard, shedding.

The paper closes the *single* misreservation attack (Figure 4) with
policed per-flow classification; a production broker fleet must also
survive *sustained* abuse — reservation flooding against one victim
domain, revocation-storm churn against the verification caches, byzantine
peers spraying malformed or replayed envelopes, and squatters claiming
tunnels they never reserved.  The flyover-reservation literature
(PAPERS.md) frames the common defense shape: keep the *cheap* checks in
front of the *expensive* ones, and bound every per-peer resource.

This module is the local half of that shape — pure bookkeeping, driven
entirely by the modelled clock passed in by callers (REP101), with no
protocol imports so it slots under both :class:`~repro.bb.broker.
BandwidthBroker` (quotas) and the hop-by-hop engine (rate limits, replay,
shedding).  Four mechanisms, four typed rejections:

* **token-bucket per-peer signalling rate limits** —
  :class:`TokenBucket` per peer identity (the upstream domain at transit
  hops, the user DN at the source hop); an empty bucket raises
  :class:`~repro.errors.RateLimitedError` before any signature work;
* **per-user / per-ingress reservation quotas** — counts of live
  reservations per owner and per upstream peer, checked by the broker
  before its SLA/policy/capacity pipeline; exceeding either raises
  :class:`~repro.errors.QuotaExceededError`;
* **sliding-window replay guard** — envelope digest + first-seen
  timestamp; a digest seen again inside the window raises
  :class:`~repro.errors.ReplayRejectedError` *before signature
  verification is spent* (the whole point: a replayed RAR costs the
  attacker a send and the victim a dict lookup);
* **load shedding** — when the pending-signalling estimate passes the
  watermark, *new admissions* are shed
  (:class:`~repro.errors.OverloadShedError`) while refresh and teardown
  keep flowing, so an overloaded broker ages out gracefully instead of
  dropping the traffic that releases capacity.

Everything is deterministic: buckets refill from elapsed modelled time,
the replay window prunes by modelled time, and no call reads a wall
clock or global RNG.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.errors import (
    OverloadShedError,
    RateLimitedError,
    ReplayRejectedError,
    QuotaExceededError,
)
from repro.obs import metrics as obs_metrics

__all__ = [
    "DefensePolicy",
    "TokenBucket",
    "ReplayGuard",
    "DomainDefense",
    "DefenseStats",
]

#: Signalling operations the shed gate always lets through: they *free*
#: capacity or keep already-admitted state alive, and dropping them under
#: overload would convert congestion into leaked bandwidth.
PROTECTED_OPERATIONS = frozenset({"refresh", "teardown", "cancel", "claim"})


@dataclass(frozen=True)
class DefensePolicy:
    """Knobs for one domain's admission-plane defenses.

    The defaults are deliberately permissive for honest workloads (the
    survivability harness drives ~1 signal/s per honest user) while
    clamping the attack personas hard; operators tune them per SLA.
    """

    #: Token-bucket burst size per user-class peer (signals).
    peer_burst: float = 8.0
    #: Token-bucket refill rate per user-class peer (signals per
    #: modelled second).
    peer_rate_per_s: float = 2.0
    #: Burst / rate for *domain-class* peers (contracted SLA neighbours).
    #: A domain peer aggregates many users' traffic that was already
    #: gated at its own ingress, so its bucket must sit well above any
    #: single user's — otherwise one throttled aggregate link becomes
    #: collateral damage for every honest user behind it.
    domain_peer_burst: float = 32.0
    domain_peer_rate_per_s: float = 8.0
    #: Live (pending/granted/active) reservations allowed per user.
    per_user_quota: int = 8
    #: Live reservations allowed per ingress (upstream) peer.
    per_ingress_quota: int = 64
    #: How long an envelope digest stays "seen" (modelled seconds).
    replay_window_s: float = 120.0
    #: Hard bound on remembered digests (oldest-first eviction).
    replay_capacity: int = 4096
    #: Arrivals inside :attr:`shed_window_s` beyond which new admissions
    #: are shed (refresh/teardown always pass).
    pending_watermark: int = 32
    #: Window over which the pending-signalling estimate is taken.
    shed_window_s: float = 1.0


class TokenBucket:
    """A deterministic token bucket driven by the modelled clock.

    ``take`` refills from the time elapsed since the previous call and
    consumes one token; an empty bucket returns ``False``.  Time moving
    backwards (never happens under the simulator, but cheap to guard)
    just skips the refill.
    """

    def __init__(self, burst: float, rate_per_s: float, *, now: float = 0.0):
        self.burst = burst
        self.rate_per_s = rate_per_s
        self.tokens = burst
        self._last = now

    def take(self, now: float, amount: float = 1.0) -> bool:
        if now > self._last:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last) * self.rate_per_s
            )
            self._last = now
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False


class ReplayGuard:
    """Sliding-window duplicate-envelope detector.

    Keyed on the envelope's canonical-bytes digest; the stored value is
    the first-seen modelled timestamp.  ``check`` runs *before* signature
    verification, so a replayed RAR is rejected for the cost of one
    ordered-dict lookup.  The window is pruned by modelled time and hard
    bounded by ``capacity`` (oldest first), so a long campaign cannot
    grow the guard without limit.
    """

    def __init__(self, window_s: float, capacity: int):
        self.window_s = window_s
        self.capacity = capacity
        #: digest -> first-seen modelled time, insertion-ordered (and
        #: therefore time-ordered: the clock never runs backwards).
        self._seen: OrderedDict[bytes, float] = OrderedDict()
        self.rejected = 0

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        while self._seen:
            _, first_seen = next(iter(self._seen.items()))
            if first_seen >= horizon:
                break
            self._seen.popitem(last=False)
        while len(self._seen) > self.capacity:
            self._seen.popitem(last=False)

    def check(self, digest: bytes, now: float) -> None:
        """Raise :class:`ReplayRejectedError` if *digest* was already
        seen inside the window; otherwise record it."""
        self._prune(now)
        first_seen = self._seen.get(digest)
        if first_seen is not None:
            self.rejected += 1
            raise ReplayRejectedError(
                f"envelope digest {digest.hex()[:12]} already processed at "
                f"t={first_seen:.3f} (replay window {self.window_s:.0f}s)"
            )
        self._seen[digest] = now
        while len(self._seen) > self.capacity:
            self._seen.popitem(last=False)

    def forget(self, digest: bytes) -> None:
        """Drop a recorded digest (used when processing the original
        failed *before* any state changed, so a legitimate retransmission
        of the same bytes must not be mistaken for a replay)."""
        self._seen.pop(digest, None)

    def __len__(self) -> int:
        return len(self._seen)


@dataclass
class DefenseStats:
    """Rejection counters for one domain (independent of obs state)."""

    rate_limited: int = 0
    quota_exceeded: int = 0
    replay_rejected: int = 0
    shed_overload: int = 0

    @property
    def total(self) -> int:
        return (self.rate_limited + self.quota_exceeded
                + self.replay_rejected + self.shed_overload)


class DomainDefense:
    """One domain's defense state: buckets, quotas, replay guard, shed.

    Attached to a broker as ``broker.defense``; the hop-by-hop engine
    runs :meth:`admit_signal` at the top of per-hop processing (before
    verification), and the broker runs :meth:`check_quota` at the top of
    its admission pipeline.  Thread-safe: the concurrent signaller drives
    several reservations through one broker at once.
    """

    def __init__(self, policy: DefensePolicy | None = None, *,
                 domain: str = ""):
        self.policy = policy if policy is not None else DefensePolicy()
        self.domain = domain
        self.replay_guard = ReplayGuard(
            self.policy.replay_window_s, self.policy.replay_capacity
        )
        self._buckets: dict[str, TokenBucket] = {}
        #: Modelled arrival times of recent signals (the pending-queue
        #: estimate for the shed watermark).
        self._arrivals: deque[float] = deque()
        self._lock = threading.RLock()
        self.stats = DefenseStats()

    # -- bookkeeping ---------------------------------------------------------------

    def _meter(self, kind: str) -> None:
        registry = obs_metrics.get_registry()
        if registry is not None:
            # ``kind`` doubles as the stable ReasonCode value
            # (rate_limited / quota_exceeded / replay_rejected /
            # shed_overload); exporting it under both labels keeps the
            # legacy ``kind`` selector working while per-attack
            # breakdowns join against event/audit reason codes.
            registry.counter(
                "defense_rejections_total",
                "Admission-plane defense rejections by domain and kind",
            ).inc(domain=self.domain, kind=kind, reason_code=kind)
            if kind == "replay_rejected":
                registry.counter(
                    "replay_guard_rejections_total",
                    "Envelopes rejected by the replay guard before "
                    "signature verification",
                ).inc(domain=self.domain, reason_code=kind)

    def _bucket_for(self, peer: str, now: float, kind: str) -> TokenBucket:
        bucket = self._buckets.get(peer)
        if bucket is None:
            if kind == "domain":
                bucket = TokenBucket(
                    self.policy.domain_peer_burst,
                    self.policy.domain_peer_rate_per_s, now=now,
                )
            else:
                bucket = TokenBucket(
                    self.policy.peer_burst, self.policy.peer_rate_per_s,
                    now=now,
                )
            self._buckets[peer] = bucket
        return bucket

    def pending_estimate(self, now: float) -> int:
        """Signals that arrived inside the shed window (a deterministic
        stand-in for queue depth on the modelled clock)."""
        with self._lock:
            horizon = now - self.policy.shed_window_s
            while self._arrivals and self._arrivals[0] < horizon:
                self._arrivals.popleft()
            return len(self._arrivals)

    # -- the signalling gate (runs before verification) ----------------------------

    def admit_signal(
        self,
        *,
        peer: str,
        now: float,
        operation: str = "reserve",
        envelope_digest: bytes | None = None,
        peer_kind: str = "user",
    ) -> None:
        """The pre-verification gate, cheapest check first.

        Raises :class:`RateLimitedError`, :class:`ReplayRejectedError`,
        or :class:`OverloadShedError`; returns silently when the signal
        may proceed to (expensive) verification.  Order matters: the
        rate limiter is a dict lookup and two float ops, the replay
        guard one more lookup, the shed estimate a deque prune — all
        far cheaper than one signature verification.  ``peer_kind``
        picks the bucket class: ``"domain"`` for contracted SLA
        neighbours, ``"user"`` (the default) for everything else.
        """
        with self._lock:
            bucket = self._bucket_for(peer, now, peer_kind)
            if not bucket.take(now):
                self.stats.rate_limited += 1
                self._meter("rate_limited")
                raise RateLimitedError(
                    f"{self.domain}: peer {peer!r} exceeded "
                    f"{bucket.rate_per_s:g}/s signalling rate "
                    f"(burst {bucket.burst:g})"
                )
            if envelope_digest is not None:
                try:
                    self.replay_guard.check(envelope_digest, now)
                except ReplayRejectedError:
                    self.stats.replay_rejected += 1
                    self._meter("replay_rejected")
                    raise
            # check() raises on replay, so from here the signal is fresh.
            horizon = now - self.policy.shed_window_s
            while self._arrivals and self._arrivals[0] < horizon:
                self._arrivals.popleft()
            if (operation not in PROTECTED_OPERATIONS
                    and len(self._arrivals) >= self.pending_watermark):
                self.stats.shed_overload += 1
                self._meter("shed_overload")
                raise OverloadShedError(
                    f"{self.domain}: pending signalling "
                    f"{len(self._arrivals)} past watermark "
                    f"{self.pending_watermark} — shedding new admissions "
                    "(refresh/teardown still serviced)"
                )
            self._arrivals.append(now)

    @property
    def pending_watermark(self) -> int:
        return self.policy.pending_watermark

    def forget_digest(self, digest: bytes) -> None:
        """See :meth:`ReplayGuard.forget` (processing failed pre-state,
        a retransmission of the same bytes must be admissible)."""
        with self._lock:
            self.replay_guard.forget(digest)

    # -- reservation quotas (run by the broker's admission pipeline) ---------------

    def check_quota(
        self,
        *,
        user: str,
        upstream: str | None,
        user_count: int,
        ingress_count: int,
    ) -> None:
        """Raise :class:`QuotaExceededError` when admitting one more
        reservation would exceed the per-user or per-ingress quota.
        The caller supplies the live counts (excluding the candidate);
        this module never reaches into broker tables."""
        with self._lock:
            if user_count >= self.policy.per_user_quota:
                self.stats.quota_exceeded += 1
                self._meter("quota_exceeded")
                raise QuotaExceededError(
                    f"{self.domain}: user {user!r} holds {user_count} live "
                    f"reservations (quota {self.policy.per_user_quota})"
                )
            if (upstream is not None
                    and ingress_count >= self.policy.per_ingress_quota):
                self.stats.quota_exceeded += 1
                self._meter("quota_exceeded")
                raise QuotaExceededError(
                    f"{self.domain}: ingress {upstream!r} carries "
                    f"{ingress_count} live reservations "
                    f"(quota {self.policy.per_ingress_quota})"
                )
