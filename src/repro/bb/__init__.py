"""Bandwidth brokers: SLAs/SLSs, advance-reservation admission control,
reservation lifecycle, the policy-server entity, and the broker itself.

The inter-domain signalling that connects brokers lives in
:mod:`repro.core`; this package is each domain's local machinery.
"""

from repro.bb.admission import AdmissionController, Booking, CapacitySchedule
from repro.bb.broker import (
    INTRA,
    AdmitOutcome,
    BandwidthBroker,
    EdgeConfigurator,
    egress_resource,
    ingress_resource,
)
from repro.bb.policyserver import AkentiPolicyServer, PolicyServer, VerifiedInfo
from repro.bb.reservations import (
    Reservation,
    ReservationRequest,
    ReservationState,
    ReservationTable,
)
from repro.bb.sla import SLA, SLS, ServiceLevelAgreement, ServiceLevelSpecification

__all__ = [
    "ServiceLevelAgreement",
    "ServiceLevelSpecification",
    "SLA",
    "SLS",
    "ReservationRequest",
    "Reservation",
    "ReservationState",
    "ReservationTable",
    "CapacitySchedule",
    "AdmissionController",
    "Booking",
    "PolicyServer",
    "AkentiPolicyServer",
    "VerifiedInfo",
    "BandwidthBroker",
    "AdmitOutcome",
    "EdgeConfigurator",
    "INTRA",
    "ingress_resource",
    "egress_resource",
]
