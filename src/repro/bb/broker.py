"""The bandwidth broker (BB).

Paper §2: "A BB provides admission control and configures the edge
routers of a single administrative network domain."  This class is the
*local* half of a BB — policy consultation, SLA conformance, capacity
booking, reservation lifecycle, and edge-router (re)configuration.  The
*inter-domain* half — signed envelopes, channels, forwarding — lives in
:mod:`repro.core` and drives brokers through the methods here.

The four source-domain steps of §6.1 map onto this class as:

1. "contacts the policy server to verify [...] and that the user is
   authorized" — :meth:`decide_policy` (via the policy server);
2. "receives additional domain-wide information from the policy server"
   — the modifications on the returned decision;
3. "decides whether or not the request can be satisfied within the local
   domain, based both on the traffic profile and the policy constraints"
   — :meth:`admit`, which books capacity;
4. "forwards the request to the next BB" — the protocol layer's job.
"""

from __future__ import annotations

import logging
import random
import threading
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bb.defense import DomainDefense
    from repro.faults.injector import FaultInjector

from repro.bb.admission import AdmissionController
from repro.bb.policyserver import PolicyServer, VerifiedInfo
from repro.bb.reservations import (
    Reservation,
    ReservationRequest,
    ReservationState,
    ReservationTable,
)
from repro.bb.sla import ServiceLevelAgreement
from repro.crypto.dn import DN, DistinguishedName
from repro.crypto.keys import KeyPair, get_scheme
from repro.crypto.truststore import TrustStore
from repro.crypto.x509 import Certificate
from repro.errors import (
    AdmissionError,
    QuotaExceededError,
    SLAError,
    SLAViolationError,
)
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.audit import ledger as obs_audit
from repro.obs.events import EventKind, ReasonCode
from repro.policy.engine import PolicyDecision

__all__ = ["EdgeConfigurator", "BandwidthBroker", "AdmitOutcome", "AuditEntry"]

logger = logging.getLogger(__name__)

#: Resource-name conventions inside a broker's admission controller.
INTRA = "intra"


def ingress_resource(upstream: str) -> str:
    return f"ingress:{upstream}"


def egress_resource(downstream: str) -> str:
    return f"egress:{downstream}"


class EdgeConfigurator(Protocol):
    """How a broker touches its domain's edge routers.

    The testbed implements this against the DiffServ
    :class:`~repro.net.diffserv.NetworkModel`; unit tests use stubs.
    """

    def provision_flow(
        self, domain: str, reservation: Reservation
    ) -> None:  # pragma: no cover - protocol
        """Install per-flow classification for a claimed source-domain
        reservation."""
        ...

    def teardown_flow(
        self, domain: str, reservation: Reservation
    ) -> None:  # pragma: no cover - protocol
        ...

    def provision_ingress(
        self, domain: str, upstream: str, service_class, total_rate_mbps: float
    ) -> None:  # pragma: no cover - protocol
        """Set the aggregate policer for traffic arriving from *upstream*."""
        ...


@dataclass(frozen=True)
class AdmitOutcome:
    """Result of a local admission attempt."""

    granted: bool
    reservation: Reservation
    decision: PolicyDecision | None = None
    reason: str = ""


@dataclass(frozen=True)
class AuditEntry:
    """One line in a broker's decision trail.

    Every admission attempt and every lifecycle transition leaves an
    entry, giving domain operators the accountable record the paper's
    accounting discussion presumes ("whenever a domain actually bills the
    requesting entity ...").
    """

    at_time: float
    event: str  # admit | claim | cancel
    handle: str
    user: str
    granted: bool
    reason: str = ""
    rate_mbps: float = 0.0
    window: tuple[float, float] = (0.0, 0.0)
    upstream: str | None = None
    downstream: str | None = None


class BandwidthBroker:
    """One domain's bandwidth broker (local decision logic)."""

    def __init__(
        self,
        domain: str,
        *,
        policy_server: PolicyServer,
        admission: AdmissionController,
        dn: DistinguishedName | None = None,
        keypair: KeyPair | None = None,
        certificate: Certificate | None = None,
        truststore: TrustStore | None = None,
        configurator: EdgeConfigurator | None = None,
        scheme: str = "rsa",
        rng: random.Random | None = None,
        soft_state_ttl_s: float | None = None,
    ):
        self.domain = domain
        self.dn = dn if dn is not None else DN.make("Grid", domain, f"BB-{domain}")
        if keypair is None:
            keypair = get_scheme(scheme).generate(
                # crc32, not hash(): str hashing is salted per process and would
                # make default keygen nondeterministic across runs (REP108).
                rng if rng is not None else random.Random(zlib.crc32(domain.encode()))
            )
        self.keypair = keypair
        self.certificate = certificate
        self.truststore = truststore if truststore is not None else TrustStore()
        self.policy_server = policy_server
        self.admission = admission
        self.reservations = ReservationTable(domain)
        self.configurator = configurator
        #: SLAs keyed by peer domain: traffic *from* peer (we are downstream).
        self.slas_in: dict[str, ServiceLevelAgreement] = {}
        #: SLAs keyed by peer domain: traffic *to* peer (we are upstream).
        self.slas_out: dict[str, ServiceLevelAgreement] = {}
        #: handle -> ((resource, booking_id), ...) backing each reservation.
        self._booking_map: dict[str, tuple[tuple[str, int], ...]] = {}
        #: Validators for linked reservations of other resource kinds.
        self._linked_validators: dict[str, object] = {}
        #: Operator-facing decision trail (admit/claim/cancel events).
        self.audit_log: list[AuditEntry] = []
        #: RSVP-style soft-state lease length.  When set, every grant
        #: carries an ``expires_at`` and must be refreshed (claim and
        #: :meth:`refresh` do) or :meth:`sweep_soft_state` reclaims it.
        self.soft_state_ttl_s = soft_state_ttl_s
        #: Optional deterministic fault injector (crash windows).
        self.injector: FaultInjector | None = None
        #: Optional admission-plane defenses (rate limits live in the
        #: signalling engine; this broker consults the quota half).
        self.defense: DomainDefense | None = None
        # One reentrant lock serializes every state-mutating broker
        # operation (admit / claim / cancel / refresh / sweep).  The
        # concurrent signaller already orders whole reservations per
        # domain; this lock makes each individual operation atomic so
        # _booking_map, the audit log, and the admission ledger can
        # never interleave mid-update.
        self._lock = threading.RLock()

    # -- peering -----------------------------------------------------------------

    def register_sla(self, sla: ServiceLevelAgreement) -> None:
        """Register a contract this domain participates in (either side)."""
        if sla.downstream_domain == self.domain:
            self.slas_in[sla.upstream_domain] = sla
        elif sla.upstream_domain == self.domain:
            self.slas_out[sla.downstream_domain] = sla
        else:
            raise SLAError(
                f"SLA {sla.upstream_domain}->{sla.downstream_domain} does not "
                f"involve domain {self.domain}"
            )

    def peer_domains(self) -> frozenset[str]:
        return frozenset(self.slas_in) | frozenset(self.slas_out)

    # -- the local decision pipeline -------------------------------------------------

    def check_sla(
        self,
        request: ReservationRequest,
        *,
        upstream: str | None,
        downstream: str | None,
    ) -> None:
        """Conformance of the traffic profile with the relevant SLAs.

        An intermediate/destination BB "checks whether the requested
        traffic profile conforms to the related SLA" (§6.2) — that is the
        upstream contract; a forwarding BB must also hold an SLA toward
        the downstream domain.
        """
        if upstream is not None:
            sla = self.slas_in.get(upstream)
            if sla is None:
                raise SLAViolationError(
                    f"{self.domain}: no SLA with upstream domain {upstream!r}"
                )
            sla.check_profile(request.service_class, request.rate_mbps,
                              request.burst_bits)
        if downstream is not None:
            sla = self.slas_out.get(downstream)
            if sla is None:
                raise SLAViolationError(
                    f"{self.domain}: no SLA with downstream domain {downstream!r}"
                )
            sla.check_profile(request.service_class, request.rate_mbps,
                              request.burst_bits)

    def _resources_for(
        self, upstream: str | None, downstream: str | None
    ) -> list[str]:
        resources = []
        if upstream is not None:
            resources.append(ingress_resource(upstream))
        resources.append(INTRA)
        if downstream is not None:
            resources.append(egress_resource(downstream))
        return [r for r in resources if r in self.admission.resources()]

    def available_bandwidth(
        self,
        request: ReservationRequest,
        *,
        upstream: str | None = None,
        downstream: str | None = None,
    ) -> float:
        """Bottleneck spare capacity for this request's interval and path
        (feeds the policy language's ``Avail_BW`` variable)."""
        resources = self._resources_for(upstream, downstream)
        if not resources:
            return float("inf")
        return self.admission.available(resources, request.start, request.end)

    def decide_policy(
        self,
        request: ReservationRequest,
        verified: VerifiedInfo,
        *,
        at_time: float = 0.0,
        upstream: str | None = None,
        downstream: str | None = None,
    ) -> PolicyDecision:
        return self.policy_server.decide(
            request,
            verified,
            at_time=at_time,
            available_bandwidth_mbps=self.available_bandwidth(
                request, upstream=upstream, downstream=downstream
            ),
            linked_validator=self._linked_validator,
        )

    def _linked_validator(self, kind: str, handle: str) -> bool:
        """Validate linked reservations.  Network handles are checked in
        our own table; other resource kinds are delegated to registered
        validators (the GARA layer wires these in)."""
        validator = self._linked_validators.get(kind)
        if validator is not None:
            return bool(validator(handle))
        return self.reservations.is_valid(handle)

    def register_linked_validator(self, kind: str, fn) -> None:
        self._linked_validators[kind] = fn

    #: Audit events → structured-event kinds ("admit" splits on *granted*).
    _EVENT_KINDS = {
        "claim": EventKind.CLAIM,
        "cancel": EventKind.CANCEL,
        "expire": EventKind.EXPIRE,
    }

    def _check_up(self) -> None:
        """Deliver a pending injected crash before touching state — a
        crashed BB answers nothing, so no operation may proceed."""
        if self.injector is not None:
            self.injector.broker_op(self.domain)

    #: Audit events → decision-ledger record kinds.
    _LEDGER_KINDS = {
        "claim": obs_audit.RecordKind.CLAIM,
        "cancel": obs_audit.RecordKind.CANCEL,
        "expire": obs_audit.RecordKind.EXPIRE,
    }

    def _audit(self, event: str, resv: Reservation, *, granted: bool,
               reason: str = "", at_time: float = 0.0,
               reason_code: str | ReasonCode = "",
               decision: PolicyDecision | None = None) -> None:
        self.audit_log.append(
            AuditEntry(
                at_time=at_time,
                event=event,
                handle=resv.handle,
                user=str(resv.owner) if resv.owner else "",
                granted=granted,
                reason=reason,
                rate_mbps=resv.request.rate_mbps,
                window=(resv.request.start, resv.request.end),
                upstream=resv.upstream,
                downstream=resv.downstream,
            )
        )
        registry = obs_metrics.get_registry()
        if registry is not None:
            if event == "admit":
                registry.counter(
                    "admissions_total",
                    "Local admission attempts, by domain and outcome",
                ).inc(domain=self.domain, granted=str(granted).lower())
            elif event == "claim":
                registry.counter(
                    "claims_total", "Reservations claimed (activated)",
                ).inc(domain=self.domain)
            elif event == "cancel":
                registry.counter(
                    "cancellations_total", "Reservations cancelled",
                ).inc(domain=self.domain)
        event_log = obs_events.get_event_log()
        if event_log is not None:
            if event == "admit":
                kind = EventKind.ADMIT if granted else EventKind.DENY
            else:
                kind = self._EVENT_KINDS.get(event)
            if kind is not None:
                event_log.emit(
                    kind, at_time=at_time, domain=self.domain,
                    user=str(resv.owner) if resv.owner else "",
                    handle=resv.handle, reason=reason,
                    reason_code=reason_code,
                    # Fall back to the stashed admission-time ID so events
                    # emitted outside the request scope (the soft-state
                    # sweep) still join the originating trace.
                    correlation_id=(
                        obs_events.current_correlation_id()
                        or resv.correlation_id
                    ),
                    rate_mbps=resv.request.rate_mbps,
                )
        ledger = obs_audit.get_ledger()
        if ledger is not None:
            if event == "admit":
                record_kind = (obs_audit.RecordKind.ADMIT if granted
                               else obs_audit.RecordKind.DENY)
            else:
                record_kind = self._LEDGER_KINDS.get(event)
            if record_kind is not None:
                ledger.record(
                    record_kind,
                    at_time=at_time,
                    domain=self.domain,
                    handle=resv.handle,
                    user=str(resv.owner) if resv.owner else "",
                    correlation_id=(
                        obs_events.current_correlation_id()
                        or resv.correlation_id
                    ),
                    granted=granted and event == "admit",
                    reason=reason,
                    reason_code=(reason_code.value
                                 if isinstance(reason_code, ReasonCode)
                                 else reason_code),
                    rate_mbps=resv.request.rate_mbps,
                    window=(resv.request.start, resv.request.end),
                    upstream=resv.upstream,
                    downstream=resv.downstream,
                    matched_rule=decision.matched_rule if decision else "",
                    rules_fired=decision.rules_fired if decision else (),
                )
        if event == "admit" and not granted:
            logger.info("%s: denied %s: %s", self.domain, resv.handle, reason)
        else:
            logger.debug("%s: %s %s (granted=%s)", self.domain, event,
                         resv.handle, granted)

    def admit(
        self,
        request: ReservationRequest,
        verified: VerifiedInfo,
        *,
        at_time: float = 0.0,
        upstream: str | None = None,
        downstream: str | None = None,
    ) -> AdmitOutcome:
        """The full local pipeline: SLA check, policy, capacity booking.

        Returns an :class:`AdmitOutcome`; never raises for ordinary
        denials (the signalling layer propagates the reason upstream,
        §6.1: "the event is propagated upstream to inform the user of the
        reason for the denial").  A *transient* failure mid-admission
        (policy server down, injected crash) does raise — after first
        cancelling the PENDING record, so a retried admission never
        leaves a stuck reservation behind.
        """
        self._check_up()
        with self._lock:
            resv = self.reservations.create(request, verified.user, now=at_time)
            resv.upstream = upstream
            resv.downstream = downstream
            resv.correlation_id = obs_events.current_correlation_id() or ""
            try:
                return self._admit_pipeline(
                    resv, request, verified, at_time=at_time,
                    upstream=upstream, downstream=downstream,
                )
            except Exception:
                if resv.state is ReservationState.PENDING:
                    self.reservations.transition(
                        resv.handle, ReservationState.CANCELLED
                    )
                raise

    def _admit_pipeline(
        self,
        resv: Reservation,
        request: ReservationRequest,
        verified: VerifiedInfo,
        *,
        at_time: float,
        upstream: str | None,
        downstream: str | None,
    ) -> AdmitOutcome:
        # Reservation quotas run first: they are the cheapest check and
        # the one a flooding persona hits, so a quota'd user never costs
        # this broker an SLA/policy/capacity evaluation.
        if self.defense is not None:
            user_count, ingress_count = self._live_counts(resv)
            try:
                self.defense.check_quota(
                    user=str(resv.owner) if resv.owner else "",
                    upstream=upstream,
                    user_count=user_count,
                    ingress_count=ingress_count,
                )
            except QuotaExceededError as exc:
                resv.denial_reason = str(exc)
                self.reservations.transition(resv.handle, ReservationState.DENIED)
                self._audit("admit", resv, granted=False, reason=str(exc),
                            at_time=at_time,
                            reason_code=ReasonCode.QUOTA_EXCEEDED)
                return AdmitOutcome(False, resv, reason=str(exc))

        try:
            self.check_sla(request, upstream=upstream, downstream=downstream)
        except SLAViolationError as exc:
            resv.denial_reason = str(exc)
            self.reservations.transition(resv.handle, ReservationState.DENIED)
            self._audit("admit", resv, granted=False, reason=str(exc),
                        at_time=at_time,
                        reason_code=ReasonCode.SLA_VIOLATION)
            return AdmitOutcome(False, resv, reason=str(exc))

        decision = self.decide_policy(
            request, verified, at_time=at_time, upstream=upstream,
            downstream=downstream,
        )
        if not decision.granted:
            resv.denial_reason = decision.reason
            self.reservations.transition(resv.handle, ReservationState.DENIED)
            self._audit("admit", resv, granted=False, reason=decision.reason,
                        at_time=at_time,
                        reason_code=ReasonCode.POLICY_DENIED,
                        decision=decision)
            return AdmitOutcome(False, resv, decision=decision,
                                reason=decision.reason)

        resources = self._resources_for(upstream, downstream)
        if resources:
            try:
                bookings = self.admission.book_all(
                    resources, request.start, request.end, request.rate_mbps,
                    tag=resv.handle,
                )
            except AdmissionError as exc:
                resv.denial_reason = str(exc)
                self.reservations.transition(resv.handle, ReservationState.DENIED)
                self._audit("admit", resv, granted=False, reason=str(exc),
                            at_time=at_time,
                            reason_code=ReasonCode.CAPACITY_EXCEEDED,
                            decision=decision)
                return AdmitOutcome(False, resv, decision=decision,
                                    reason=str(exc))
            resv.bookings = tuple(b for _, b in bookings)
            self._booking_map[resv.handle] = bookings
        if self.soft_state_ttl_s is not None:
            resv.expires_at = at_time + self.soft_state_ttl_s
        self.reservations.transition(resv.handle, ReservationState.GRANTED)
        self._audit("admit", resv, granted=True, reason=decision.reason,
                    at_time=at_time, decision=decision)
        return AdmitOutcome(True, resv, decision=decision, reason=decision.reason)

    def _live_counts(self, resv: Reservation) -> tuple[int, int]:
        """Live (pending/granted/active) reservations held by the same
        owner and arriving over the same ingress, excluding *resv* itself
        (it was just created PENDING by :meth:`admit`)."""
        user = str(resv.owner) if resv.owner else ""
        user_count = 0
        ingress_count = 0
        for state in (ReservationState.PENDING, ReservationState.GRANTED,
                      ReservationState.ACTIVE):
            for other in self.reservations.in_state(state):
                if other.handle == resv.handle:
                    continue
                if user and str(other.owner) == user:
                    user_count += 1
                if resv.upstream is not None and other.upstream == resv.upstream:
                    ingress_count += 1
        return user_count, ingress_count

    # -- lifecycle ----------------------------------------------------------------------

    def claim(self, handle: str, *, at_time: float = 0.0) -> Reservation:
        """Bind a granted reservation to traffic: configure edge routers."""
        self._check_up()
        with self._lock:
            resv = self.reservations.transition(handle, ReservationState.ACTIVE)
            if self.soft_state_ttl_s is not None:
                self.reservations.refresh(
                    handle, now=at_time, ttl_s=self.soft_state_ttl_s
                )
            self._audit("claim", resv, granted=True, at_time=at_time)
            if self.configurator is not None:
                if resv.upstream is None:
                    # We are the source domain: per-flow classification.
                    self.configurator.provision_flow(self.domain, resv)
                self._refresh_ingress(resv.request.service_class)
            return resv

    def cancel(
        self,
        handle: str,
        *,
        reason: str = "",
        reason_code: str | ReasonCode = ReasonCode.USER_REQUESTED,
    ) -> Reservation:
        """Cancel a reservation.  *reason_code* distinguishes an
        operator/user cancellation (the default) from an unwind release
        balancing a downstream denial, so the audit ledger and event
        log agree on why the capacity came back."""
        self._check_up()
        with self._lock:
            resv = self.reservations.get(handle)
            was_active = resv.state is ReservationState.ACTIVE
            resv = self.reservations.transition(
                handle, ReservationState.CANCELLED
            )
            self._audit("cancel", resv, granted=True, reason=reason,
                        reason_code=reason_code)
            bookings = self._booking_map.pop(handle, ())
            if bookings:
                self.admission.release_all(bookings)
            if self.configurator is not None:
                if was_active and resv.upstream is None:
                    self.configurator.teardown_flow(self.domain, resv)
                self._refresh_ingress(resv.request.service_class)
            return resv

    def refresh(self, handle: str, *, at_time: float = 0.0) -> Reservation:
        """Renew a reservation's soft-state lease (RSVP-style refresh).
        A no-op lease-wise when the broker runs hard state."""
        self._check_up()
        with self._lock:
            if self.soft_state_ttl_s is None:
                return self.reservations.get(handle)
            return self.reservations.refresh(
                handle, now=at_time, ttl_s=self.soft_state_ttl_s
            )

    def sweep_soft_state(self, now: float) -> tuple[Reservation, ...]:
        """Reclaim reservations whose soft-state lease lapsed: release
        their capacity bookings and deprovision.  This is the safety net
        that frees upstream admissions when a failed hop prevented the
        explicit unwind from reaching this domain.
        """
        tracer = obs_spans.get_tracer()
        sweep_span = None
        if tracer is not None:
            # The sweep runs outside any request, so it gets a trace of
            # its own; each reclaimed reservation's EXPIRE event links
            # back to the originating trace via its stashed ID.
            sweep_span = tracer.begin(
                "sweep",
                trace_id=obs_spans.mint_correlation_id(),
                domain=self.domain,
            )
        registry = obs_metrics.get_registry()
        with self._lock:
            lapsed = self.reservations.sweep_expired(now)
            for resv in lapsed:
                bookings = self._booking_map.pop(resv.handle, ())
                if bookings:
                    self.admission.release_all(bookings)
                if self.configurator is not None:
                    if resv.upstream is None:
                        self.configurator.teardown_flow(self.domain, resv)
                    self._refresh_ingress(resv.request.service_class)
                if registry is not None:
                    registry.counter(
                        "soft_state_expirations_total",
                        "Reservations reclaimed by soft-state expiry",
                    ).inc(domain=self.domain)
                self._audit(
                    "expire", resv, granted=True,
                    reason="soft-state lease expired", at_time=now,
                    reason_code=ReasonCode.SOFT_STATE_EXPIRED,
                )
        if tracer is not None and sweep_span is not None:
            tracer.end(sweep_span, reclaimed=len(lapsed))
        return lapsed

    def _refresh_ingress(self, service_class) -> None:
        """Recompute aggregate policer rates per upstream from the set of
        currently ACTIVE reservations (the BB 'configures the edge
        routers of a single administrative network domain')."""
        if self.configurator is None:
            return
        totals: dict[str, float] = {}
        for resv in self.reservations.in_state(ReservationState.ACTIVE):
            if resv.upstream is not None and resv.request.service_class == service_class:
                totals[resv.upstream] = totals.get(resv.upstream, 0.0) + resv.request.rate_mbps
        for upstream in self.slas_in:
            self.configurator.provision_ingress(
                self.domain, upstream, service_class, totals.get(upstream, 0.0)
            )

    def validate_handle(self, handle: str, *, at_time: float | None = None) -> bool:
        """Online reservation validity query (for downstream policies and
        tunnel admission)."""
        return self.reservations.is_valid(handle, at_time=at_time)
