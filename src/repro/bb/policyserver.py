"""The policy-server entity of the architecture.

Paper §5: "We introduce an entity called a policy server that encapsulates
a BB's admission control procedures.  When a request comes in, it is
forwarded to the policy server which executes local policy and passes
back a result ('yes' or 'no') and a modified request."

The policy server owns:

* the domain's policy engine (a rule tree, typically compiled from the
  paper's policy-file syntax);
* the verification machinery that turns *claimed* authorization
  information into *verified* context: signed group assertions are
  checked against registered group servers, capability chains against
  trusted community (CAS) keys;
* the *domain-wide information* of §6.1 — attributes the domain attaches
  to a granted request before it is forwarded downstream (required group
  hints, cost offers, traffic-engineering parameters).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Mapping,
    Sequence,
)

from repro.analysis.policycheck import verify_policy
from repro.crypto.capability import verify_delegation_chain
from repro.crypto.dn import DistinguishedName
from repro.crypto.keys import PublicKey
from repro.crypto.x509 import Certificate
from repro.errors import DelegationError
from repro.obs import metrics as obs_metrics
from repro.obs.audit import ledger as obs_audit
from repro.policy.engine import (
    Decision,
    PolicyDecision,
    PolicyEngine,
    RequestContext,
)
from repro.policy.groupserver import GroupServer
from repro.policy.attributes import SignedAssertion
from repro.bb.reservations import ReservationRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector

__all__ = ["VerifiedInfo", "PolicyServer", "AkentiPolicyServer"]

logger = logging.getLogger(__name__)


def _record_decision(domain: str, decision: PolicyDecision) -> None:
    """Shared decision telemetry for every policy-server flavour."""
    registry = obs_metrics.get_registry()
    if registry is not None:
        registry.counter(
            "policy_decisions_total",
            "Policy-engine decisions, by domain and outcome",
        ).inc(domain=domain, decision=decision.decision.name.lower())
    logger.debug("%s: policy %s (%s)", domain, decision.decision.name,
                 decision.reason)


@dataclass(frozen=True)
class VerifiedInfo:
    """Authorization information after verification.

    Produced by :meth:`PolicyServer.verify_credentials` (or by the
    signalling layer); only verified facts belong here.
    """

    user: DistinguishedName | None = None
    groups: frozenset[str] = frozenset()
    capabilities: frozenset[str] = frozenset()
    capability_issuers: frozenset[str] = frozenset()
    capability_restrictions: frozenset[str] = frozenset()
    #: Diagnostic: claims that failed verification, with reasons.
    rejected: tuple[str, ...] = ()
    #: Every assertion as received (unfiltered) — policy engines that do
    #: their own certificate evaluation (the Akenti adapter) consume these.
    raw_assertions: tuple[SignedAssertion, ...] = ()


def _community_of(issuer: DistinguishedName) -> str:
    """Derive the community name from a CAS DN (OU by convention)."""
    return issuer.get("OU") or issuer.common_name or str(issuer)


class PolicyServer:
    """Local policy decision point for one domain's bandwidth broker."""

    def __init__(
        self,
        domain: str,
        engine: PolicyEngine,
        *,
        group_servers: Iterable[GroupServer] = (),
        trusted_communities: Mapping[DistinguishedName, PublicKey] | None = None,
        predicates: Mapping[str, Callable[[RequestContext], bool]] | None = None,
        domain_attributes: Mapping[str, Any] | None = None,
    ):
        self.domain = domain
        self.engine = engine
        #: Static-verifier findings for the loaded policy (warn-only: a
        #: questionable policy still loads, but the operator hears about
        #: it).  An engine with no nodes is pure-default by construction
        #: (e.g. the Akenti adapter) and is not checked.
        self.policy_findings = (
            verify_policy(engine.nodes, name=engine.name)
            if engine.nodes
            else []
        )
        if self.policy_findings:
            registry = obs_metrics.get_registry()
            if registry is not None:
                registry.counter(
                    "policy_lint_findings_total",
                    "Static-verifier findings on loaded policies",
                ).inc(len(self.policy_findings), domain=domain)
            for finding in self.policy_findings:
                logger.warning(
                    "%s: policy verifier: %s", domain, finding.format()
                )
        self._group_servers = {gs.name: gs for gs in group_servers}
        self._trusted_communities = dict(trusted_communities or {})
        self._predicates = dict(predicates or {})
        self.domain_attributes = dict(domain_attributes or {})
        #: Counters for the benchmark harness.
        self.decisions = 0
        #: Optional deterministic fault injector (timeout/unavailable).
        self.injector: FaultInjector | None = None
        #: Optional revocation oracle consulted on every delegation-chain
        #: verification (cached *and* uncached paths) — typically the
        #: community CA's ``is_revoked``.
        self.revocation_checker: Callable[[Certificate], bool] | None = None

    def _check_up(self) -> None:
        """Deliver a pending injected outage before answering a query."""
        if self.injector is not None:
            self.injector.policy_op(self.domain)

    # -- configuration -----------------------------------------------------------

    def register_group_server(self, server: GroupServer) -> None:
        self._group_servers[server.name] = server

    def trust_community(self, cas_dn: DistinguishedName, key: PublicKey) -> None:
        self._trusted_communities[cas_dn] = key

    def register_predicate(
        self, name: str, fn: Callable[[RequestContext], bool]
    ) -> None:
        self._predicates[name] = fn

    # -- credential verification ----------------------------------------------------

    def verify_credentials(
        self,
        *,
        user: DistinguishedName | None,
        assertions: Sequence[SignedAssertion] = (),
        capability_chains: Sequence[Sequence[Certificate]] = (),
        at_time: float = 0.0,
    ) -> VerifiedInfo:
        """Turn claimed credentials into verified facts.

        Group assertions are accepted when their issuer is a registered
        group server and the server still vouches for them; capability
        chains when they verify against a trusted community key
        (:func:`~repro.crypto.capability.verify_delegation_chain`, checks
        1–6 of §6.5).  Bad credentials are recorded in ``rejected``, not
        fatal — policy simply sees fewer verified facts.
        """
        self._check_up()
        groups: set[str] = set()
        rejected: list[str] = []
        for assertion in assertions:
            server = self._group_servers.get(assertion.issuer)
            if server is None:
                rejected.append(f"assertion from unknown issuer {assertion.issuer}")
                obs_audit.note_check(
                    "assertion", subject=str(assertion.issuer),
                    verdict="rejected", detail="unknown issuer",
                )
                continue
            if assertion.subject != user:
                rejected.append(f"assertion subject {assertion.subject} is not the requestor")
                obs_audit.note_check(
                    "assertion", subject=str(assertion.issuer),
                    verdict="rejected", detail="subject mismatch",
                )
                continue
            if not server.verify_assertion(assertion, at_time=at_time):
                rejected.append(f"assertion by {assertion.issuer} failed verification")
                obs_audit.note_check(
                    "assertion", subject=str(assertion.issuer),
                    verdict="rejected", detail="signature/vouching failed",
                )
                continue
            group = assertion.get("group")
            if group:
                groups.add(group)
            obs_audit.note_check(
                "assertion", subject=str(assertion.issuer),
                detail=f"group {group!r}" if group else "",
            )

        capabilities: set[str] = set()
        issuers: set[str] = set()
        restrictions: set[str] = set()
        for chain in capability_chains:
            try:
                result = verify_delegation_chain(
                    list(chain),
                    trusted_issuers=self._trusted_communities,
                    at_time=at_time,
                    revocation_checker=self.revocation_checker,
                )
            except DelegationError as exc:
                rejected.append(f"capability chain rejected: {exc}")
                continue
            capabilities |= result.capabilities
            restrictions |= result.restrictions
            issuers.add(_community_of(result.issuer))

        if rejected:
            registry = obs_metrics.get_registry()
            if registry is not None:
                registry.counter(
                    "credential_rejections_total",
                    "Claimed credentials that failed verification",
                ).inc(len(rejected), domain=self.domain)
            for why in rejected:
                logger.info("%s: rejected credential: %s", self.domain, why)
        return VerifiedInfo(
            user=user,
            groups=frozenset(groups),
            capabilities=frozenset(capabilities),
            capability_issuers=frozenset(issuers),
            capability_restrictions=frozenset(restrictions),
            rejected=tuple(rejected),
            raw_assertions=tuple(assertions),
        )

    # -- decision ----------------------------------------------------------------------

    def build_context(
        self,
        request: ReservationRequest,
        verified: VerifiedInfo,
        *,
        at_time: float = 0.0,
        available_bandwidth_mbps: float = float("inf"),
        linked_validator: Callable[[str, str], bool] | None = None,
    ) -> RequestContext:
        return RequestContext(
            user=verified.user,
            bandwidth_mbps=request.rate_mbps,
            time_of_day_h=(at_time / 3600.0) % 24.0,
            reservation_type="Network",
            source_domain=request.source_domain,
            destination_domain=request.destination_domain,
            available_bandwidth_mbps=available_bandwidth_mbps,
            cost_offer=request.cost_ceiling,
            groups=verified.groups,
            capabilities=verified.capabilities,
            capability_issuers=verified.capability_issuers,
            linked_reservations=request.linked_reservations,
            attributes=request.attributes,
            predicates=self._predicates,
            linked_validator=linked_validator,
        )

    def decide(
        self,
        request: ReservationRequest,
        verified: VerifiedInfo,
        *,
        at_time: float = 0.0,
        available_bandwidth_mbps: float = float("inf"),
        linked_validator: Callable[[str, str], bool] | None = None,
    ) -> PolicyDecision:
        """Run local policy; on GRANT, attach the domain-wide additions as
        request modifications (the 'modified request' of §5)."""
        self._check_up()
        self.decisions += 1
        ctx = self.build_context(
            request,
            verified,
            at_time=at_time,
            available_bandwidth_mbps=available_bandwidth_mbps,
            linked_validator=linked_validator,
        )
        decision = self.engine.evaluate(ctx)
        if decision.decision is Decision.GRANT and self.domain_attributes:
            # replace() keeps the provenance fields (matched_rule,
            # rules_fired) the engine stamped on the decision.
            decision = replace(
                decision,
                modifications=tuple(sorted(self.domain_attributes.items())),
            )
        _record_decision(self.domain, decision)
        return decision


class AkentiPolicyServer(PolicyServer):
    """A policy server whose decisions come from an Akenti engine.

    The paper insists the propagation protocol "is independent of policy
    syntax" (§4): the same RAR envelope can carry Akenti user-attribute
    certificates instead of (or alongside) rule-engine credentials, and an
    end domain may evaluate them with Akenti's use-condition model.  This
    adapter proves the claim in code: it plugs into the broker exactly
    like the rule-engine policy server, but authorizes by submitting the
    request's raw signed assertions to an
    :class:`~repro.policy.akenti.AkentiEngine`.
    """

    def __init__(
        self,
        domain: str,
        akenti,
        resource: str,
        **kwargs: Any,
    ):
        from repro.policy.engine import PolicyEngine

        super().__init__(domain, PolicyEngine([], name=f"akenti:{domain}"),
                         **kwargs)
        self.akenti = akenti
        self.resource = resource

    def decide(
        self,
        request: ReservationRequest,
        verified: VerifiedInfo,
        *,
        at_time: float = 0.0,
        available_bandwidth_mbps: float = float("inf"),
        linked_validator=None,
    ) -> PolicyDecision:
        self._check_up()
        self.decisions += 1
        rule_id = f"akenti:{self.domain}/{self.resource}"
        if verified.user is None:
            decision = PolicyDecision(
                Decision.DENY, reason="akenti: no user",
                matched_rule=rule_id, rules_fired=(rule_id,),
            )
        elif self.akenti.authorize(
            self.resource,
            verified.user,
            verified.raw_assertions,
            at_time=at_time,
        ):
            decision = PolicyDecision(
                Decision.GRANT,
                reason=f"akenti: use conditions on {self.resource!r} satisfied",
                modifications=tuple(sorted(self.domain_attributes.items())),
                matched_rule=rule_id, rules_fired=(rule_id,),
            )
        else:
            decision = PolicyDecision(
                Decision.DENY,
                reason=f"akenti: use conditions on {self.resource!r} not satisfied",
                matched_rule=rule_id, rules_fired=(rule_id,),
            )
        _record_decision(self.domain, decision)
        return decision
