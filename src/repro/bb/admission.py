"""Advance-reservation admission control.

A bandwidth broker must answer: *can I carry R Mb/s between t₀ and t₁ in
addition to everything already admitted?*  A :class:`CapacitySchedule`
tracks bookings over time for one capacity-constrained resource (an
interdomain SLA, an intra-domain trunk); the check is a boundary sweep
over overlapping bookings, exact for piecewise-constant demand.

An :class:`AdmissionController` aggregates the schedules a broker cares
about and books all-or-nothing across them.
"""

from __future__ import annotations

import itertools
import logging
import threading
from dataclasses import dataclass

from repro.errors import AdmissionError, CapacityExceededError
from repro.obs import metrics as obs_metrics

__all__ = ["Booking", "CapacitySchedule", "AdmissionController"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class Booking:
    booking_id: int
    start: float
    end: float
    rate_mbps: float
    tag: str = ""


class CapacitySchedule:
    """Time-varying capacity bookkeeping for one resource."""

    def __init__(self, name: str, capacity_mbps: float):
        if capacity_mbps <= 0:
            raise AdmissionError("capacity must be positive")
        self.name = name
        self.capacity_mbps = capacity_mbps
        self._bookings: dict[int, Booking] = {}
        self._ids = itertools.count(1)
        # Reentrant: ``book`` calls ``available`` -> ``peak_load`` ->
        # ``load_at`` while already holding the lock.  Check-then-book
        # must be one critical section or two concurrent signalling
        # workers could both see the same spare capacity and
        # oversubscribe the resource.
        self._lock = threading.RLock()

    # -- queries -------------------------------------------------------------------

    def load_at(self, when: float) -> float:
        """Total booked rate at instant *when* (bookings are [start, end))."""
        with self._lock:
            return sum(
                b.rate_mbps
                for b in self._bookings.values()
                if b.start <= when < b.end
            )

    def peak_load(self, start: float, end: float) -> float:
        """Maximum total booked rate over [start, end)."""
        with self._lock:
            peak = 0.0
            # Load only changes at booking boundaries; sample each boundary
            # inside the window plus the window start.
            points = {start}
            for b in self._bookings.values():
                if b.end > start and b.start < end:
                    points.add(max(b.start, start))
            for p in points:
                peak = max(peak, self.load_at(p))
            return peak

    def available(self, start: float, end: float) -> float:
        """Worst-case spare capacity over [start, end)."""
        if end <= start:
            raise AdmissionError("interval must have positive width")
        return self.capacity_mbps - self.peak_load(start, end)

    def utilization(self, when: float) -> float:
        return self.load_at(when) / self.capacity_mbps

    @property
    def bookings(self) -> tuple[Booking, ...]:
        with self._lock:
            return tuple(self._bookings.values())

    # -- mutation --------------------------------------------------------------------

    def book(
        self, start: float, end: float, rate_mbps: float, *, tag: str = ""
    ) -> Booking:
        """Admit a booking or raise :class:`CapacityExceededError`."""
        if rate_mbps <= 0:
            raise AdmissionError("booked rate must be positive")
        registry = obs_metrics.get_registry()
        with self._lock:
            spare = self.available(start, end)
            if rate_mbps > spare + 1e-9:
                if registry is not None:
                    registry.counter(
                        "booking_failures_total",
                        "Capacity bookings refused for lack of spare capacity",
                    ).inc(resource=self.name)
                logger.debug(
                    "%s: booking of %.1f Mb/s refused (%.3f spare)",
                    self.name, rate_mbps, max(spare, 0.0),
                )
                raise CapacityExceededError(
                    f"{self.name}: requested {rate_mbps} Mb/s over "
                    f"[{start}, {end}) "
                    f"but only {max(spare, 0.0):.3f} Mb/s available "
                    f"(capacity {self.capacity_mbps})"
                )
            booking = Booking(next(self._ids), start, end, rate_mbps, tag)
            self._bookings[booking.booking_id] = booking
            load_now = self.load_at(start)
        if registry is not None:
            registry.counter(
                "bookings_total", "Capacity bookings admitted, by resource",
            ).inc(resource=self.name)
            registry.gauge(
                "booked_load_mbps",
                "Total booked rate at the start of the latest booking",
            ).set(load_now, resource=self.name)
        return booking

    def release(self, booking_id: int) -> None:
        with self._lock:
            if booking_id not in self._bookings:
                raise AdmissionError(
                    f"{self.name}: unknown booking {booking_id}"
                )
            del self._bookings[booking_id]


class AdmissionController:
    """All-or-nothing booking across several capacity schedules."""

    def __init__(self) -> None:
        self._schedules: dict[str, CapacitySchedule] = {}
        # Guards the schedule map *and* makes multi-resource book_all
        # atomic against other book_all/release_all calls.
        self._lock = threading.RLock()

    def add_resource(self, name: str, capacity_mbps: float) -> CapacitySchedule:
        with self._lock:
            if name in self._schedules:
                raise AdmissionError(f"duplicate resource {name!r}")
            schedule = CapacitySchedule(name, capacity_mbps)
            self._schedules[name] = schedule
            return schedule

    def schedule(self, name: str) -> CapacitySchedule:
        with self._lock:
            try:
                return self._schedules[name]
            except KeyError:
                raise AdmissionError(f"unknown resource {name!r}") from None

    def resources(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._schedules)

    def available(self, names: list[str], start: float, end: float) -> float:
        """Bottleneck spare capacity across the named resources."""
        if not names:
            raise AdmissionError("no resources named")
        return min(self.schedule(n).available(start, end) for n in names)

    def book_all(
        self,
        names: list[str],
        start: float,
        end: float,
        rate_mbps: float,
        *,
        tag: str = "",
    ) -> tuple[tuple[str, int], ...]:
        """Book *rate_mbps* on every named resource, atomically: on any
        failure, already-made bookings are rolled back and the error is
        re-raised.  Returns ``((resource, booking_id), ...)``."""
        made: list[tuple[str, int]] = []
        with self._lock:
            try:
                for name in names:
                    booking = self.schedule(name).book(
                        start, end, rate_mbps, tag=tag
                    )
                    made.append((name, booking.booking_id))
            except AdmissionError:
                for name, bid in made:
                    self.schedule(name).release(bid)
                raise
        return tuple(made)

    def release_all(self, bookings: tuple[tuple[str, int], ...]) -> None:
        with self._lock:
            for name, bid in bookings:
                self.schedule(name).release(bid)
