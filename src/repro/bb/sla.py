"""Service level agreements (SLA) and service level specifications (SLS).

Paper §2: "Whenever the network reservation end-points are in different
domains, a specific contract between peered domains comes into place,
used by BBs as input for their admission control procedures.  A service
level agreement (SLA) regulates the acceptance and the constraints of a
given traffic profile.  Service Level Specifications (SLS) are used to
describe the appropriate QoS parameters that an SLA demands."

Paper §6: "While SLAs are used to regulate the services between two
domains, we extend this agreement by adding information to facilitate the
trust relationship between two peered BBs.  This information includes the
certificates of the peered BBs as well as the certificate of the issuing
certificate authority, all used during the SSL handshake."  The
``peer_certificate`` / ``peer_ca_certificate`` fields carry exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.x509 import Certificate
from repro.errors import SLAError, SLAViolationError
from repro.net.packet import DSCP

__all__ = ["ServiceLevelSpecification", "ServiceLevelAgreement", "SLS", "SLA"]


@dataclass(frozen=True)
class ServiceLevelSpecification:
    """QoS parameters of one service class under an SLA.

    ``excess_treatment`` ("drop" or "downgrade") and ``availability`` are
    the "parameters for treatment of excess traffic or reliability
    parameters expected for this service" that §6.1 says a source BB may
    attach for downstream domains.
    """

    service_class: DSCP = DSCP.EF
    max_rate_mbps: float = 100.0
    max_burst_bits: float = 200_000.0
    max_delay_ms: float | None = None
    excess_treatment: str = "drop"
    availability: float = 0.999

    def __post_init__(self) -> None:
        if self.max_rate_mbps <= 0:
            raise SLAError("SLS rate must be positive")
        if self.excess_treatment not in ("drop", "downgrade"):
            raise SLAError(
                f"excess_treatment must be 'drop' or 'downgrade', "
                f"got {self.excess_treatment!r}"
            )
        if not (0.0 < self.availability <= 1.0):
            raise SLAError("availability must be in (0, 1]")

    def to_cbe(self) -> dict:
        return {
            "service_class": int(self.service_class),
            "max_rate_mbps": self.max_rate_mbps,
            "max_burst_bits": self.max_burst_bits,
            "max_delay_ms": self.max_delay_ms,
            "excess_treatment": self.excess_treatment,
            "availability": self.availability,
        }


@dataclass
class ServiceLevelAgreement:
    """A contract between an upstream and a downstream domain.

    Directionality follows the traffic: ``upstream_domain`` injects
    traffic into ``downstream_domain``.  ``slss`` maps service class to
    its specification.  The certificate fields anchor the mutual
    authentication of the two BBs' signalling channel.
    """

    upstream_domain: str
    downstream_domain: str
    slss: dict[DSCP, ServiceLevelSpecification] = field(default_factory=dict)
    peer_certificate: Certificate | None = None
    peer_ca_certificate: Certificate | None = None
    #: Price per Mb/s-hour charged by the downstream domain (transitive
    #: billing, §6.4).
    price_per_mbps_hour: float = 1.0

    def __post_init__(self) -> None:
        if self.upstream_domain == self.downstream_domain:
            raise SLAError("an SLA joins two distinct domains")
        if not self.slss:
            self.slss = {DSCP.EF: ServiceLevelSpecification()}

    def sls_for(self, service_class: DSCP) -> ServiceLevelSpecification:
        try:
            return self.slss[service_class]
        except KeyError:
            raise SLAViolationError(
                f"SLA {self.upstream_domain}->{self.downstream_domain} covers no "
                f"{service_class.name} service"
            ) from None

    def check_profile(
        self, service_class: DSCP, rate_mbps: float, burst_bits: float | None = None
    ) -> ServiceLevelSpecification:
        """Raise :class:`~repro.errors.SLAViolationError` unless the
        requested traffic profile conforms; return the governing SLS."""
        sls = self.sls_for(service_class)
        if rate_mbps <= 0:
            raise SLAViolationError("requested rate must be positive")
        if rate_mbps > sls.max_rate_mbps:
            raise SLAViolationError(
                f"rate {rate_mbps} Mb/s exceeds SLA maximum "
                f"{sls.max_rate_mbps} Mb/s "
                f"({self.upstream_domain}->{self.downstream_domain}, "
                f"{service_class.name})"
            )
        if burst_bits is not None and burst_bits > sls.max_burst_bits:
            raise SLAViolationError(
                f"burst {burst_bits} bits exceeds SLA maximum {sls.max_burst_bits}"
            )
        return sls


#: Short aliases matching the paper's acronyms.
SLS = ServiceLevelSpecification
SLA = ServiceLevelAgreement
