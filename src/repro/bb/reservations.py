"""Reservation objects, handles, states, and the per-broker table.

GARA-style reservations are *advance* reservations: a reservation is
GRANTED for a future interval, must be CLAIMED (bound to actual traffic)
to become ACTIVE, and can be MODIFIED or CANCELLED (paper references
[12, 13]).  Each bandwidth broker keeps its own table; the handle is
globally unique so a downstream policy can refer to an upstream
reservation (``CPU_Reservation_ID=111`` in Figure 6).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field, replace
from enum import Enum

from repro.crypto.dn import DistinguishedName
from repro.errors import (
    ReservationStateError,
    UnknownReservationError,
)
from repro.net.packet import DSCP

__all__ = ["ReservationState", "ReservationRequest", "Reservation", "ReservationTable"]


class ReservationState(Enum):
    PENDING = "pending"
    GRANTED = "granted"
    ACTIVE = "active"
    CANCELLED = "cancelled"
    EXPIRED = "expired"
    DENIED = "denied"


#: Legal state transitions.
_TRANSITIONS = {
    ReservationState.PENDING: {
        ReservationState.GRANTED,
        ReservationState.DENIED,
        ReservationState.CANCELLED,
    },
    ReservationState.GRANTED: {
        ReservationState.ACTIVE,
        ReservationState.CANCELLED,
        ReservationState.EXPIRED,
    },
    ReservationState.ACTIVE: {
        ReservationState.CANCELLED,
        ReservationState.EXPIRED,
    },
    ReservationState.CANCELLED: set(),
    ReservationState.EXPIRED: set(),
    ReservationState.DENIED: set(),
}


@dataclass(frozen=True)
class ReservationRequest:
    """What a user asks for: the ``res_spec`` of the paper's notation.

    ``linked_reservations`` carries references to reservations of other
    resource types (the CPU reservation of Figures 5/6); ``cost_ceiling``
    the "cost that the user is willing to accept" (§6.1).
    """

    source_host: str
    destination_host: str
    source_domain: str
    destination_domain: str
    rate_mbps: float
    start: float
    end: float
    service_class: DSCP = DSCP.EF
    burst_bits: float = 100_000.0
    cost_ceiling: float = float("inf")
    linked_reservations: tuple[tuple[str, str], ...] = ()
    #: Free-form attributes added by the user or upstream domains.
    attributes: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.rate_mbps <= 0:
            raise ReservationStateError("rate must be positive")
        if self.end <= self.start:
            raise ReservationStateError("end must be after start")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def attribute(self, name: str, default: object = None) -> object:
        for k, v in self.attributes:
            if k == name:
                return v
        return default

    def to_cbe(self) -> dict:
        return {
            "source_host": self.source_host,
            "destination_host": self.destination_host,
            "source_domain": self.source_domain,
            "destination_domain": self.destination_domain,
            "rate_mbps": self.rate_mbps,
            "start": self.start,
            "end": self.end,
            "service_class": int(self.service_class),
            "burst_bits": self.burst_bits,
            "cost_ceiling": "any" if self.cost_ceiling == float("inf")
            else self.cost_ceiling,
            "linked_reservations": [list(p) for p in self.linked_reservations],
            "attributes": {k: v for k, v in self.attributes},
        }

    def with_attributes(self, **extra: object) -> "ReservationRequest":
        """A copy with additional attributes (a domain 'modifying the
        request' before forwarding, §5)."""
        merged = dict(self.attributes)
        merged.update(extra)
        return replace(self, attributes=tuple(sorted(merged.items())))


_handle_counter = itertools.count(1)


def _new_handle(domain: str) -> str:
    return f"RES-{domain}-{next(_handle_counter):06d}"


@dataclass
class Reservation:
    """One admitted (or pending) reservation in a broker's table."""

    handle: str
    request: ReservationRequest
    owner: DistinguishedName | None
    state: ReservationState = ReservationState.PENDING
    #: Capacity bookings (admission-controller booking ids) backing this
    #: reservation; released on cancel/expire.
    bookings: tuple[int, ...] = ()
    #: Why the reservation was denied, when it was.
    denial_reason: str = ""
    created_at: float = 0.0
    #: Neighbouring domains on the reservation's path (None at the ends).
    upstream: str | None = None
    downstream: str | None = None
    #: RSVP-style soft-state lease: when set, the reservation must be
    #: refreshed before this instant or the sweep reclaims it — the
    #: backstop that frees capacity even when an explicit unwind after a
    #: failed hop never arrives.  ``None`` = hard state (no lease).
    expires_at: float | None = None
    #: Correlation ID of the signalling request that admitted this
    #: reservation, stashed so lifecycle events emitted outside the
    #: request scope (the soft-state sweep above all) still join the
    #: originating trace.  Empty when admitted with observability off.
    correlation_id: str = ""

    def active_at(self, when: float) -> bool:
        return (
            self.state in (ReservationState.GRANTED, ReservationState.ACTIVE)
            and self.request.start <= when < self.request.end
        )


class ReservationTable:
    """Handle-indexed reservation store with checked state transitions."""

    def __init__(self, domain: str):
        self.domain = domain
        self._by_handle: dict[str, Reservation] = {}
        # Reentrant: transition/refresh call ``get`` under the lock.
        # State transitions are check-then-set and must not interleave
        # between concurrent signalling workers.
        self._lock = threading.RLock()

    def create(
        self,
        request: ReservationRequest,
        owner: DistinguishedName | None,
        *,
        now: float = 0.0,
        handle: str | None = None,
    ) -> Reservation:
        if handle is None:
            handle = _new_handle(self.domain)
        with self._lock:
            if handle in self._by_handle:
                raise ReservationStateError(f"duplicate handle {handle!r}")
            resv = Reservation(handle, request, owner, created_at=now)
            self._by_handle[handle] = resv
            return resv

    def get(self, handle: str) -> Reservation:
        with self._lock:
            try:
                return self._by_handle[handle]
            except KeyError:
                raise UnknownReservationError(
                    f"no reservation {handle!r} in domain {self.domain}"
                ) from None

    def __contains__(self, handle: str) -> bool:
        with self._lock:
            return handle in self._by_handle

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_handle)

    def transition(self, handle: str, new_state: ReservationState) -> Reservation:
        with self._lock:
            resv = self.get(handle)
            if new_state not in _TRANSITIONS[resv.state]:
                raise ReservationStateError(
                    f"{handle}: illegal transition {resv.state.value} -> "
                    f"{new_state.value}"
                )
            resv.state = new_state
            return resv

    def all(self) -> tuple[Reservation, ...]:
        with self._lock:
            return tuple(self._by_handle.values())

    def in_state(self, *states: ReservationState) -> tuple[Reservation, ...]:
        with self._lock:
            return tuple(
                r for r in self._by_handle.values() if r.state in states
            )

    def active_at(self, when: float) -> tuple[Reservation, ...]:
        with self._lock:
            return tuple(
                r for r in self._by_handle.values() if r.active_at(when)
            )

    def is_valid(self, handle: str, *, at_time: float | None = None) -> bool:
        """Online validity check used by interdomain policy dependencies
        (``HasValidCPUResv``): the handle exists and is granted/active."""
        with self._lock:
            resv = self._by_handle.get(handle)
        if resv is None:
            return False
        if at_time is not None:
            return resv.active_at(at_time)
        return resv.state in (ReservationState.GRANTED, ReservationState.ACTIVE)

    def refresh(self, handle: str, *, now: float, ttl_s: float) -> Reservation:
        """Renew the soft-state lease of a live reservation (the periodic
        refresh of RSVP-style soft state)."""
        with self._lock:
            resv = self.get(handle)
            if resv.state not in (
                ReservationState.GRANTED, ReservationState.ACTIVE
            ):
                raise ReservationStateError(
                    f"{handle}: cannot refresh a {resv.state.value} reservation"
                )
            resv.expires_at = now + ttl_s
            return resv

    def sweep_expired(self, now: float) -> tuple[Reservation, ...]:
        """Expire live reservations whose soft-state lease has lapsed;
        returns them so the broker can release their capacity bookings."""
        with self._lock:
            lapsed = tuple(
                resv for resv in self._by_handle.values()
                if resv.state
                in (ReservationState.GRANTED, ReservationState.ACTIVE)
                and resv.expires_at is not None
                and resv.expires_at <= now
            )
            for resv in lapsed:
                resv.state = ReservationState.EXPIRED
            return lapsed

    def expire_passed(self, now: float) -> int:
        """Expire reservations whose interval has passed; returns count."""
        n = 0
        with self._lock:
            for resv in self._by_handle.values():
                if (
                    resv.state
                    in (ReservationState.GRANTED, ReservationState.ACTIVE)
                    and resv.request.end <= now
                ):
                    resv.state = ReservationState.EXPIRED
                    n += 1
        return n
