"""An Akenti-style certificate-based authorization engine.

Paper §7 (related work): "The Akenti project associates lists of
Certificate Authorities and administrators with a resource's use policy,
expressed in attribute value pairs in a use-condition certificate.  The
administrators can then create user-attribute certificates each of which
associates a user, an attribute and a resource.  In order for a user to
be granted access to a resource, the Akenti policy engine needs to be
presented with multiple user-attribute certificates signed by a CA on the
resource CA list, and satisfying all rules in the resource use-condition
certificate."

This module implements exactly that shape, on top of
:mod:`repro.policy.attributes`.  It demonstrates the paper's claim that
the propagation protocol is policy-syntax independent: the hop-by-hop
envelope can carry Akenti user-attribute certificates in place of (or in
addition to) capability certificates, and an end domain can run this
engine instead of the rule engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.crypto.dn import DistinguishedName
from repro.crypto.keys import PrivateKey, PublicKey
from repro.errors import PolicyError
from repro.policy.attributes import SignedAssertion, make_assertion

__all__ = [
    "UseCondition",
    "make_user_attribute_certificate",
    "AkentiResourcePolicy",
    "AkentiEngine",
]

#: Attribute key identifying the resource a user-attribute cert applies to.
_RESOURCE_KEY = "akenti.resource"


@dataclass(frozen=True)
class UseCondition:
    """One rule in a resource's use policy: the user must hold *all* the
    listed attribute values (issued by an accepted CA)."""

    required: tuple[tuple[str, Any], ...]

    @classmethod
    def make(cls, required: Mapping[str, Any]) -> "UseCondition":
        if not required:
            raise PolicyError("a use condition needs at least one requirement")
        return cls(tuple(sorted(required.items())))


def make_user_attribute_certificate(
    *,
    issuer: DistinguishedName,
    issuer_key: PrivateKey,
    user: DistinguishedName,
    resource: str,
    attribute: str,
    value: Any,
    valid_until: float = float("inf"),
) -> SignedAssertion:
    """An Akenti user-attribute certificate: (user, attribute, resource),
    signed by an administrator."""
    return make_assertion(
        issuer=issuer,
        issuer_key=issuer_key,
        subject=user,
        attributes={attribute: value, _RESOURCE_KEY: resource},
        valid_until=valid_until,
    )


@dataclass
class AkentiResourcePolicy:
    """A resource's CA list plus its use conditions."""

    resource: str
    ca_list: dict[DistinguishedName, PublicKey]
    use_conditions: list[UseCondition]

    def add_ca(self, name: DistinguishedName, key: PublicKey) -> None:
        self.ca_list[name] = key

    def add_use_condition(self, required: Mapping[str, Any]) -> None:
        self.use_conditions.append(UseCondition.make(required))


class AkentiEngine:
    """Evaluates user-attribute certificates against resource policies."""

    def __init__(self) -> None:
        self._policies: dict[str, AkentiResourcePolicy] = {}

    def register_resource(
        self,
        resource: str,
        *,
        ca_list: Mapping[DistinguishedName, PublicKey] | None = None,
        use_conditions: Iterable[Mapping[str, Any]] = (),
    ) -> AkentiResourcePolicy:
        policy = AkentiResourcePolicy(
            resource,
            dict(ca_list or {}),
            [UseCondition.make(uc) for uc in use_conditions],
        )
        self._policies[resource] = policy
        return policy

    def policy_for(self, resource: str) -> AkentiResourcePolicy:
        try:
            return self._policies[resource]
        except KeyError:
            raise PolicyError(f"unknown resource {resource!r}") from None

    def gathered_attributes(
        self,
        resource: str,
        user: DistinguishedName,
        certificates: Iterable[SignedAssertion],
        *,
        at_time: float = 0.0,
    ) -> dict[str, Any]:
        """Verify each certificate (issuer on the CA list, signature good,
        subject is the user, resource matches) and pool the attributes."""
        policy = self.policy_for(resource)
        attrs: dict[str, Any] = {}
        for cert in certificates:
            key = policy.ca_list.get(cert.issuer)
            if key is None:
                continue  # issuer not on this resource's CA list
            if cert.subject != user:
                continue
            if not cert.verify(key, at_time=at_time):
                continue
            cert_resource = cert.get(_RESOURCE_KEY)
            if cert_resource is not None and cert_resource != resource:
                continue
            for k, v in cert.attributes:
                if k != _RESOURCE_KEY:
                    attrs[k] = v
        return attrs

    def authorize(
        self,
        resource: str,
        user: DistinguishedName,
        certificates: Iterable[SignedAssertion],
        *,
        at_time: float = 0.0,
    ) -> bool:
        """True iff every use condition is satisfied by verified attributes."""
        policy = self.policy_for(resource)
        attrs = self.gathered_attributes(
            resource, user, certificates, at_time=at_time
        )
        for condition in policy.use_conditions:
            for attr, value in condition.required:
                if attrs.get(attr) != value:
                    return False
        return True
