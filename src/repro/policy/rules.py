"""Condition and expression building blocks for policy trees.

These classes are what :mod:`repro.policy.language` compiles the paper's
policy files into, and they can equally be assembled directly in Python::

    If(Comparison(Variable("User"), "=", Literal("Alice")),
       then=(Return(Decision.GRANT),))

Semantics notes:

* ``Group = Atlas`` and ``Issued_by(Capability) = ESnet`` are *membership*
  tests — the left side evaluates to a set and ``=`` means "contains"
  (matching the obvious reading of the paper's Figure 6 policy files).
* Bare predicate calls like ``Accredited_Physicist(requestor)`` dispatch
  to online predicates registered on the request context (backed by a
  group server in the full testbed).
* ``HasValidCPUResv(RAR)`` and friends check linked reservations through
  the context's online validator — the inter-resource policy dependency
  of Figure 6's Policy File C.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import PolicyEvaluationError
from repro.policy.engine import Condition, RequestContext

__all__ = [
    "Expr",
    "Literal",
    "Variable",
    "Call",
    "Comparison",
    "And",
    "Or",
    "Not",
    "PredicateCondition",
    "TrueCondition",
]

#: Variables whose value is a set; ``=`` on them means membership.
_SET_VARIABLES = {"Group", "Capability"}

_LINKED_RESV_RE = re.compile(r"^HasValid([A-Za-z]+)Resv$")


class Expr:
    """Base class for expressions; subclasses implement ``evaluate``."""

    def evaluate(self, ctx: RequestContext) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - cosmetic default
        return type(self).__name__


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def evaluate(self, ctx: RequestContext) -> Any:
        return self.value

    def describe(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Variable(Expr):
    name: str

    def evaluate(self, ctx: RequestContext) -> Any:
        if self.name == "Group":
            return ctx.groups
        if self.name == "Capability":
            return ctx.capabilities
        return ctx.variable(self.name)

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class Call(Expr):
    """A function-call expression: ``Issued_by(Capability)``,
    ``Accredited_Physicist(requestor)``, ``HasValidCPUResv(RAR)``."""

    name: str
    arg: str

    def evaluate(self, ctx: RequestContext) -> Any:
        if self.name == "Issued_by":
            if self.arg != "Capability":
                raise PolicyEvaluationError(
                    f"Issued_by only applies to Capability, got {self.arg!r}"
                )
            return ctx.capability_issuers
        if self.name == "Attribute":
            # Free-form request attribute (e.g. upstream domains' signed
            # additions); absent attributes evaluate to None rather than
            # erroring, so policies can probe optional hints.
            return ctx.attribute(self.arg)
        linked = _LINKED_RESV_RE.match(self.name)
        if linked is not None:
            return ctx.has_valid_linked_reservation(linked.group(1).lower())
        return ctx.call_predicate(self.name)

    def describe(self) -> str:
        return f"{self.name}({self.arg})"


@dataclass(frozen=True)
class Comparison(Condition):
    lhs: Expr
    op: str
    rhs: Expr

    _OPS = ("=", "!=", "<=", ">=", "<", ">")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise PolicyEvaluationError(f"unknown comparison operator {self.op!r}")

    def holds(self, ctx: RequestContext) -> bool:
        left = self.lhs.evaluate(ctx)
        right = self.rhs.evaluate(ctx)
        if isinstance(left, (frozenset, set)):
            if self.op == "=":
                return right in left
            if self.op == "!=":
                return right not in left
            raise PolicyEvaluationError(
                f"operator {self.op!r} undefined for set-valued {self.lhs.describe()}"
            )
        try:
            if self.op == "=":
                return left == right
            if self.op == "!=":
                return left != right
            if self.op == "<=":
                return left <= right
            if self.op == ">=":
                return left >= right
            if self.op == "<":
                return left < right
            return left > right
        except TypeError as exc:
            raise PolicyEvaluationError(
                f"cannot compare {left!r} {self.op} {right!r}"
            ) from exc

    def describe(self) -> str:
        return f"{self.lhs.describe()} {self.op} {self.rhs.describe()}"


@dataclass(frozen=True)
class And(Condition):
    parts: tuple[Condition, ...]

    def holds(self, ctx: RequestContext) -> bool:
        return all(p.holds(ctx) for p in self.parts)

    def describe(self) -> str:
        return " and ".join(p.describe() for p in self.parts)


@dataclass(frozen=True)
class Or(Condition):
    parts: tuple[Condition, ...]

    def holds(self, ctx: RequestContext) -> bool:
        return any(p.holds(ctx) for p in self.parts)

    def describe(self) -> str:
        return " or ".join(p.describe() for p in self.parts)


@dataclass(frozen=True)
class Not(Condition):
    inner: Condition

    def holds(self, ctx: RequestContext) -> bool:
        return not self.inner.holds(ctx)

    def describe(self) -> str:
        return f"not ({self.inner.describe()})"


@dataclass(frozen=True)
class PredicateCondition(Condition):
    """A bare call used as a condition; truthiness of its value."""

    call: Call

    def holds(self, ctx: RequestContext) -> bool:
        return bool(self.call.evaluate(ctx))

    def describe(self) -> str:
        return self.call.describe()


@dataclass(frozen=True)
class TrueCondition(Condition):
    """Always true (useful for unconditional branches in built trees)."""

    def holds(self, ctx: RequestContext) -> bool:
        return True

    def describe(self) -> str:
        return "true"
