"""Parser for the paper's policy-file syntax.

Figures 1 and 6 of the paper express domain policies in a small
``If``/``Return`` language::

    If User = Alice
        If Time > 8am and Time < 5pm
            If BW <= 10Mb/s
                Return GRANT
            Else Return DENY
        Else if BW <= Avail_BW
            Return GRANT
        Else Return DENY
    Return DENY

This module parses that syntax (indentation-significant, like the figures
read) into the :class:`~repro.policy.engine.PolicyEngine` tree.  Supported
constructs, all drawn from the paper's examples:

* comparisons on request variables: ``User``, ``BW``, ``Time``,
  ``Avail_BW``, ``Reservation_Type``, ``Source_Domain``,
  ``Destination_Domain``, ``Cost``;
* bandwidth literals with units (``10Mb/s``, ``5MB/s``, ``1Gb/s``) and
  clock-time literals (``8am``, ``5pm``, ``8:30am``);
* set-membership via ``Group = Atlas`` and
  ``Issued_by(Capability) = ESnet``;
* online predicates: ``Accredited_Physicist(requestor)`` and linked
  reservation checks: ``HasValidCPUResv(RAR)``;
* ``and`` / ``or`` / ``not`` with the usual precedence and parentheses;
* ``Else`` / ``Else if`` chains, inline ``Else Return DENY`` included.

The propagation protocol itself is *independent* of this syntax (paper
§4) — the engine accepts trees from any front end; this parser is one
example representation, as the paper says of its own figures.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import PolicySyntaxError
from repro.policy.engine import Decision, If, PolicyEngine, PolicyNode, Return
from repro.policy.rules import (
    And,
    Call,
    Comparison,
    Condition,
    Expr,
    Literal,
    Not,
    Or,
    PredicateCondition,
    Variable,
)

__all__ = ["parse_policy", "compile_policy", "KNOWN_VARIABLES"]

#: Names treated as request variables; any other bare name is a string literal.
KNOWN_VARIABLES = frozenset(
    {
        "User",
        "BW",
        "Time",
        "Avail_BW",
        "Reservation_Type",
        "Source_Domain",
        "Destination_Domain",
        "Cost",
        "Group",
        "Capability",
    }
)

_BW_UNITS = {
    "Kb/s": 1e-3,
    "Mb/s": 1.0,
    "Gb/s": 1e3,
    "KB/s": 8e-3,
    "MB/s": 8.0,
    "GB/s": 8e3,
}

_TOKEN_RE = re.compile(
    r"""
    (?P<BW>\d+(?:\.\d+)?\s*(?:[KMG][Bb]/s))
  | (?P<TIME>\d{1,2}(?::\d{2})?(?:am|pm))
  | (?P<NUMBER>\d+(?:\.\d+)?)
  | (?P<STRING>"[^"]*")
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP><=|>=|!=|=|<|>)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<WS>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int


def _parse_bandwidth(text: str) -> float:
    m = re.match(r"(\d+(?:\.\d+)?)\s*([KMG][Bb]/s)", text)
    assert m is not None
    value = float(m.group(1))
    unit = m.group(2)
    # Normalise the case pattern: the regex admits e.g. "mb/s" never (first
    # letter is upper from the char class), but "Mb/s" vs "MB/s" matter.
    if unit not in _BW_UNITS:
        raise PolicySyntaxError(f"unknown bandwidth unit {unit!r}")
    return value * _BW_UNITS[unit]


def _parse_time(text: str, line: int) -> float:
    m = re.match(r"(\d{1,2})(?::(\d{2}))?(am|pm)", text)
    assert m is not None
    hour = int(m.group(1))
    minute = int(m.group(2) or 0)
    suffix = m.group(3)
    if not (1 <= hour <= 12) or minute >= 60:
        raise PolicySyntaxError(f"invalid clock time {text!r}", line)
    if suffix == "am":
        hour = 0 if hour == 12 else hour
    else:
        hour = 12 if hour == 12 else hour + 12
    return hour + minute / 60.0


def _tokenize(text: str, line: int) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise PolicySyntaxError(f"unexpected character {text[pos]!r}", line)
        kind = m.lastgroup
        assert kind is not None
        if kind != "WS":
            tokens.append(_Token(kind, m.group(), line))
        pos = m.end()
    return tokens


class _ConditionParser:
    """Recursive-descent parser over one line's condition tokens."""

    def __init__(self, tokens: list[_Token], line: int) -> None:
        self.tokens = tokens
        self.pos = 0
        self.line = line

    def peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise PolicySyntaxError("unexpected end of condition", self.line)
        self.pos += 1
        return tok

    def expect(self, kind: str) -> _Token:
        tok = self.next()
        if tok.kind != kind:
            raise PolicySyntaxError(
                f"expected {kind}, got {tok.text!r}", self.line
            )
        return tok

    def at_keyword(self, word: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.kind == "NAME" and tok.text.lower() == word

    # condition := or_expr
    def parse(self) -> Condition:
        cond = self.parse_or()
        return cond

    def parse_or(self) -> Condition:
        parts = [self.parse_and()]
        while self.at_keyword("or"):
            self.next()
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def parse_and(self) -> Condition:
        parts = [self.parse_atom()]
        while self.at_keyword("and"):
            self.next()
            parts.append(self.parse_atom())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_atom(self) -> Condition:
        if self.at_keyword("not"):
            self.next()
            return Not(self.parse_atom())
        tok = self.peek()
        if tok is not None and tok.kind == "LPAREN":
            # Could be a parenthesised condition; terms handle call parens.
            self.next()
            inner = self.parse_or()
            self.expect("RPAREN")
            return inner
        lhs = self.parse_term()
        tok = self.peek()
        if tok is not None and tok.kind == "OP":
            op = self.next().text
            rhs = self.parse_term()
            return Comparison(lhs, op, rhs)
        if isinstance(lhs, Call):
            return PredicateCondition(lhs)
        raise PolicySyntaxError(
            f"{lhs.describe()} is not a condition by itself", self.line
        )

    def parse_term(self) -> Expr:
        tok = self.next()
        if tok.kind == "BW":
            return Literal(_parse_bandwidth(tok.text))
        if tok.kind == "TIME":
            return Literal(_parse_time(tok.text, self.line))
        if tok.kind == "NUMBER":
            return Literal(float(tok.text))
        if tok.kind == "STRING":
            return Literal(tok.text[1:-1])
        if tok.kind == "NAME":
            nxt = self.peek()
            if nxt is not None and nxt.kind == "LPAREN":
                self.next()
                arg = self.expect("NAME").text
                self.expect("RPAREN")
                return Call(tok.text, arg)
            if tok.text in KNOWN_VARIABLES:
                return Variable(tok.text)
            return Literal(tok.text)
        raise PolicySyntaxError(f"unexpected token {tok.text!r}", self.line)

    def done(self) -> bool:
        return self.pos >= len(self.tokens)


@dataclass
class _Line:
    number: int
    indent: int
    text: str


def _logical_lines(source: str) -> list[_Line]:
    lines = []
    for number, raw in enumerate(source.splitlines(), start=1):
        without_comment = raw.split("#", 1)[0]
        expanded = without_comment.expandtabs(4)
        stripped = expanded.strip()
        if not stripped:
            continue
        indent = len(expanded) - len(expanded.lstrip(" "))
        lines.append(_Line(number, indent, stripped))
    return lines


class _BlockParser:
    def __init__(self, lines: list[_Line]) -> None:
        self.lines = lines
        self.pos = 0

    def peek(self) -> _Line | None:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse_block(self, indent: int) -> tuple[PolicyNode, ...]:
        nodes: list[PolicyNode] = []
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                break
            if line.indent > indent:
                raise PolicySyntaxError(
                    f"unexpected indentation (expected {indent} spaces)", line.number
                )
            first_word = line.text.split(None, 1)[0].lower()
            if first_word == "else":
                break  # handled by the enclosing If
            nodes.append(self.parse_statement(indent))
        return tuple(nodes)

    def parse_statement(self, indent: int) -> PolicyNode:
        line = self.peek()
        assert line is not None
        lowered = line.text.lower()
        if lowered.startswith("return"):
            self.pos += 1
            return self._parse_return(line)
        if lowered.startswith("if"):
            self.pos += 1
            return self._parse_if(line, indent, line.text[2:].strip())
        raise PolicySyntaxError(
            f"expected 'If' or 'Return', got {line.text!r}", line.number
        )

    def _parse_return(self, line: _Line) -> Return:
        rest = line.text[len("return"):].strip()
        verdict = rest.upper()
        if verdict == "GRANT":
            decision = Decision.GRANT
        elif verdict == "DENY":
            decision = Decision.DENY
        else:
            raise PolicySyntaxError(
                f"Return expects GRANT or DENY, got {rest!r}", line.number
            )
        return Return(decision, reason=f"line {line.number}: Return {verdict}")

    def _parse_if(self, line: _Line, indent: int, cond_text: str) -> If:
        # An inline Return may follow the condition on the same line:
        #   If BW <= 10Mb/s Return GRANT
        inline: Return | None = None
        m = re.search(r"\breturn\b", cond_text, flags=re.IGNORECASE)
        if m is not None:
            inline_text = cond_text[m.start():]
            cond_text = cond_text[: m.start()].strip()
            inline = self._parse_return(_Line(line.number, indent, inline_text))
        parser = _ConditionParser(_tokenize(cond_text, line.number), line.number)
        condition = parser.parse()
        if not parser.done():
            tok = parser.peek()
            raise PolicySyntaxError(
                f"trailing tokens after condition: {tok.text!r}", line.number
            )
        if inline is not None:
            then: tuple[PolicyNode, ...] = (inline,)
        else:
            nxt = self.peek()
            if nxt is None or nxt.indent <= indent:
                raise PolicySyntaxError(
                    "'If' without inline Return needs an indented block",
                    line.number,
                )
            then = self.parse_block(nxt.indent)
            if not then:
                raise PolicySyntaxError("empty 'If' block", line.number)
        orelse = self._parse_else(indent)
        return If(condition, then=then, orelse=orelse)

    def _parse_else(self, indent: int) -> tuple[PolicyNode, ...]:
        line = self.peek()
        if line is None or line.indent != indent:
            return ()
        lowered = line.text.lower()
        if not lowered.startswith("else"):
            return ()
        self.pos += 1
        rest = line.text[len("else"):].strip()
        if rest.lower().startswith("if"):
            return (self._parse_if(line, indent, rest[2:].strip()),)
        if rest:
            # Inline statement: "Else Return DENY".
            if not rest.lower().startswith("return"):
                raise PolicySyntaxError(
                    f"'Else' supports inline Return only, got {rest!r}", line.number
                )
            return (self._parse_return(_Line(line.number, indent, rest)),)
        nxt = self.peek()
        if nxt is None or nxt.indent <= indent:
            raise PolicySyntaxError("'Else' needs an indented block", line.number)
        block = self.parse_block(nxt.indent)
        if not block:
            raise PolicySyntaxError("empty 'Else' block", line.number)
        return block


def parse_policy(source: str) -> tuple[PolicyNode, ...]:
    """Parse policy-file *source* into a tree of policy nodes."""
    lines = _logical_lines(source)
    if not lines:
        raise PolicySyntaxError("empty policy file")
    base_indent = lines[0].indent
    parser = _BlockParser(lines)
    nodes = parser.parse_block(base_indent)
    leftover = parser.peek()
    if leftover is not None:
        raise PolicySyntaxError(
            f"could not parse {leftover.text!r}", leftover.number
        )
    return nodes


def compile_policy(source: str, *, name: str = "policy") -> PolicyEngine:
    """Parse *source* and wrap it in a (default-DENY) engine."""
    return PolicyEngine(parse_policy(source), name=name)
