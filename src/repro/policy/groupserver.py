"""Group servers: third parties that validate membership assertions.

Paper §5: "the policy might say 'approved if group server P validates the
user as a physicist'; if the user's request includes the assertion 'I am
a physicist', then the policy server verifies that assertion by
contacting that group server, passing the user's supplied identity
certificate."

A :class:`GroupServer` therefore supports both directions:

* issuing :class:`~repro.policy.attributes.SignedAssertion` membership
  statements a user can carry in a request, and
* answering online validation queries from a policy server.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.crypto.dn import DN, DistinguishedName
from repro.crypto.keys import KeyPair, get_scheme
from repro.errors import PolicyError
from repro.policy.attributes import SignedAssertion, make_assertion
from repro.policy.engine import RequestContext

__all__ = ["GroupServer"]


class GroupServer:
    """A membership authority for one or more named groups."""

    def __init__(
        self,
        name: DistinguishedName | str,
        *,
        rng: random.Random | None = None,
        scheme: str = "rsa",
        keypair: KeyPair | None = None,
    ) -> None:
        self.name = DN.parse(name) if isinstance(name, str) else name
        if keypair is None:
            keypair = get_scheme(scheme).generate(
                rng if rng is not None else random.Random(0x6B0)
            )
        self.keypair = keypair
        self._members: dict[str, set[DistinguishedName]] = {}
        #: Count of online validation queries served (benchmarks use this).
        self.queries = 0

    # -- administration ------------------------------------------------------------

    def add_member(self, group: str, user: DistinguishedName) -> None:
        self._members.setdefault(group, set()).add(user)

    def remove_member(self, group: str, user: DistinguishedName) -> None:
        try:
            self._members[group].remove(user)
        except KeyError:
            raise PolicyError(f"{user} is not a member of {group!r}") from None

    def groups(self) -> tuple[str, ...]:
        return tuple(sorted(self._members))

    # -- online validation -----------------------------------------------------------

    def is_member(self, user: DistinguishedName, group: str) -> bool:
        """Online membership check (a policy server contacting us)."""
        self.queries += 1
        return user in self._members.get(group, set())

    def predicate(self, group: str) -> Callable[[RequestContext], bool]:
        """An online predicate suitable for
        :attr:`~repro.policy.engine.RequestContext.predicates` — e.g.
        ``{"Accredited_Physicist": server.predicate("physicists")}``."""

        def check(ctx: RequestContext) -> bool:
            if ctx.user is None:
                return False
            return self.is_member(ctx.user, group)

        return check

    # -- assertion issuance ------------------------------------------------------------

    def assert_membership(
        self,
        user: DistinguishedName,
        group: str,
        *,
        valid_from: float = 0.0,
        valid_until: float = float("inf"),
    ) -> SignedAssertion:
        """Issue a signed membership assertion the user can carry along."""
        if user not in self._members.get(group, set()):
            raise PolicyError(f"{user} is not a member of {group!r}")
        return make_assertion(
            issuer=self.name,
            issuer_key=self.keypair.private,
            subject=user,
            attributes={"group": group},
            valid_from=valid_from,
            valid_until=valid_until,
        )

    def verify_assertion(
        self, assertion: SignedAssertion, *, at_time: float = 0.0
    ) -> bool:
        """Check that *assertion* is ours, intact, and still accurate."""
        if assertion.issuer != self.name:
            return False
        if not assertion.verify(self.keypair.public, at_time=at_time):
            return False
        group = assertion.get("group")
        return group is not None and assertion.subject in self._members.get(group, set())
