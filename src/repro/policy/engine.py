"""The policy decision point: request contexts, decisions, and the engine.

A bandwidth broker forwards each incoming request to its policy server,
which "executes local policy and passes back a result ('yes' or 'no') and
a modified request" (paper §5).  The engine here evaluates a tree of
policy nodes (built by hand or parsed from the paper's policy-file syntax
by :mod:`repro.policy.language`) against a :class:`RequestContext`
assembled from the request parameters, verified assertions, and verified
capability chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Callable, Mapping, Sequence

from repro.crypto.dn import DistinguishedName
from repro.errors import PolicyEvaluationError

__all__ = [
    "Decision",
    "RequestContext",
    "PolicyDecision",
    "PolicyNode",
    "Condition",
    "If",
    "Return",
    "PolicyEngine",
]


class Decision(Enum):
    GRANT = "grant"
    DENY = "deny"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError("Decision must be compared explicitly, not truth-tested")


@dataclass(frozen=True)
class RequestContext:
    """Everything a policy rule may consult.

    The four information classes of paper §4 map onto fields as follows:
    request parameters (``bandwidth_mbps``, ``reservation_type``,
    ``source_domain`` …), authentication information (``user``),
    authorization information (``groups``, ``capabilities``,
    ``capability_issuers`` — all *verified* before being placed here), and
    SLA/SLS information (the free-form ``attributes`` bag, filled by
    upstream domains).
    """

    user: DistinguishedName | None = None
    bandwidth_mbps: float = 0.0
    time_of_day_h: float = 12.0
    reservation_type: str = "network"
    source_domain: str = ""
    destination_domain: str = ""
    available_bandwidth_mbps: float = float("inf")
    cost_offer: float = 0.0
    #: Verified group memberships ("ATLAS experiment", "physicists").
    groups: frozenset[str] = frozenset()
    #: Capability strings from verified delegation chains ("ESnet:member").
    capabilities: frozenset[str] = frozenset()
    #: Communities whose capability chains verified ("ESnet").
    capability_issuers: frozenset[str] = frozenset()
    #: Linked reservations by resource type, e.g. {"cpu": "RES-111"}.
    linked_reservations: tuple[tuple[str, str], ...] = ()
    #: Extra attribute-value pairs (SLS hints, cost offers from upstream).
    attributes: tuple[tuple[str, Any], ...] = ()
    #: Named online predicates, e.g. {"Accredited_Physicist": callable}.
    predicates: Mapping[str, Callable[["RequestContext"], bool]] = field(
        default_factory=dict, compare=False, hash=False
    )
    #: Online validator for linked reservations: (type, handle) -> bool.
    linked_validator: Callable[[str, str], bool] | None = field(
        default=None, compare=False, hash=False
    )

    # -- variable access used by the policy language -----------------------------

    def variable(self, name: str) -> Any:
        """Resolve a policy-language variable name."""
        builtin = {
            "User": self.user.common_name if self.user else None,
            "BW": self.bandwidth_mbps,
            "Time": self.time_of_day_h,
            "Avail_BW": self.available_bandwidth_mbps,
            "Reservation_Type": self.reservation_type,
            "Source_Domain": self.source_domain,
            "Destination_Domain": self.destination_domain,
            "Cost": self.cost_offer,
        }
        if name in builtin:
            return builtin[name]
        for k, v in self.attributes:
            if k == name:
                return v
        raise PolicyEvaluationError(f"unknown policy variable {name!r}")

    def attribute(self, name: str, default: Any = None) -> Any:
        for k, v in self.attributes:
            if k == name:
                return v
        return default

    def linked_reservation(self, kind: str) -> str | None:
        for k, v in self.linked_reservations:
            if k == kind:
                return v
        return None

    def has_valid_linked_reservation(self, kind: str) -> bool:
        """True when a linked reservation of *kind* exists and, if an online
        validator is wired in, validates."""
        handle = self.linked_reservation(kind)
        if handle is None:
            return False
        if self.linked_validator is None:
            return True
        return self.linked_validator(kind, handle)

    def call_predicate(self, name: str) -> bool:
        fn = self.predicates.get(name)
        if fn is None:
            raise PolicyEvaluationError(f"unknown predicate {name!r}")
        return bool(fn(self))

    def with_updates(self, **changes: Any) -> "RequestContext":
        return replace(self, **changes)


@dataclass(frozen=True)
class PolicyDecision:
    """Engine output: the verdict, why, and any request modifications.

    ``modifications`` carries the "modified request" of §5 — constraints a
    domain adds before forwarding downstream (required groups, cost
    offers, traffic-engineering parameters).
    """

    decision: Decision
    reason: str = ""
    modifications: tuple[tuple[str, Any], ...] = ()
    #: Provenance: the id of the ``Return`` node that produced the
    #: verdict (``<policy>/<path>``, e.g. ``gold/1.then.0``; the
    #: fall-off default is ``<policy>/default``).
    matched_rule: str = ""
    #: Every node visited on the way, in evaluation order — ``If``
    #: nodes appear with the branch taken (``…?cond=y``).
    rules_fired: tuple[str, ...] = ()

    @property
    def granted(self) -> bool:
        return self.decision is Decision.GRANT


# -- policy tree ----------------------------------------------------------------


class Condition:
    """Base class for conditions; subclasses implement ``holds``."""

    def holds(self, ctx: RequestContext) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class PolicyNode:
    """Base class for statements in a policy tree."""


@dataclass(frozen=True)
class Return(PolicyNode):
    decision: Decision
    reason: str = ""


@dataclass(frozen=True)
class If(PolicyNode):
    condition: Condition
    then: tuple[PolicyNode, ...]
    orelse: tuple[PolicyNode, ...] = ()


class PolicyEngine:
    """First-`Return`-reached evaluation over a policy tree.

    Falling off the end yields the default decision — DENY, like the
    paper's policy files which all end in ``Return DENY``.
    """

    def __init__(
        self,
        nodes: Sequence[PolicyNode],
        *,
        default: Decision = Decision.DENY,
        name: str = "policy",
    ) -> None:
        self.nodes = tuple(nodes)
        self.default = default
        self.name = name

    def evaluate(self, ctx: RequestContext) -> PolicyDecision:
        """Evaluate, tracing the node path for decision provenance: the
        returned decision names the ``Return`` node that fired
        (``matched_rule``) and every node visited (``rules_fired``) as
        stable ``<policy>/<index-path>`` ids, so audit records can
        answer "which rule admitted this?" without re-evaluating."""
        trace: list[str] = []
        result = self._eval_block(self.nodes, ctx, f"{self.name}/", trace)
        if result is not None:
            return result
        default_id = f"{self.name}/default"
        trace.append(default_id)
        return PolicyDecision(
            self.default,
            reason=f"{self.name}: default",
            matched_rule=default_id,
            rules_fired=tuple(trace),
        )

    def _eval_block(
        self,
        nodes: Sequence[PolicyNode],
        ctx: RequestContext,
        prefix: str,
        trace: list[str],
    ) -> PolicyDecision | None:
        for index, node in enumerate(nodes):
            node_id = f"{prefix}{index}"
            if isinstance(node, Return):
                trace.append(node_id)
                reason = node.reason or f"{self.name}: explicit {node.decision.value}"
                return PolicyDecision(
                    node.decision,
                    reason=reason,
                    matched_rule=node_id,
                    rules_fired=tuple(trace),
                )
            if isinstance(node, If):
                try:
                    taken = node.condition.holds(ctx)
                except PolicyEvaluationError:
                    raise
                except Exception as exc:
                    raise PolicyEvaluationError(
                        f"condition {node.condition.describe()} raised: {exc}"
                    ) from exc
                trace.append(
                    f"{node_id}?{node.condition.describe()}"
                    f"={'y' if taken else 'n'}"
                )
                branch = node.then if taken else node.orelse
                branch_prefix = f"{node_id}.{'then' if taken else 'else'}."
                result = self._eval_block(branch, ctx, branch_prefix, trace)
                if result is not None:
                    return result
                continue
            raise PolicyEvaluationError(f"unknown node type {type(node).__name__}")
        return None
