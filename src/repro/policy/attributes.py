"""Policy attributes and signed assertions.

The paper requires the propagation protocol to "handle simple
attribute-value pairs which might be signed by the assigning entity as
well as capability certificates".  This module provides the signed
attribute-value half: a :class:`SignedAssertion` binds a set of
attribute-value pairs to a subject, signed by the asserting entity (a
group server, a source-domain BB adding traffic-engineering hints, the
user herself).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.crypto import canonical
from repro.crypto.dn import DistinguishedName
from repro.crypto.keys import PrivateKey, PublicKey, get_scheme
from repro.errors import PolicyError

__all__ = ["SignedAssertion", "make_assertion"]


@dataclass(frozen=True)
class SignedAssertion:
    """Attribute-value pairs about *subject*, signed by *issuer*.

    Examples: a group server asserting ``{"group": "ATLAS experiment"}``,
    a BB asserting ``{"excess_traffic_treatment": "downgrade"}`` for
    downstream traffic engineering.
    """

    issuer: DistinguishedName
    subject: DistinguishedName
    attributes: tuple[tuple[str, Any], ...]
    signature: bytes
    signature_scheme: str
    valid_from: float = 0.0
    valid_until: float = float("inf")

    def payload(self) -> dict:
        return {
            "issuer": self.issuer.to_cbe(),
            "subject": self.subject.to_cbe(),
            "attributes": dict(self.attributes),
            "valid_from": self.valid_from,
            # inf is not canonically encodable; use a sentinel string.
            "valid_until": "never" if self.valid_until == float("inf") else self.valid_until,
        }

    def to_cbe(self) -> dict:
        data = self.payload()
        data["signature"] = self.signature
        data["signature_scheme"] = self.signature_scheme
        return data

    def cbe_bytes(self) -> bytes:
        """Canonical bytes, memoized (the assertion is immutable and is
        re-encoded inside every envelope layer that carries it; the
        canonical encoder splices these bytes directly)."""
        cached = getattr(self, "_cbe_bytes_cache", None)
        if cached is None:
            cached = canonical.encode(self.to_cbe())
            object.__setattr__(self, "_cbe_bytes_cache", cached)
        return cached

    def verify(self, issuer_public: PublicKey, *, at_time: float = 0.0) -> bool:
        """True iff the signature verifies and the assertion is in validity."""
        if not (self.valid_from <= at_time <= self.valid_until):
            return False
        scheme = get_scheme(self.signature_scheme)
        return scheme.verify(
            issuer_public, canonical.encode(self.payload()), self.signature
        )

    def get(self, name: str, default: Any = None) -> Any:
        for k, v in self.attributes:
            if k == name:
                return v
        return default

    def with_tampered_attribute(self, name: str, value: Any) -> "SignedAssertion":
        """Test helper: change an attribute but keep the old signature."""
        attrs = tuple((k, value if k == name else v) for k, v in self.attributes)
        return replace(self, attributes=attrs)


def make_assertion(
    *,
    issuer: DistinguishedName,
    issuer_key: PrivateKey,
    subject: DistinguishedName,
    attributes: Mapping[str, Any],
    valid_from: float = 0.0,
    valid_until: float = float("inf"),
) -> SignedAssertion:
    """Create and sign an assertion."""
    if not attributes:
        raise PolicyError("an assertion needs at least one attribute")
    unsigned = SignedAssertion(
        issuer=issuer,
        subject=subject,
        attributes=tuple(sorted(attributes.items())),
        signature=b"",
        signature_scheme=issuer_key.scheme,
        valid_from=valid_from,
        valid_until=valid_until,
    )
    scheme = get_scheme(issuer_key.scheme)
    signature = scheme.sign(issuer_key, canonical.encode(unsigned.payload()))
    return replace(unsigned, signature=signature)
