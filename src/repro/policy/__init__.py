"""Policy subsystem: decision engine, the paper's policy-file language,
signed assertions, group servers, a Community Authorization Server, and an
Akenti-style certificate engine.

The propagation protocol is policy-syntax independent (paper §4); this
package supplies several interchangeable policy representations to
demonstrate it.
"""

from repro.policy.akenti import (
    AkentiEngine,
    AkentiResourcePolicy,
    UseCondition,
    make_user_attribute_certificate,
)
from repro.policy.attributes import SignedAssertion, make_assertion
from repro.policy.cas import CommunityAuthorizationServer
from repro.policy.engine import (
    Decision,
    If,
    PolicyDecision,
    PolicyEngine,
    PolicyNode,
    RequestContext,
    Return,
)
from repro.policy.groupserver import GroupServer
from repro.policy.language import compile_policy, parse_policy
from repro.policy.rules import (
    And,
    Call,
    Comparison,
    Literal,
    Not,
    Or,
    PredicateCondition,
    Variable,
)

__all__ = [
    "Decision",
    "RequestContext",
    "PolicyDecision",
    "PolicyEngine",
    "PolicyNode",
    "If",
    "Return",
    "And",
    "Or",
    "Not",
    "Comparison",
    "Call",
    "Literal",
    "Variable",
    "PredicateCondition",
    "parse_policy",
    "compile_policy",
    "SignedAssertion",
    "make_assertion",
    "GroupServer",
    "CommunityAuthorizationServer",
    "AkentiEngine",
    "AkentiResourcePolicy",
    "UseCondition",
    "make_user_attribute_certificate",
]
