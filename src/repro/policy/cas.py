"""Community Authorization Server (CAS).

The Globus CAS was "being developed" when the paper was written; the
signalling protocol assumes one exists to issue capability certificates
at "grid-login" (paper §6.5, Figure 7).  This is a working implementation
against :mod:`repro.crypto.capability`: a community maintains per-user
capability grants and, on login, issues a capability certificate with a
fresh proxy key pair.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable

from repro.crypto import cache as verification_cache
from repro.crypto.capability import (
    ProxyCredential,
    capability_set,
    is_capability_certificate,
    issue_capability,
)
from repro.crypto.dn import DN, DistinguishedName
from repro.crypto.keys import KeyPair, PublicKey, get_scheme
from repro.crypto.x509 import Certificate
from repro.errors import PolicyError
from repro.obs.audit import ledger as obs_audit

__all__ = ["CommunityAuthorizationServer"]


class CommunityAuthorizationServer:
    """Issues community capability certificates (e.g. for "ESnet")."""

    def __init__(
        self,
        community: str,
        *,
        name: DistinguishedName | str | None = None,
        rng: random.Random | None = None,
        scheme: str = "rsa",
        keypair: KeyPair | None = None,
    ) -> None:
        self.community = community
        if name is None:
            name = DN.make("Grid", community, "CAS")
        self.name = DN.parse(name) if isinstance(name, str) else name
        self._rng = rng if rng is not None else random.Random(0xCA5)
        self._scheme_name = scheme
        if keypair is None:
            keypair = get_scheme(scheme).generate(self._rng)
        self.keypair = keypair
        self._grants: dict[DistinguishedName, set[str]] = {}
        self._serials = itertools.count(1)
        self.logins = 0
        #: Capability certificates issued at grid-login, by serial.
        self._issued: dict[int, Certificate] = {}
        #: Serials whose capability (and every delegation of it — a
        #: delegation keeps its parent's serial) has been withdrawn.
        self._revoked_serials: set[int] = set()

    @property
    def public_key(self) -> PublicKey:
        return self.keypair.public

    # -- administration -------------------------------------------------------------

    def grant(self, user: DistinguishedName, capabilities: Iterable[str]) -> None:
        """Record that *user* holds these community capabilities."""
        caps = {self._qualify(c) for c in capabilities}
        self._grants.setdefault(user, set()).update(caps)

    def revoke_user(self, user: DistinguishedName) -> None:
        self._grants.pop(user, None)

    def revoke_credential(self, certificate: Certificate) -> None:
        """Withdraw an issued capability certificate (and, because a
        delegation inherits its parent's serial, every delegation made
        from it).  Cached verification verdicts that depended on it are
        invalidated immediately."""
        if certificate.serial not in self._issued:
            raise PolicyError(
                f"serial {certificate.serial} was not issued by "
                f"community {self.community!r}"
            )
        self._revoked_serials.add(certificate.serial)
        verification_cache.notify_revoked(certificate.fingerprint)
        obs_audit.record_revocation(
            fingerprint=certificate.fingerprint,
            subject=str(certificate.subject),
            authority=f"CAS:{self.community}",
        )

    def is_revoked(self, cert: Certificate) -> bool:
        """Revocation oracle for this community's capability chains.

        Matches any capability certificate carrying a revoked serial
        whose capability strings all belong to this community (chains
        keep the root serial, so one revocation covers the cascade)."""
        if cert.serial not in self._revoked_serials:
            return False
        if not is_capability_certificate(cert):
            return False
        caps = capability_set(cert)
        prefix = f"{self.community}:"
        return bool(caps) and all(c.startswith(prefix) for c in caps)

    def capabilities_of(self, user: DistinguishedName) -> frozenset[str]:
        return frozenset(self._grants.get(user, set()))

    def _qualify(self, capability: str) -> str:
        """Prefix bare capability names with the community."""
        if ":" in capability:
            return capability
        return f"{self.community}:{capability}"

    # -- grid-login --------------------------------------------------------------------

    def grid_login(
        self,
        user: DistinguishedName,
        *,
        at_time: float = 0.0,
        validity_s: float = 12 * 3600.0,
    ) -> ProxyCredential:
        """Issue *user* a capability certificate with a fresh proxy key.

        The returned credential is what the user's agent holds after
        logging in to the grid: the certificate can be shown to anyone;
        the private proxy key enables delegation.
        """
        caps = self._grants.get(user)
        if not caps:
            raise PolicyError(
                f"{user} holds no capabilities in community {self.community!r}"
            )
        self.logins += 1
        credential = self._issue(user, sorted(caps), at_time, validity_s)
        self._issued[credential.certificate.serial] = credential.certificate
        return credential

    def _issue(
        self,
        user: DistinguishedName,
        caps: list[str],
        at_time: float,
        validity_s: float,
    ) -> ProxyCredential:
        return issue_capability(
            issuer=self.name,
            issuer_signing_key=self.keypair.private,
            subject=user,
            capabilities=sorted(caps),
            serial=next(self._serials),
            rng=self._rng,
            scheme=self._scheme_name,
            not_before=at_time,
            not_after=at_time + validity_s,
        )
