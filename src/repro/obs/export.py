"""Exporters: render a metrics registry as Prometheus text or JSON.

Two formats, both dependency-free:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=...}``
  histogram series with the implicit ``+Inf`` bucket, ``_sum`` and
  ``_count``), suitable for a scrape endpoint or eyeballing;
* :func:`json_snapshot` / :func:`json_text` — a plain-dict snapshot for
  programmatic diffing (the benchmark harness stores one per run).
"""

from __future__ import annotations

import json

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "prometheus_text",
    "json_snapshot",
    "json_text",
    "diff_snapshots",
    "EXPORTED_QUANTILES",
]

#: Quantiles exported for every histogram series, in both formats.
EXPORTED_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_labels(items: tuple[tuple[str, str], ...]) -> str:
    if not items:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in items
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render *registry* in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            series = metric.series()
            if not series:
                lines.append(f"{metric.name} 0")
                continue
            for labels, value in sorted(series.items()):
                lines.append(
                    f"{metric.name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            series = metric.series()
            if not series:
                series = {(): None}
            for labels in sorted(series):
                label_dict = dict(labels)
                running = 0
                for bound, cumulative in metric.cumulative_buckets(**label_dict):
                    running = cumulative
                    bucket_labels = labels + (("le", _format_value(bound)),)
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_format_labels(tuple(sorted(bucket_labels)))} "
                        f"{cumulative}"
                    )
                count = metric.count(**label_dict)
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_format_labels(tuple(sorted(inf_labels)))} {count}"
                )
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(metric.sum(**label_dict))}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} {count}"
                )
                for q in EXPORTED_QUANTILES:
                    q_labels = labels + (("quantile", _format_value(q)),)
                    lines.append(
                        f"{metric.name}"
                        f"{_format_labels(tuple(sorted(q_labels)))} "
                        f"{_format_value(metric.quantile(q, **label_dict))}"
                    )
    return "\n".join(lines) + ("\n" if lines else "")


def json_snapshot(registry: MetricsRegistry) -> dict[str, object]:
    """A plain-dict snapshot of every series in *registry*."""
    out: dict[str, object] = {}
    for metric in registry.collect():
        if isinstance(metric, (Counter, Gauge)):
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "series": [
                    {"labels": dict(labels), "value": value}
                    for labels, value in sorted(metric.series().items())
                ],
            }
        elif isinstance(metric, Histogram):
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "buckets": list(metric.buckets),
                "series": [
                    {
                        "labels": dict(labels),
                        "bucket_counts": list(series.bucket_counts),
                        "sum": series.sum,
                        "count": series.count,
                        "quantiles": {
                            f"p{int(q * 100)}": metric.quantile(
                                q, **dict(labels)
                            )
                            for q in EXPORTED_QUANTILES
                        },
                    }
                    for labels, series in sorted(metric.series().items())
                ],
            }
    return out


def json_text(registry: MetricsRegistry, *, indent: int = 2) -> str:
    return json.dumps(json_snapshot(registry), indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# Snapshot diffing (``repro metrics --diff A.json B.json``)
# ---------------------------------------------------------------------------


def _series_values(metric: object) -> dict[str, float]:
    """Flatten one snapshot metric into ``label-string -> scalar``.

    Counters and gauges contribute their value; histograms contribute
    their ``count`` (the scalar most useful for "did this run do more or
    less work" comparisons).  Snapshots come off disk, so malformed
    entries (non-dict metrics, non-list series, unparsable values) are
    skipped rather than raised — the diff reports what it can read.
    """
    out: dict[str, float] = {}
    if not isinstance(metric, dict):
        return out
    series = metric.get("series")
    if not isinstance(series, list):
        return out
    for entry in series:
        if not isinstance(entry, dict):
            continue
        labels = entry.get("labels")
        if not isinstance(labels, dict):
            labels = {}
        key = ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"
        raw = entry["value"] if "value" in entry else entry.get("count", 0)
        try:
            out[key] = float(raw)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            continue
    return out


def diff_snapshots(
    before: dict[str, object], after: dict[str, object]
) -> list[str]:
    """Human-readable diff of two :func:`json_snapshot` documents.

    Reports metrics and series present on only one side, and value
    deltas for series present on both; an empty list means the
    snapshots agree.  One-sided keys — a metric or label set that
    exists in only one snapshot, the normal case when a change adds or
    retires an instrument — are reported as ``+``/``-`` lines, never
    raised.  This replaces the "diff the JSON by hand" workflow the
    benchmark fixtures used to suggest.
    """
    lines: list[str] = []
    if not isinstance(before, dict) or not isinstance(after, dict):
        lines.append("~ snapshot is not a JSON object on "
                     + ("both sides" if not isinstance(before, dict)
                        and not isinstance(after, dict)
                        else ("side A" if not isinstance(before, dict)
                              else "side B")))
        before = before if isinstance(before, dict) else {}
        after = after if isinstance(after, dict) else {}
    names = sorted(set(before) | set(after))
    for name in names:
        a = before.get(name)
        b = after.get(name)
        if name not in before:
            lines.append(f"+ metric {name} (only in B)")
            continue
        if name not in after:
            lines.append(f"- metric {name} (only in A)")
            continue
        series_a = _series_values(a)
        series_b = _series_values(b)
        for key in sorted(set(series_a) | set(series_b)):
            va, vb = series_a.get(key), series_b.get(key)
            if va is None:
                lines.append(f"+ {name}{{{key}}} = {vb:g} (only in B)")
            elif vb is None:
                lines.append(f"- {name}{{{key}}} = {va:g} (only in A)")
            elif va != vb:
                delta = vb - va
                lines.append(
                    f"~ {name}{{{key}}}: {va:g} -> {vb:g} ({delta:+g})"
                )
    return lines
