"""Exporters: render a metrics registry as Prometheus text or JSON.

Two formats, both dependency-free:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=...}``
  histogram series with the implicit ``+Inf`` bucket, ``_sum`` and
  ``_count``), suitable for a scrape endpoint or eyeballing;
* :func:`json_snapshot` / :func:`json_text` — a plain-dict snapshot for
  programmatic diffing (the benchmark harness stores one per run).
"""

from __future__ import annotations

import json

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["prometheus_text", "json_snapshot", "json_text"]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_labels(items: tuple[tuple[str, str], ...]) -> str:
    if not items:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in items
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render *registry* in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            series = metric.series()
            if not series:
                lines.append(f"{metric.name} 0")
                continue
            for labels, value in sorted(series.items()):
                lines.append(
                    f"{metric.name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            series = metric.series()
            if not series:
                series = {(): None}
            for labels in sorted(series):
                label_dict = dict(labels)
                running = 0
                for bound, cumulative in metric.cumulative_buckets(**label_dict):
                    running = cumulative
                    bucket_labels = labels + (("le", _format_value(bound)),)
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_format_labels(tuple(sorted(bucket_labels)))} "
                        f"{cumulative}"
                    )
                count = metric.count(**label_dict)
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_format_labels(tuple(sorted(inf_labels)))} {count}"
                )
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(metric.sum(**label_dict))}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} {count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def json_snapshot(registry: MetricsRegistry) -> dict[str, object]:
    """A plain-dict snapshot of every series in *registry*."""
    out: dict[str, object] = {}
    for metric in registry.collect():
        if isinstance(metric, (Counter, Gauge)):
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "series": [
                    {"labels": dict(labels), "value": value}
                    for labels, value in sorted(metric.series().items())
                ],
            }
        elif isinstance(metric, Histogram):
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "buckets": list(metric.buckets),
                "series": [
                    {
                        "labels": dict(labels),
                        "bucket_counts": list(series.bucket_counts),
                        "sum": series.sum,
                        "count": series.count,
                    }
                    for labels, series in sorted(metric.series().items())
                ],
            }
    return out


def json_text(registry: MetricsRegistry, *, indent: int = 2) -> str:
    return json.dumps(json_snapshot(registry), indent=indent, sort_keys=True)
