"""Structured event log: typed records for reservation-lifecycle events.

Where metrics aggregate and spans time, events *narrate*: every admit,
deny, claim, cancel, release, and trust failure in the fabric appends one
typed record, correlated back to the originating request through the
correlation ID minted when the user agent signed ``RAR_U``.

The correlation ID travels implicitly: the signalling engine scopes it
with :func:`correlation_scope`, and deeper layers (the broker's audit
hook, the trust verifier) pick it up via :func:`current_correlation_id`
without threading an argument through every call signature.  The scope
uses :mod:`contextvars`, so concurrent requests on different threads (or
tasks) never cross-tag each other's events.

Disabled by default; free when off (the usual ``None`` check).
"""

from __future__ import annotations

import contextlib
import enum
import threading
from collections import deque
from dataclasses import dataclass, field
from contextvars import ContextVar
from typing import Iterator

__all__ = [
    "EventKind",
    "ReasonCode",
    "Event",
    "EventLog",
    "enable",
    "disable",
    "get_event_log",
    "use_event_log",
    "reason_code_for",
    "correlation_scope",
    "current_correlation_id",
]


class EventKind(str, enum.Enum):
    """The typed vocabulary of fabric events."""

    ADMIT = "admit"
    DENY = "deny"
    CLAIM = "claim"
    CANCEL = "cancel"
    #: A granted partial-path reservation torn down after a downstream denial.
    RELEASE = "release"
    TRUST_FAILURE = "trust_failure"
    #: The fault injector delivered a fault.
    FAULT = "fault"
    #: A signalling operation failed transiently and will be retried.
    RETRY = "retry"
    #: A per-link circuit breaker changed state.
    BREAKER = "breaker"
    #: A soft-state lease lapsed and the reservation was reclaimed.
    EXPIRE = "expire"
    #: An explicit release during unwind failed (soft state will reclaim).
    UNWIND_FAILED = "unwind_failed"
    #: Graceful degradation engaged (e.g. tunnel -> per-flow signalling).
    FALLBACK = "fallback"
    #: An alert-engine lifecycle transition (pending/firing/resolved);
    #: the correlation id is the incident id minted at first firing.
    ALERT = "alert"


class ReasonCode(str, enum.Enum):
    """Machine-readable *why* for lifecycle events and audit records.

    The free-form ``reason`` string stays human-facing; the code is the
    stable vocabulary the audit reconciler and alerting match on, so the
    event log and the decision ledger agree on why state was torn down.
    """

    #: Local policy returned DENY.
    POLICY_DENIED = "policy_denied"
    #: The request violates the SLA with the upstream domain.
    SLA_VIOLATION = "sla_violation"
    #: Admission control found no capacity in some time slot.
    CAPACITY_EXCEEDED = "capacity_exceeded"
    #: Signature / certificate / delegation verification failed.
    TRUST_FAILURE = "trust_failure"
    #: A bandwidth broker on the path crashed or is not answering.
    BROKER_UNREACHABLE = "broker_unreachable"
    #: The inter-broker channel dropped/timed out beyond the retry budget.
    LINK_UNREACHABLE = "link_unreachable"
    #: The policy server (or certificate repository) is unreachable.
    POLICY_UNAVAILABLE = "policy_unavailable"
    #: The end-to-end signalling deadline passed.
    DEADLINE_EXCEEDED = "deadline_exceeded"
    #: The accumulated cost offers exceeded the user's ceiling.
    COST_CEILING = "cost_ceiling"
    #: A soft-state lease lapsed without refresh.
    SOFT_STATE_EXPIRED = "soft_state_expired"
    #: Torn down to balance a partial-path admission after a denial.
    UNWOUND = "unwound"
    #: Explicit release during unwind failed; soft state will reclaim.
    UNWIND_RELEASE_FAILED = "unwind_release_failed"
    #: Tunnel-level allocation failed; degraded to per-flow signalling.
    TUNNEL_DIRECT_FAILED = "tunnel_direct_failed"
    #: The caller cancelled or modified the reservation.
    USER_REQUESTED = "user_requested"
    #: The per-peer signalling token bucket was empty.
    RATE_LIMITED = "rate_limited"
    #: The per-user / per-ingress reservation quota was exhausted.
    QUOTA_EXCEEDED = "quota_exceeded"
    #: The envelope digest was already seen inside the replay window.
    REPLAY_REJECTED = "replay_rejected"
    #: A new admission was shed while the pending queue was past the
    #: overload watermark (refresh/teardown still serviced).
    SHED_OVERLOAD = "shed_overload"


def reason_code_for(exc: BaseException) -> ReasonCode:
    """Classify an exception into the :class:`ReasonCode` vocabulary.

    Local import: :mod:`repro.errors` is a leaf module, but deferring
    keeps this module importable before the package is fully wired.
    """
    from repro import errors

    # Defense rejections first: they subclass SignallingError, so they
    # must be recognised before the broader transport buckets below.
    if isinstance(exc, errors.RateLimitedError):
        return ReasonCode.RATE_LIMITED
    if isinstance(exc, errors.QuotaExceededError):
        return ReasonCode.QUOTA_EXCEEDED
    if isinstance(exc, errors.ReplayRejectedError):
        return ReasonCode.REPLAY_REJECTED
    if isinstance(exc, errors.OverloadShedError):
        return ReasonCode.SHED_OVERLOAD
    if isinstance(exc, errors.MalformedMessageError):
        return ReasonCode.TRUST_FAILURE
    if isinstance(exc, errors.DeadlineExceededError):
        return ReasonCode.DEADLINE_EXCEEDED
    if isinstance(exc, errors.BrokerUnavailableError):
        return ReasonCode.BROKER_UNREACHABLE
    if isinstance(exc, (errors.CircuitOpenError, errors.RetryExhaustedError,
                        errors.ChannelError)):
        return ReasonCode.LINK_UNREACHABLE
    if isinstance(exc, (errors.PolicyUnavailableError,
                        errors.RepositoryUnavailableError)):
        return ReasonCode.POLICY_UNAVAILABLE
    if isinstance(exc, (errors.CryptoError, errors.TrustError,
                        errors.TamperedMessageError)):
        return ReasonCode.TRUST_FAILURE
    if isinstance(exc, errors.SLAError):
        return ReasonCode.SLA_VIOLATION
    if isinstance(exc, errors.AdmissionError):
        return ReasonCode.CAPACITY_EXCEEDED
    if isinstance(exc, errors.PolicyError):
        return ReasonCode.POLICY_DENIED
    return ReasonCode.LINK_UNREACHABLE


@dataclass(frozen=True)
class Event:
    """One structured record."""

    kind: EventKind
    at_time: float
    domain: str = ""
    correlation_id: str = ""
    user: str = ""
    handle: str = ""
    reason: str = ""
    #: Stable machine-readable cause (a :class:`ReasonCode` value), or "".
    reason_code: str = ""
    attributes: tuple[tuple[str, str], ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind.value,
            "at_time": self.at_time,
            "domain": self.domain,
            "correlation_id": self.correlation_id,
            "user": self.user,
            "handle": self.handle,
            "reason": self.reason,
            "reason_code": self.reason_code,
            "attributes": dict(self.attributes),
        }


class EventLog:
    """Bounded, thread-safe, append-only event store.

    *max_events* bounds memory on long scenario runs; the oldest records
    are evicted first (operators wanting full retention can raise it).
    """

    def __init__(self, max_events: int = 100_000):
        self._lock = threading.RLock()
        self._events: deque[Event] = deque(maxlen=max_events)
        self.emitted = 0  # total ever emitted, survives eviction

    def emit(
        self,
        kind: EventKind,
        *,
        at_time: float = 0.0,
        domain: str = "",
        user: str = "",
        handle: str = "",
        reason: str = "",
        reason_code: str | ReasonCode = "",
        correlation_id: str | None = None,
        **attributes: object,
    ) -> Event:
        if correlation_id is None:
            correlation_id = current_correlation_id() or ""
        event = Event(
            kind=kind,
            at_time=at_time,
            domain=domain,
            correlation_id=correlation_id,
            user=user,
            handle=handle,
            reason=reason,
            reason_code=(reason_code.value
                         if isinstance(reason_code, ReasonCode)
                         else reason_code),
            attributes=tuple(sorted((k, str(v)) for k, v in attributes.items())),
        )
        with self._lock:
            self._events.append(event)
            self.emitted += 1
        return event

    def events(
        self,
        kind: EventKind | None = None,
        *,
        domain: str | None = None,
        correlation_id: str | None = None,
    ) -> tuple[Event, ...]:
        with self._lock:
            snapshot = tuple(self._events)
        return tuple(
            e for e in snapshot
            if (kind is None or e.kind is kind)
            and (domain is None or e.domain == domain)
            and (correlation_id is None or e.correlation_id == correlation_id)
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        with self._lock:
            return iter(tuple(self._events))

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
            self.emitted = 0


# ---------------------------------------------------------------------------
# Correlation-ID propagation
# ---------------------------------------------------------------------------

_correlation: ContextVar[str | None] = ContextVar("repro_correlation_id",
                                                  default=None)


def current_correlation_id() -> str | None:
    """The correlation ID of the request currently being processed (set
    by the signalling engine), or ``None`` outside any request scope."""
    return _correlation.get()


@contextlib.contextmanager
def correlation_scope(correlation_id: str):
    """Tag every event emitted inside the block with *correlation_id*."""
    token = _correlation.set(correlation_id)
    try:
        yield
    finally:
        _correlation.reset(token)


# ---------------------------------------------------------------------------
# Process-global event log (disabled by default)
# ---------------------------------------------------------------------------

_active: EventLog | None = None
_global_lock = threading.Lock()


def enable(log: EventLog | None = None) -> EventLog:
    """Install *log* (or a fresh one) as the process-global event log."""
    global _active
    with _global_lock:
        _active = log if log is not None else EventLog()
        return _active


def disable() -> None:
    global _active
    with _global_lock:
        _active = None


def get_event_log() -> EventLog | None:
    """The active global event log, or ``None`` when off."""
    return _active


class use_event_log:
    """Scoped event-log installation (mirror of ``metrics.use_registry``)."""

    def __init__(self, log: EventLog | None = None):
        self.log = log if log is not None else EventLog()
        self._previous: EventLog | None = None

    def __enter__(self) -> EventLog:
        self._previous = get_event_log()
        enable(self.log)
        return self.log

    def __exit__(self, *exc: object) -> None:
        if self._previous is None:
            disable()
        else:
            enable(self._previous)
