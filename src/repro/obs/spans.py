"""Span-based tracing of signalling requests.

The paper's nested signatures "allow for the tracking of the path taken
by a request as it moves from BB to BB" (§6.4) — structurally, after the
fact, from the envelope.  Spans give the *runtime* view of the same
trajectory: a per-request correlation ID is minted when the user agent
signs ``RAR_U``, and every BB hop records a span (with ``verify`` /
``policy`` / ``admission`` / ``delegation`` / ``forward`` phase children)
whose nesting mirrors the signature envelopes — each hop's span is the
parent of the next hop's, so the root-to-leaf chain of the span tree is
exactly the signer order :func:`repro.core.tracing.trace_request_path`
recovers from the envelope.

Spans carry two time axes:

* **wall clock** (``time.perf_counter``) — what the verification, policy
  evaluation, and delegation crypto actually cost on this machine;
* **simulated latency** (``sim_latency_s`` attribute) — the modelled
  network/processing delay the signalling engines account for.

Like the metrics registry, tracing is disabled by default and free when
off: call sites ask :func:`get_tracer` and skip everything on ``None``.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ObservabilityError

__all__ = [
    "Span",
    "Tracer",
    "enable",
    "disable",
    "get_tracer",
    "use_tracer",
    "mint_correlation_id",
    "phase_clock",
]


def phase_clock() -> float:
    """The monotonic clock reading used for span timing.

    Instrumented code that needs a raw "phase started here" timestamp
    (to later hand to :meth:`Tracer.record`) must take it from this
    helper rather than calling ``time.perf_counter()`` directly, so all
    timing flows through the obs layer (lint rule REP110)."""
    return time.perf_counter()

#: Correlation IDs stay unique across tracers (and when tracing is off),
#: so event logs from different runs never collide within one process.
_correlation_counter = itertools.count(1)


def mint_correlation_id() -> str:
    """A fresh per-request correlation ID (process-unique)."""
    return f"req-{next(_correlation_counter):06d}"


@dataclass
class Span:
    """One timed operation within a trace."""

    name: str
    trace_id: str
    span_id: int
    parent_id: int | None
    attributes: dict[str, object] = field(default_factory=dict)
    status: str = "ok"
    start_wall: float = 0.0
    end_wall: float | None = None

    @property
    def finished(self) -> bool:
        return self.end_wall is not None

    @property
    def wall_duration_s(self) -> float:
        if self.end_wall is None:
            raise ObservabilityError(f"span {self.name!r} is still open")
        return self.end_wall - self.start_wall

    @property
    def sim_latency_s(self) -> float:
        return float(self.attributes.get("sim_latency_s", 0.0))  # type: ignore[arg-type]


class Tracer:
    """Collects spans, grouped by trace (= correlation) ID.

    The instrumentation manages parenting explicitly (a hop span stays
    open from the request leg until the reply passes back through the
    hop), so the API is ``begin``/``end`` rather than a context-manager
    stack; :meth:`record` covers the common already-timed phase case.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._spans: dict[str, list[Span]] = {}

    # -- recording ---------------------------------------------------------------

    def begin(
        self,
        name: str,
        *,
        trace_id: str,
        parent: Span | None = None,
        parent_span_id: int | None = None,
        start_wall: float | None = None,
        **attributes: object,
    ) -> Span:
        if parent is not None:
            parent_span_id = parent.span_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=next(self._ids),
            parent_id=parent_span_id,
            attributes=dict(attributes),
            # A caller that already holds a phase_clock() reading backdates
            # the span to it, so cheap bookkeeping between two instrumented
            # stretches is attributed instead of pooling as self-time.
            start_wall=(
                start_wall if start_wall is not None else time.perf_counter()
            ),
        )
        with self._lock:
            self._spans.setdefault(trace_id, []).append(span)
        return span

    def end(self, span: Span, *, status: str = "ok", **attributes: object) -> Span:
        # Span mutation takes the tracer lock: concurrent signalling
        # workers may end sibling spans while a reader renders the trace,
        # and an unlocked dict.update would be a torn write.
        with self._lock:
            span.end_wall = time.perf_counter()
            span.status = status
            span.attributes.update(attributes)
        return span

    def record(
        self,
        name: str,
        *,
        parent: Span,
        start_wall: float,
        status: str = "ok",
        **attributes: object,
    ) -> Span:
        """Record a phase that already ran: span opens at *start_wall*
        (a ``time.perf_counter`` reading) and closes now."""
        span = self.begin(name, trace_id=parent.trace_id, parent=parent,
                          **attributes)
        with self._lock:
            span.start_wall = start_wall
        return self.end(span, status=status)

    # -- queries -----------------------------------------------------------------

    def traces(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._spans)

    def spans_for(self, trace_id: str) -> tuple[Span, ...]:
        with self._lock:
            return tuple(self._spans.get(trace_id, ()))

    def latest_trace(self) -> str | None:
        with self._lock:
            if not self._spans:
                return None
            return next(reversed(self._spans))

    def children_of(self, span: Span) -> tuple[Span, ...]:
        return tuple(
            s for s in self.spans_for(span.trace_id)
            if s.parent_id == span.span_id
        )

    def root(self, trace_id: str) -> Span | None:
        for span in self.spans_for(trace_id):
            if span.parent_id is None:
                return span
        return None

    def hop_chain(self, trace_id: str) -> list[Span]:
        """The root-to-leaf chain of ``hop`` spans in envelope-nesting
        order (source domain first) — the runtime counterpart of
        :func:`repro.core.tracing.trace_request_path`."""
        chain: list[Span] = []
        current = self.root(trace_id)
        while current is not None:
            nested = [s for s in self.children_of(current) if s.name == "hop"]
            if not nested:
                break
            chain.append(nested[0])
            current = nested[0]
        return chain

    def render(self, trace_id: str) -> str:
        """An indented tree of the trace, one span per line."""
        root = self.root(trace_id)
        if root is None:
            return f"(no spans for trace {trace_id})"
        lines: list[str] = []

        def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
            connector = "" if is_root else ("└─ " if is_last else "├─ ")
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            )
            timing = (
                f"wall={span.wall_duration_s * 1e3:.3f}ms"
                if span.finished else "open"
            )
            status = "" if span.status == "ok" else f" [{span.status}]"
            lines.append(
                f"{prefix}{connector}{span.name}{status} {timing}"
                + (f" {attrs}" if attrs else "")
            )
            children = self.children_of(span)
            child_prefix = prefix + ("" if is_root else ("   " if is_last else "│  "))
            for i, child in enumerate(children):
                walk(child, child_prefix, i == len(children) - 1, False)

        lines.append(f"trace {trace_id}")
        walk(root, "", True, True)
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()

    def __iter__(self) -> Iterator[Span]:
        with self._lock:
            flat = [s for spans in self._spans.values() for s in spans]
        return iter(flat)


# ---------------------------------------------------------------------------
# Process-global tracer (disabled by default)
# ---------------------------------------------------------------------------

_active: Tracer | None = None
_global_lock = threading.Lock()


def enable(tracer: Tracer | None = None) -> Tracer:
    """Install *tracer* (or a fresh one) as the process-global tracer."""
    global _active
    with _global_lock:
        _active = tracer if tracer is not None else Tracer()
        return _active


def disable() -> None:
    global _active
    with _global_lock:
        _active = None


def get_tracer() -> Tracer | None:
    """The active global tracer, or ``None`` when tracing is off."""
    return _active


class use_tracer:
    """Scoped tracer installation (mirror of ``metrics.use_registry``)."""

    def __init__(self, tracer: Tracer | None = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = get_tracer()
        enable(self.tracer)
        return self.tracer

    def __exit__(self, *exc: object) -> None:
        if self._previous is None:
            disable()
        else:
            enable(self._previous)
