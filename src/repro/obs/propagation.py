"""Cross-domain trace context propagation (W3C ``traceparent`` style).

PR 1's tracer stitches spans *inside one process* by passing ``Span``
objects down the call stack.  That breaks exactly where the paper's
architecture is interesting: a reservation crosses administrative
domains, and each bandwidth broker only sees the envelope it received.
The fix mirrors the paper's own mechanism — just as every BB nests the
upstream RAR inside its own signed envelope (§6.4), every BB embeds a
*trace context* field in the envelope it forwards, naming the span under
which the downstream hop's work should hang.

The wire format is the W3C Trace Context ``traceparent`` header::

    00-<32 hex trace-id>-<16 hex parent span-id>-01
    └┬┘ └──────┬───────┘ └────────┬───────────┘ └┬┘
  version   trace-id         parent span        flags (sampled)

The 128-bit trace-id reversibly encodes the correlation ID (UTF-8 bytes,
hex, left-padded with zeros — ``req-000001`` is 10 bytes, well inside
the 16-byte field), so a traceparent seen on the wire can be mapped back
to the event-log correlation ID without a lookup table.  IDs longer than
16 bytes are hashed into the field; they still group spans correctly but
are no longer reversible.

The field travels *inside the signed payload* (``F_TRACEPARENT`` in
:mod:`repro.core.messages`), so a tampered trace context fails signature
verification like any other field — the measurements inherit the trust
properties of the signalling itself.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

from repro.errors import ObservabilityError

__all__ = [
    "TraceContext",
    "format_traceparent",
    "parse_traceparent",
    "encode_trace_id",
    "decode_trace_id",
]

#: Version and flags are fixed: we speak exactly one version and always
#: sample (tracing is off entirely when the tracer is disabled).
_VERSION = "00"
_FLAGS = "01"

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})"
    r"-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """The trace identity a hop hands to its downstream neighbour."""

    trace_id: str
    span_id: int

    def __post_init__(self) -> None:
        if not self.trace_id:
            raise ObservabilityError("trace context needs a trace id")
        if self.span_id <= 0:
            raise ObservabilityError(
                f"trace context span id must be positive, got {self.span_id}"
            )


def encode_trace_id(trace_id: str) -> str:
    """Encode a correlation ID into the 32-hex-digit traceparent field.

    Reversible for IDs up to 16 UTF-8 bytes (zero-padded on the left);
    longer IDs degrade to a SHA-256-derived 16-byte digest, which still
    identifies the trace consistently but cannot be decoded back.
    """
    raw = trace_id.encode("utf-8")
    if len(raw) > 16:
        raw = hashlib.sha256(raw).digest()[:16]
    return raw.hex().zfill(32)


def decode_trace_id(field: str) -> str:
    """Invert :func:`encode_trace_id` where possible.

    Strips the zero padding and decodes UTF-8; if the bytes do not
    round-trip (a hashed over-long ID, or a foreign tracer's random
    trace-id), the 32-hex-digit field itself becomes the trace ID —
    still a stable grouping key, just not a correlation ID.
    """
    raw = bytes.fromhex(field).lstrip(b"\x00")
    try:
        decoded = raw.decode("utf-8")
    except UnicodeDecodeError:
        return field
    if not decoded or encode_trace_id(decoded) != field:
        return field
    return decoded


def format_traceparent(context: TraceContext) -> str:
    """Render *context* as a ``traceparent`` string."""
    return (
        f"{_VERSION}-{encode_trace_id(context.trace_id)}"
        f"-{context.span_id:016x}-{_FLAGS}"
    )


def parse_traceparent(value: str) -> TraceContext:
    """Parse a ``traceparent`` string back into a :class:`TraceContext`.

    Raises :class:`~repro.errors.ObservabilityError` on anything
    malformed (wrong shape, unknown version, all-zero ids) — a
    forwarding BB treats that the same as an absent field and starts a
    fresh local parent rather than guessing.
    """
    if not isinstance(value, str):
        raise ObservabilityError(
            f"traceparent must be a string, got {type(value).__name__}"
        )
    m = _TRACEPARENT_RE.match(value)
    if m is None:
        raise ObservabilityError(f"malformed traceparent {value!r}")
    if m.group("version") != _VERSION:
        raise ObservabilityError(
            f"unsupported traceparent version {m.group('version')!r}"
        )
    trace_field = m.group("trace_id")
    span_field = m.group("span_id")
    if set(trace_field) == {"0"} or set(span_field) == {"0"}:
        raise ObservabilityError(
            f"traceparent {value!r} has an all-zero id"
        )
    return TraceContext(
        trace_id=decode_trace_id(trace_field),
        span_id=int(span_field, 16),
    )
