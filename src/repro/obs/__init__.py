"""repro.obs — the fabric's observability substrate (ISSUE 1).

Three pillars, each individually switchable and all off by default:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  in a thread-safe registry, exported by :mod:`repro.obs.export` as
  Prometheus text or JSON;
* :mod:`repro.obs.spans` — span-based tracing with a per-request
  correlation ID minted when the user agent signs ``RAR_U``; the span
  tree nests exactly like the signature envelopes;
* :mod:`repro.obs.events` — a structured log of typed lifecycle records
  (admit / deny / claim / cancel / release / trust failure).

Layered on top of the pillars (ISSUE 4):

* :mod:`repro.obs.propagation` — W3C-traceparent-style trace context
  carried *inside* the signed RAR envelopes, so every domain's spans
  stitch into one end-to-end trace;
* :mod:`repro.obs.perf` — critical-path attribution of a trace and the
  ``BENCH_<n>.json`` benchmark-trajectory harness;
* :mod:`repro.obs.slo` — declarative latency/denial/breaker objectives
  evaluated over the registry and event log (``repro slo``; the chaos
  harness attaches verdicts to every run).

Instrumented modules pay a single ``None`` check when observability is
disabled, so the substrate adds no measurable overhead to the signalling
hot paths (benchmark C1 guards this).

Turn everything on at once::

    from repro import obs

    with obs.observed() as (registry, tracer, event_log):
        outcome = testbed.reserve(...)
    print(obs.export.prometheus_text(registry))

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and span
taxonomy.
"""

from __future__ import annotations

import contextlib
import logging
import sys
from typing import IO, Iterator

from repro.obs import events, export, metrics, perf, propagation, slo, spans
from repro.obs import audit
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer

__all__ = [
    "metrics",
    "spans",
    "events",
    "export",
    "perf",
    "propagation",
    "slo",
    "audit",
    "enable_all",
    "disable_all",
    "observed",
    "configure_logging",
]


def enable_all() -> tuple[MetricsRegistry, Tracer, EventLog]:
    """Enable metrics, tracing, and the event log with fresh instances."""
    return metrics.enable(), spans.enable(), events.enable()


def disable_all() -> None:
    metrics.disable()
    spans.disable()
    events.disable()


@contextlib.contextmanager
def observed() -> Iterator[tuple[MetricsRegistry, Tracer, EventLog]]:
    """Enable all three pillars for a ``with`` block, restoring the
    previous global state afterwards."""
    with metrics.use_registry() as registry:
        with spans.use_tracer() as tracer:
            with events.use_event_log() as event_log:
                yield registry, tracer, event_log


_LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_handler: logging.Handler | None = None


class _CurrentStderrHandler(logging.StreamHandler):
    """A stream handler that always writes to the *current*
    ``sys.stderr``.  A plain ``StreamHandler`` captures the stderr
    object at construction; when that object is a test harness's (or
    any redirector's) capture stream, the handler keeps a closed file
    after teardown and every later log record raises.  Late binding
    keeps the handler valid for the life of the process."""

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self) -> IO[str]:
        return sys.stderr

    @stream.setter
    def stream(self, value: IO[str]) -> None:
        # StreamHandler.setStream compatibility; the handler is
        # permanently bound to whatever sys.stderr currently is.
        pass


def configure_logging(
    verbosity: int = 0,
    *,
    stream: IO[str] | None = None,
    fmt: str = _LOG_FORMAT,
) -> logging.Logger:
    """Configure stdlib logging for the ``repro`` package tree.

    *verbosity* follows the CLI convention: 0 → WARNING, 1 (``-v``) →
    INFO, 2+ (``-vv``) → DEBUG.  Only the ``repro`` logger is touched —
    host applications embedding the library keep their own root-logger
    configuration.  Idempotent: repeated calls swap the single managed
    handler instead of stacking duplicates.
    """
    global _handler
    level = (
        logging.WARNING if verbosity <= 0
        else logging.INFO if verbosity == 1
        else logging.DEBUG
    )
    logger = logging.getLogger("repro")
    if _handler is not None:
        logger.removeHandler(_handler)
    _handler = (
        logging.StreamHandler(stream) if stream is not None
        else _CurrentStderrHandler()
    )
    _handler.setFormatter(logging.Formatter(fmt))
    logger.addHandler(_handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
