"""Critical-path analysis of a reservation's span tree.

The hop-by-hop protocol is strictly sequential — every span in the trace
lies on the critical path — so "critical-path analysis" here means
*attribution*: take the root span's end-to-end wall time and split it
into named segments, one per leaf phase span (``A/verify``,
``B/admission``, ``user/prepare``, ...), with whatever the phase spans do
not cover reported as per-span *untracked* self-time.  The interesting
outputs are the ranked segment table (where did the milliseconds go?)
and the coverage ratio (how much of the end-to-end time the
instrumentation can actually name — the acceptance gate keeps this at
≥95% for a multi-domain reservation).

Both time axes are attributed: real wall clock (crypto and engine cost
on this machine) and the modelled network latency the simulator accounts
for (``sim_latency_s`` span attributes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ObservabilityError
from repro.obs.spans import Span, Tracer

__all__ = [
    "Segment",
    "CriticalPathReport",
    "analyze_critical_path",
    "render_critical_path",
]


@dataclass(frozen=True)
class Segment:
    """One named slice of the end-to-end wall time."""

    #: ``<domain>/<phase>`` — e.g. ``B/verify``; user-side phases (the
    #: spans parented directly under ``reserve``) use domain ``user``.
    name: str
    domain: str
    phase: str
    wall_s: float
    #: Fraction of the root span's wall time (0..1).
    share: float
    #: Modelled latency the phase accounted for (0 for pure-CPU phases).
    sim_latency_s: float
    status: str


@dataclass(frozen=True)
class CriticalPathReport:
    """Attribution of one trace's end-to-end time to named segments."""

    trace_id: str
    total_wall_s: float
    #: Named segments, largest wall share first.
    segments: tuple[Segment, ...]
    #: Wall time no phase span claims (span self-times: loop overhead,
    #: envelope bookkeeping, instrumentation cost).
    untracked_wall_s: float
    #: Modelled end-to-end latency summed over the segments.
    total_sim_latency_s: float
    #: ``sum(segment wall) / total wall`` — the share of end-to-end time
    #: the instrumentation can attribute to a named hop/phase.
    coverage: float

    def top(self, n: int = 5) -> tuple[Segment, ...]:
        return self.segments[:n]


def _finished_duration(span: Span, fallback_end: float) -> float:
    """Wall duration, treating a still-open span as ending with the
    trace (a denial leg can leave downstream hop spans unclosed)."""
    end = span.end_wall if span.end_wall is not None else fallback_end
    return max(0.0, end - span.start_wall)


def analyze_critical_path(
    tracer: Tracer, trace_id: str | None = None
) -> CriticalPathReport:
    """Attribute *trace_id*'s end-to-end wall time to hop/phase segments.

    Defaults to the tracer's latest trace.  Leaf spans (phases) become
    named ``<domain>/<phase>`` segments; the self-time of every interior
    span (root, hops) is pooled as *untracked*.  Raises
    :class:`~repro.errors.ObservabilityError` when the trace is missing
    or has no finished root span.
    """
    if trace_id is None:
        trace_id = tracer.latest_trace()
        if trace_id is None:
            raise ObservabilityError("tracer holds no traces")
    spans = tracer.spans_for(trace_id)
    if not spans:
        raise ObservabilityError(f"no spans recorded for trace {trace_id!r}")
    root = tracer.root(trace_id)
    if root is None:
        raise ObservabilityError(f"trace {trace_id!r} has no root span")
    if root.end_wall is None:
        raise ObservabilityError(
            f"trace {trace_id!r}: root span {root.name!r} is still open"
        )
    total_wall = root.wall_duration_s
    root_end = root.end_wall

    children: dict[int, list[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)

    def domain_of(span: Span, inherited: str) -> str:
        value = span.attributes.get("domain")
        return str(value) if value is not None else inherited

    segments: list[Segment] = []
    untracked = 0.0

    def walk(span: Span, inherited_domain: str) -> None:
        nonlocal untracked
        domain = domain_of(span, inherited_domain)
        kids = children.get(span.span_id, ())
        duration = _finished_duration(span, root_end)
        if not kids:
            segments.append(
                Segment(
                    name=f"{domain}/{span.name}",
                    domain=domain,
                    phase=span.name,
                    wall_s=duration,
                    share=duration / total_wall if total_wall > 0 else 0.0,
                    sim_latency_s=span.sim_latency_s,
                    status=span.status,
                )
            )
            return
        untracked += max(
            0.0,
            duration - sum(_finished_duration(k, root_end) for k in kids),
        )
        for kid in kids:
            walk(kid, domain)

    # The root span itself carries no domain: its direct phase children
    # (prepare, submit) are user-side work.
    walk(root, "user")

    segments.sort(key=lambda s: s.wall_s, reverse=True)
    named_wall = sum(s.wall_s for s in segments)
    return CriticalPathReport(
        trace_id=trace_id,
        total_wall_s=total_wall,
        segments=tuple(segments),
        untracked_wall_s=untracked,
        total_sim_latency_s=sum(s.sim_latency_s for s in segments),
        coverage=named_wall / total_wall if total_wall > 0 else 0.0,
    )


def render_critical_path(report: CriticalPathReport) -> str:
    """A ranked, human-readable attribution table."""
    lines = [
        f"critical path for trace {report.trace_id}",
        f"end-to-end wall time: {report.total_wall_s * 1e3:.3f} ms "
        f"(modelled latency: {report.total_sim_latency_s * 1e3:.3f} ms)",
        "",
        f"{'segment':<24} {'wall ms':>10} {'share':>7} {'sim ms':>10}",
    ]
    for seg in report.segments:
        flag = "" if seg.status == "ok" else f"  [{seg.status}]"
        lines.append(
            f"{seg.name:<24} {seg.wall_s * 1e3:>10.3f} "
            f"{seg.share * 100:>6.1f}% {seg.sim_latency_s * 1e3:>10.3f}{flag}"
        )
    lines.append(
        f"{'(untracked)':<24} {report.untracked_wall_s * 1e3:>10.3f} "
        f"{(1 - report.coverage) * 100:>6.1f}% {'':>10}"
    )
    lines.append("")
    lines.append(
        f"coverage: {report.coverage * 100:.1f}% of end-to-end wall time "
        f"attributed to {len(report.segments)} named segments"
    )
    return "\n".join(lines)
