"""repro.obs.perf — performance tooling over the obs substrate (ISSUE 4).

Two consumers of the telemetry the rest of :mod:`repro.obs` records:

* :mod:`repro.obs.perf.critical_path` — walks a reservation's span tree
  (stitched across domains by the envelope-carried trace context) and
  attributes end-to-end latency to named hop/phase segments;
* :mod:`repro.obs.perf.bench` — runs the ``benchmarks/`` suite
  headlessly, merges pytest-benchmark timings with the per-benchmark
  metrics snapshots, and maintains the ``BENCH_<n>.json`` trajectory at
  the repo root that every perf PR is judged against.

See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from repro.obs.perf.critical_path import (
    CriticalPathReport,
    Segment,
    analyze_critical_path,
    render_critical_path,
)

__all__ = [
    "CriticalPathReport",
    "Segment",
    "analyze_critical_path",
    "render_critical_path",
]
