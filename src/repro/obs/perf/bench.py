"""The benchmark-trajectory harness behind ``repro bench``.

Runs the ``benchmarks/bench_*.py`` suite headlessly (a pytest subprocess
with ``--benchmark-json``), merges the pytest-benchmark timings with the
per-benchmark metrics snapshots the suite writes to
``benchmarks/.metrics/``, and records the result as one canonical
``BENCH_<n>.json`` *trajectory entry* at the repo root — machine
fingerprint, git sha, per-benchmark timings, and the metric-derived
counters and latency quantiles that explain them.  ``repro bench
--compare`` diffs the newest entry against its predecessor and fails on
regressions, which is the gate CI runs.

The trajectory is append-only: entry numbers only grow, and committed
entries are the baseline future optimisation PRs are judged against.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import re
import subprocess
import sys
from typing import Mapping, Sequence

from repro.errors import ObservabilityError
from repro.obs.metrics import interpolate_quantile

__all__ = [
    "BENCH_SCHEMA",
    "QUICK_BENCHMARKS",
    "machine_fingerprint",
    "git_sha",
    "run_benchmarks",
    "build_entry",
    "trajectory_entries",
    "next_entry_number",
    "write_entry",
    "validate_bench_entry",
    "compare_entries",
]

#: Schema identifier stamped into (and required of) every entry.
BENCH_SCHEMA = "repro-bench-trajectory/1"

#: The subset ``--quick`` runs: the end-to-end signalling benchmarks
#: (the paper's headline cost), the crypto-cost claim, and the
#: concurrent-batch claim — enough signal for a CI regression gate
#: without the half-hour full sweep.
QUICK_BENCHMARKS: tuple[str, ...] = (
    "bench_fig2_multidomain.py",
    "bench_fig5_hopbyhop.py",
    "bench_claim_signalling_latency.py",
    "bench_claim_crypto_cost.py",
    "bench_claim_concurrency.py",
)

_ENTRY_RE = re.compile(r"^BENCH_(\d+)\.json$")


def machine_fingerprint() -> dict[str, object]:
    """Enough about this machine to interpret (not normalise) timings."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 0,
    }


def git_sha(repo_root: pathlib.Path) -> str:
    """The repo's HEAD commit, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip()


def run_benchmarks(
    repo_root: pathlib.Path,
    *,
    quick: bool = False,
    json_path: pathlib.Path,
    extra_args: Sequence[str] = (),
    env_overrides: Mapping[str, str] | None = None,
) -> dict[str, object]:
    """Run the benchmark suite in a pytest subprocess.

    Returns the parsed ``--benchmark-json`` document.  Raises
    :class:`~repro.errors.ObservabilityError` when the run fails (a
    benchmark asserts the paper's claimed shape, so a failure is a
    reproduction regression, not just a slow run).
    """
    bench_dir = repo_root / "benchmarks"
    if not bench_dir.is_dir():
        raise ObservabilityError(f"no benchmarks/ directory under {repo_root}")
    if quick:
        targets = [str(bench_dir / name) for name in QUICK_BENCHMARKS]
        speed_args = [
            "--benchmark-min-rounds=1",
            "--benchmark-max-time=0.25",
        ]
    else:
        targets = [str(bench_dir)]
        speed_args = []
    src_dir = pathlib.Path(__file__).resolve().parents[3]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{src_dir}{os.pathsep}{existing}" if existing else str(src_dir)
    )
    if env_overrides:
        env.update(env_overrides)
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *targets,
        "-q",
        "-p",
        "no:cacheprovider",
        f"--benchmark-json={json_path}",
        *speed_args,
        *extra_args,
    ]
    proc = subprocess.run(
        cmd, cwd=repo_root, capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        tail = "\n".join(proc.stdout.splitlines()[-30:])
        raise ObservabilityError(
            f"benchmark run failed (pytest exit {proc.returncode}):\n{tail}"
        )
    try:
        return json.loads(json_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(
            f"benchmark run produced no readable JSON at {json_path}: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# Merging timings with the per-benchmark metrics snapshots
# ---------------------------------------------------------------------------


def _snapshot_path(snapshot_dir: pathlib.Path, test_name: str) -> pathlib.Path:
    # Mirror benchmarks/conftest.py: node names become file names with
    # "/" flattened to "_".
    safe = test_name.replace("/", "_").replace("::", "-")
    return snapshot_dir / f"{safe}.json"


def _counter_totals(snapshot: Mapping[str, object]) -> dict[str, float]:
    """Counter totals (summed over label sets) from one metrics snapshot."""
    totals: dict[str, float] = {}
    for name, metric in snapshot.items():
        if not isinstance(metric, dict) or metric.get("kind") != "counter":
            continue
        totals[name] = sum(
            float(entry.get("value", 0.0))
            for entry in metric.get("series", [])
        )
    return totals


def _histogram_quantiles(
    snapshot: Mapping[str, object]
) -> dict[str, dict[str, float]]:
    """p50/p95/p99 per histogram metric, aggregated across label sets
    (bucket counts summed series-wise — sound because every series of
    one histogram shares its bucket bounds)."""
    out: dict[str, dict[str, float]] = {}
    for name, metric in snapshot.items():
        if not isinstance(metric, dict) or metric.get("kind") != "histogram":
            continue
        buckets = [float(b) for b in metric.get("buckets", [])]
        if not buckets:
            continue
        summed = [0] * len(buckets)
        for entry in metric.get("series", []):
            for i, n in enumerate(entry.get("bucket_counts", [])):
                if i < len(summed):
                    summed[i] += int(n)
        out[name] = {
            f"p{int(q * 100)}": interpolate_quantile(buckets, summed, q)
            for q in (0.5, 0.95, 0.99)
        }
    return out


def build_entry(
    *,
    repo_root: pathlib.Path,
    benchmark_json: Mapping[str, object],
    entry_number: int,
    quick: bool,
) -> dict[str, object]:
    """Assemble one trajectory entry from a benchmark run's outputs."""
    snapshot_dir = repo_root / "benchmarks" / ".metrics"
    benchmarks: dict[str, object] = {}
    for bench in benchmark_json.get("benchmarks", []):  # type: ignore[union-attr]
        name = str(bench.get("name", ""))
        stats = bench.get("stats", {})
        record: dict[str, object] = {
            "group": bench.get("group"),
            "mean_s": float(stats.get("mean", 0.0)),
            "stddev_s": float(stats.get("stddev", 0.0)),
            "min_s": float(stats.get("min", 0.0)),
            "rounds": int(stats.get("rounds", 0)),
        }
        snap_path = _snapshot_path(snapshot_dir, name)
        if snap_path.is_file():
            try:
                snapshot = json.loads(snap_path.read_text())
            except (OSError, json.JSONDecodeError):
                snapshot = {}
            record["counters"] = _counter_totals(snapshot)
            quantiles = _histogram_quantiles(snapshot)
            if quantiles:
                record["quantiles"] = quantiles
        benchmarks[name] = record
    return {
        "schema": BENCH_SCHEMA,
        "entry": entry_number,
        "created": benchmark_json.get("datetime", ""),
        "git_sha": git_sha(repo_root),
        "quick": quick,
        "machine": machine_fingerprint(),
        "benchmarks": benchmarks,
    }


# ---------------------------------------------------------------------------
# The trajectory at the repo root
# ---------------------------------------------------------------------------


def trajectory_entries(
    repo_root: pathlib.Path,
) -> list[tuple[int, pathlib.Path]]:
    """``(entry_number, path)`` for every ``BENCH_<n>.json``, ascending."""
    found: list[tuple[int, pathlib.Path]] = []
    for path in repo_root.iterdir():
        m = _ENTRY_RE.match(path.name)
        if m is not None and path.is_file():
            found.append((int(m.group(1)), path))
    return sorted(found)


def next_entry_number(repo_root: pathlib.Path) -> int:
    """One past the highest committed entry (the trajectory starts at 4:
    the PR that created the harness)."""
    entries = trajectory_entries(repo_root)
    return entries[-1][0] + 1 if entries else 4


def write_entry(
    repo_root: pathlib.Path, entry: Mapping[str, object]
) -> pathlib.Path:
    problems = validate_bench_entry(entry)
    if problems:
        raise ObservabilityError(
            "refusing to write an invalid trajectory entry: "
            + "; ".join(problems)
        )
    path = repo_root / f"BENCH_{entry['entry']}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def validate_bench_entry(entry: Mapping[str, object]) -> list[str]:
    """Schema check for one trajectory entry; empty list = valid."""
    problems: list[str] = []
    if entry.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {entry.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    if not isinstance(entry.get("entry"), int) or entry.get("entry", 0) < 0:
        problems.append("entry must be a non-negative integer")
    sha = entry.get("git_sha")
    if not isinstance(sha, str) or not sha:
        problems.append("git_sha must be a non-empty string")
    if not isinstance(entry.get("quick"), bool):
        problems.append("quick must be a boolean")
    machine = entry.get("machine")
    if not isinstance(machine, Mapping):
        problems.append("machine fingerprint missing")
    else:
        for key in ("platform", "python", "cpu_count"):
            if key not in machine:
                problems.append(f"machine fingerprint lacks {key!r}")
    benchmarks = entry.get("benchmarks")
    if not isinstance(benchmarks, Mapping) or not benchmarks:
        problems.append("benchmarks must be a non-empty mapping")
        return problems
    for name, record in benchmarks.items():
        if not isinstance(record, Mapping):
            problems.append(f"benchmark {name!r} is not a mapping")
            continue
        for key in ("mean_s", "stddev_s", "min_s", "rounds"):
            if not isinstance(record.get(key), (int, float)):
                problems.append(f"benchmark {name!r} lacks numeric {key!r}")
        mean = record.get("mean_s")
        if isinstance(mean, (int, float)) and mean < 0:
            problems.append(f"benchmark {name!r} has negative mean_s")
        counters = record.get("counters")
        if counters is not None and not isinstance(counters, Mapping):
            problems.append(f"benchmark {name!r} counters is not a mapping")
    return problems


def compare_entries(
    previous: Mapping[str, object],
    current: Mapping[str, object],
    *,
    threshold: float = 2.0,
) -> tuple[list[str], list[str]]:
    """Compare two entries: ``(regressions, notes)``.

    A benchmark regresses when its mean slows down by more than
    *threshold*× versus the previous entry.  Notes cover everything
    else worth a human glance: appeared/vanished benchmarks and >25%
    drifts in either direction.
    """
    regressions: list[str] = []
    notes: list[str] = []
    prev_benchmarks = previous.get("benchmarks", {})
    cur_benchmarks = current.get("benchmarks", {})
    if not isinstance(prev_benchmarks, Mapping):
        prev_benchmarks = {}
    if not isinstance(cur_benchmarks, Mapping):
        cur_benchmarks = {}
    for name in sorted(set(prev_benchmarks) | set(cur_benchmarks)):
        prev = prev_benchmarks.get(name)
        cur = cur_benchmarks.get(name)
        if prev is None:
            notes.append(f"+ {name}: new benchmark")
            continue
        if cur is None:
            notes.append(f"- {name}: no longer run")
            continue
        prev_mean = float(prev.get("mean_s", 0.0))
        cur_mean = float(cur.get("mean_s", 0.0))
        if prev_mean <= 0.0:
            continue
        ratio = cur_mean / prev_mean
        if ratio > threshold:
            regressions.append(
                f"{name}: {prev_mean * 1e3:.3f} ms -> {cur_mean * 1e3:.3f} ms "
                f"({ratio:.2f}x, threshold {threshold:.2f}x)"
            )
        elif ratio > 1.25 or ratio < 0.8:
            direction = "slower" if ratio > 1.0 else "faster"
            notes.append(
                f"~ {name}: {prev_mean * 1e3:.3f} ms -> "
                f"{cur_mean * 1e3:.3f} ms ({ratio:.2f}x {direction})"
            )
    return regressions, notes
