"""Per-broker health verdicts: green / degraded / critical.

The verdict for a domain is a **pure function** of a
:class:`~repro.obs.telemetry.series.SeriesStore` and an instant of
simulated time — no hidden state, no clock reads — so replaying a
``.tsrec`` recording through :func:`evaluate_health` reproduces the
live run's verdicts exactly (the Hypothesis property test pins this).

Signals folded into one verdict, worst wins:

* **Denial burn rate**, multi-window.  Burn is the windowed denial
  ratio (``admissions_total{granted=false}`` over all admissions for
  the domain) divided by the SLO target.  The classic fast/slow pairing
  applies: a short window that confirms the problem is happening *now*
  and a long window that confirms it is *sustained*; CRITICAL requires
  both to exceed the critical burn, which filters one-sample blips
  without missing real incidents.
* **Work-queue backlog** (``work_queue_backlog_s``): the victim's
  modelled verification backlog; beyond the honest deadline every
  arriving honest request is already late → CRITICAL.
* **Resource utilization** (``domain_utilization``): sustained
  saturation is DEGRADED — it is only an incident when denials or
  backlog confirm it, which the other signals do.
* **Breaker state and flapping**: any open breaker on a link touching
  the domain is CRITICAL (the fabric has amputated a path); more than
  ``flap_threshold`` state changes inside the flap window is DEGRADED
  (the link is oscillating — recovery is not holding).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.obs.telemetry.series import SeriesStore

__all__ = [
    "HealthStatus",
    "HealthPolicy",
    "HealthSignal",
    "HealthVerdict",
    "denial_burn",
    "breaker_flaps",
    "evaluate_health",
    "evaluate_fleet",
]


class HealthStatus(enum.IntEnum):
    """Ordered so ``max()`` folds signals into the worst verdict."""

    GREEN = 0
    DEGRADED = 1
    CRITICAL = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds for the health model (defaults match the harness
    SLOs: denial target 0.5, honest deadline 2.5 s)."""

    fast_window_s: float = 10.0
    slow_window_s: float = 60.0
    #: SLO target for the denial ratio; burn = actual / target.
    denial_slo: float = 0.5
    #: Slow-window burn beyond this is DEGRADED.
    burn_degraded: float = 1.0
    #: Fast *and* slow burn beyond this is CRITICAL.
    burn_critical: float = 2.0
    backlog_degraded_s: float = 1.0
    backlog_critical_s: float = 2.5
    utilization_degraded: float = 0.9
    flap_window_s: float = 30.0
    #: Breaker state changes inside the flap window before DEGRADED.
    flap_threshold: int = 3


@dataclass(frozen=True)
class HealthSignal:
    """One contributing measurement and the status it argues for."""

    name: str
    value: float
    status: HealthStatus
    detail: str = ""


@dataclass(frozen=True)
class HealthVerdict:
    domain: str
    at_time: float
    status: HealthStatus
    signals: tuple[HealthSignal, ...] = ()

    def reasons(self) -> tuple[str, ...]:
        """The non-green signals, worst first."""
        bad = [s for s in self.signals if s.status > HealthStatus.GREEN]
        bad.sort(key=lambda s: (-s.status, s.name))
        return tuple(s.detail or s.name for s in bad)

    def to_dict(self) -> dict:
        return {
            "domain": self.domain,
            "at_time": self.at_time,
            "status": self.status.name,
            "signals": [
                {
                    "name": s.name,
                    "value": round(s.value, 6),
                    "status": s.status.name,
                    "detail": s.detail,
                }
                for s in self.signals
            ],
        }


# ---------------------------------------------------------------------------
# Signal arithmetic (each a pure function of the store)
# ---------------------------------------------------------------------------


def denial_burn(
    store: SeriesStore, domain: str, *, now: float, window_s: float,
    slo: float,
) -> float:
    """Windowed denial ratio over the SLO target for one domain."""
    denied = store.delta(
        "admissions_total", now=now, window_s=window_s,
        where={"domain": domain, "granted": "false"},
    )
    total = store.delta(
        "admissions_total", now=now, window_s=window_s,
        where={"domain": domain},
    )
    if total <= 0:
        return 0.0
    return (denied / total) / slo if slo > 0 else 0.0


def _domain_links(store: SeriesStore, domain: str) -> tuple[str, ...]:
    """Links (``a|b`` labels) with *domain* as an endpoint."""
    links = set()
    for key in store.keys():
        if key.name != "breaker_state":
            continue
        link = key.label("link")
        if domain in link.split("|"):
            links.add(link)
    return tuple(sorted(links))


def breaker_flaps(
    store: SeriesStore, domain: str, *, now: float, window_s: float,
) -> tuple[int, float]:
    """``(state_changes_in_window, worst_current_state)`` across the
    domain's links.  State values: closed 0, half-open 1, open 2."""
    changes = 0
    worst = 0.0
    for link in _domain_links(store, domain):
        series = store.series("breaker_state", {"link": link})
        if series is None:
            continue
        points = series.window(now - window_s, now)
        for (_, prev), (_, cur) in zip(points, points[1:]):
            if cur != prev:
                changes += 1
        last = series.last()
        if last is not None:
            worst = max(worst, last[1])
    return changes, worst


# ---------------------------------------------------------------------------
# The verdict
# ---------------------------------------------------------------------------


def evaluate_health(
    store: SeriesStore, domain: str, *, now: float,
    policy: HealthPolicy | None = None,
) -> HealthVerdict:
    """Fold every signal into one verdict for *domain* at *now*."""
    policy = policy or HealthPolicy()
    signals: list[HealthSignal] = []

    # Multi-window denial burn.
    fast = denial_burn(
        store, domain, now=now, window_s=policy.fast_window_s,
        slo=policy.denial_slo,
    )
    slow = denial_burn(
        store, domain, now=now, window_s=policy.slow_window_s,
        slo=policy.denial_slo,
    )
    if fast >= policy.burn_critical and slow >= policy.burn_critical:
        burn_status = HealthStatus.CRITICAL
    elif slow >= policy.burn_degraded or fast >= policy.burn_critical:
        burn_status = HealthStatus.DEGRADED
    else:
        burn_status = HealthStatus.GREEN
    signals.append(HealthSignal(
        "denial_burn", max(fast, slow), burn_status,
        f"denial burn fast={fast:.2f} slow={slow:.2f} "
        f"(target ratio {policy.denial_slo})",
    ))

    # Verification-work backlog (recorded by the survivability probe).
    backlog = store.last_value(
        "work_queue_backlog_s", {"domain": domain}, default=0.0
    )
    if backlog >= policy.backlog_critical_s:
        backlog_status = HealthStatus.CRITICAL
    elif backlog >= policy.backlog_degraded_s:
        backlog_status = HealthStatus.DEGRADED
    else:
        backlog_status = HealthStatus.GREEN
    signals.append(HealthSignal(
        "backlog", backlog, backlog_status,
        f"work backlog {backlog:.2f}s "
        f"(critical at {policy.backlog_critical_s:.2f}s)",
    ))

    # Sustained saturation.
    utilization = store.last_value(
        "domain_utilization", {"domain": domain}, default=0.0
    )
    util_status = (
        HealthStatus.DEGRADED
        if utilization >= policy.utilization_degraded
        else HealthStatus.GREEN
    )
    signals.append(HealthSignal(
        "utilization", utilization, util_status,
        f"utilization {utilization:.0%}",
    ))

    # Breaker state + flap detection.
    flaps, worst_state = breaker_flaps(
        store, domain, now=now, window_s=policy.flap_window_s
    )
    if worst_state >= 2.0:
        breaker_status = HealthStatus.CRITICAL
        breaker_detail = "breaker OPEN on a domain link"
    elif flaps > policy.flap_threshold:
        breaker_status = HealthStatus.DEGRADED
        breaker_detail = (
            f"breaker flapping: {flaps} transitions in "
            f"{policy.flap_window_s:.0f}s"
        )
    else:
        breaker_status = HealthStatus.GREEN
        breaker_detail = f"breakers quiet ({flaps} transitions)"
    signals.append(HealthSignal(
        "breakers", float(max(flaps, worst_state)), breaker_status,
        breaker_detail,
    ))

    status = max((s.status for s in signals), default=HealthStatus.GREEN)
    return HealthVerdict(domain, now, status, tuple(signals))


def evaluate_fleet(
    store: SeriesStore, domains: Iterable[str], *, now: float,
    policy: HealthPolicy | None = None,
) -> dict[str, HealthVerdict]:
    return {
        d: evaluate_health(store, d, now=now, policy=policy)
        for d in sorted(domains)
    }
