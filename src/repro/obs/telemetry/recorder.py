"""The flight recorder: registry + fabric state → frames → ``.tsrec``.

A :class:`FlightRecorder` is driven on the **simulated clock** — the
harness schedules ``recorder.sample(sim.now)`` periodically — and each
call scrapes two sources into one atomic frame of the underlying
:class:`~repro.obs.telemetry.series.SeriesStore`:

* the active :class:`~repro.obs.metrics.MetricsRegistry`, generically:
  every counter/gauge label set becomes one raw series, and every
  histogram contributes ``<name>:count`` / ``<name>:sum`` counters plus
  ``p50``/``p95``/``p99`` gauges;
* registered *probes* — callables ``probe(now) -> {name: value}`` or
  ``{(name, labels): value}`` — for state the registry does not carry
  (per-domain utilization from the admission schedules, live
  reservation counts, breaker states, work-queue backlog).

Frames are optionally streamed to an append-only ``.tsrec`` file (one
JSON object per line) by :class:`RecordingWriter`; :class:`Recording`
loads one back into a store so ``repro top --replay`` and the health /
alert engines can re-derive **identical** verdicts offline — the
Hypothesis replay property in ``tests/proptest`` pins that equivalence.

``.tsrec`` line grammar (``schema: repro-tsrec/1``)::

    {"schema": "repro-tsrec/1", "meta": {...}}      # header, line 1
    {"t": 12.0, "f": {"denials_total{domain=B}": 4.0}, "k": {...}}
    {"t": 12.4, "e": {"kind": "deny", ...}}          # obs event
    {"t": 13.0, "a": {"name": "...", "state": "firing", ...}}
    {"m": {"attack_onset_s": 3.25}}                  # late metadata

``k`` maps a series key to ``counter``/``gauge`` the first time the key
appears; omitted keys default to ``gauge``.  Appending never rewrites
earlier lines, so a crashed run still leaves a loadable prefix.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Iterable, Mapping, TextIO

from repro.errors import ObservabilityError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.telemetry.series import SeriesKey, SeriesStore

__all__ = [
    "TSREC_SCHEMA",
    "Probe",
    "FlightRecorder",
    "RecordingWriter",
    "Recording",
    "testbed_probes",
]

TSREC_SCHEMA = "repro-tsrec/1"

#: Histogram quantiles sampled into ``<name>:p<q>`` gauge series.
HISTOGRAM_QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))

#: A probe returns one partial frame.  Keys may be bare metric names or
#: ``(name, labels-mapping)`` pairs.
Probe = Callable[[float], Mapping[Any, float]]

#: Breaker states encoded as gauge values (render as a step function).
BREAKER_STATE_VALUES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


def _coerce_key(raw: Any) -> SeriesKey:
    if isinstance(raw, SeriesKey):
        return raw
    if isinstance(raw, str):
        return SeriesKey.make(raw)
    # ("name", labels) pairs; labels may be a tuple of (k, v) pairs,
    # since the probe's frame mapping needs hashable keys.
    name, labels = raw
    if labels is not None and not isinstance(labels, Mapping):
        labels = dict(labels)
    return SeriesKey.make(name, labels)


class FlightRecorder:
    """Samples registry + probes into a bounded store, streaming to an
    optional :class:`RecordingWriter`.

    All timestamps come from the caller (the simulated clock); the
    recorder itself never reads a clock — REP113 enforces that.
    """

    def __init__(
        self,
        store: SeriesStore | None = None,
        *,
        writer: "RecordingWriter | None" = None,
        capacity: int | None = None,
    ):
        if store is None:
            store = SeriesStore(**({"capacity": capacity} if capacity else {}))
        self.store = store
        self.writer = writer
        self._probes: list[Probe] = []
        self._known_kinds: dict[SeriesKey, str] = {}
        self.frames = 0

    def add_probe(self, probe: Probe) -> None:
        self._probes.append(probe)

    # -- sampling ----------------------------------------------------------------

    def _scrape_registry(
        self, registry: obs_metrics.MetricsRegistry,
        frame: dict[SeriesKey, float], kinds: dict[SeriesKey, str],
    ) -> None:
        for instrument in registry.collect():
            if isinstance(instrument, obs_metrics.Counter):
                for label_key, value in instrument.series().items():
                    key = SeriesKey(instrument.name, label_key)
                    frame[key] = value
                    kinds[key] = "counter"
            elif isinstance(instrument, obs_metrics.Gauge):
                for label_key, value in instrument.series().items():
                    key = SeriesKey(instrument.name, label_key)
                    frame[key] = value
                    kinds[key] = "gauge"
            elif isinstance(instrument, obs_metrics.Histogram):
                for label_key in instrument.series():
                    labels = dict(label_key)
                    base = instrument.name
                    count_key = SeriesKey(f"{base}:count", label_key)
                    frame[count_key] = float(instrument.count(**labels))
                    kinds[count_key] = "counter"
                    sum_key = SeriesKey(f"{base}:sum", label_key)
                    frame[sum_key] = float(instrument.sum(**labels))
                    kinds[sum_key] = "counter"
                    for q, suffix in HISTOGRAM_QUANTILES:
                        q_key = SeriesKey(f"{base}:{suffix}", label_key)
                        frame[q_key] = float(instrument.quantile(q, **labels))
                        kinds[q_key] = "gauge"

    def sample(
        self, now: float,
        registry: obs_metrics.MetricsRegistry | None = None,
    ) -> dict[SeriesKey, float]:
        """Take one frame at simulated time *now* and return it."""
        frame: dict[SeriesKey, float] = {}
        kinds: dict[SeriesKey, str] = {}
        registry = registry or obs_metrics.get_registry()
        if registry is not None:
            self._scrape_registry(registry, frame, kinds)
        for probe in self._probes:
            for raw, value in probe(now).items():
                key = _coerce_key(raw)
                frame[key] = float(value)
                kinds.setdefault(key, "gauge")
        self.store.record_frame(now, frame, kinds)
        if self.writer is not None:
            fresh = {
                k: v for k, v in kinds.items()
                if self._known_kinds.get(k) != v
            }
            self._known_kinds.update(fresh)
            self.writer.write_frame(now, frame, fresh)
        self.frames += 1
        return frame

    # -- pass-through event/alert/meta capture -------------------------------------

    def record_event(self, event: "obs_events.Event") -> None:
        if self.writer is not None:
            self.writer.write_event(event)

    def record_alert(self, at_time: float, payload: Mapping[str, Any]) -> None:
        if self.writer is not None:
            self.writer.write_alert(at_time, payload)

    def record_meta(self, **meta: Any) -> None:
        if self.writer is not None:
            self.writer.write_meta(meta)


# ---------------------------------------------------------------------------
# On-disk format
# ---------------------------------------------------------------------------


class RecordingWriter:
    """Append-only ``.tsrec`` stream.  Not internally locked — the
    recorder samples on the (single-threaded) simulator loop."""

    def __init__(self, stream: TextIO, *, meta: Mapping[str, Any] | None = None):
        self._stream = stream
        self._closed = False
        self._write({"schema": TSREC_SCHEMA, "meta": dict(meta or {})})

    @classmethod
    def open(cls, path: str | os.PathLike[str], *,
             meta: Mapping[str, Any] | None = None) -> "RecordingWriter":
        writer = cls(open(path, "w", encoding="utf-8"), meta=meta)
        writer._owns_stream = True
        return writer

    _owns_stream = False

    def _write(self, obj: Mapping[str, Any]) -> None:
        if self._closed:
            raise ObservabilityError("recording writer already closed")
        self._stream.write(json.dumps(obj, sort_keys=True) + "\n")

    def write_frame(
        self, t: float, frame: Mapping[SeriesKey, float],
        fresh_kinds: Mapping[SeriesKey, str],
    ) -> None:
        line: dict[str, Any] = {
            "t": t,
            "f": {k.render(): v for k, v in sorted(frame.items())},
        }
        if fresh_kinds:
            line["k"] = {
                k.render(): kind for k, kind in sorted(fresh_kinds.items())
            }
        self._write(line)

    def write_event(self, event: "obs_events.Event") -> None:
        self._write({"t": event.at_time, "e": event.to_dict()})

    def write_alert(self, t: float, payload: Mapping[str, Any]) -> None:
        self._write({"t": t, "a": dict(payload)})

    def write_meta(self, meta: Mapping[str, Any]) -> None:
        self._write({"m": dict(meta)})

    def close(self) -> None:
        if not self._closed:
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()
            self._closed = True

    def __enter__(self) -> "RecordingWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Recording:
    """A loaded ``.tsrec``: frames, events, alerts, and metadata.

    ``store`` holds every series exactly as recorded; :meth:`replay`
    re-plays the frames one at a time into a *fresh* store so callers
    can step the health model / alert engine with only as much history
    as the live run had at each instant.
    """

    def __init__(self, *, meta: Mapping[str, Any] | None = None,
                 capacity: int | None = None):
        self.meta: dict[str, Any] = dict(meta or {})
        self.store = SeriesStore(**({"capacity": capacity} if capacity else {}))
        #: ``(t, frame, kinds)`` in file order.
        self.frames: list[tuple[float, dict[SeriesKey, float],
                                dict[SeriesKey, str]]] = []
        #: Raw event dicts with their timestamps.
        self.events: list[dict[str, Any]] = []
        #: Alert-transition dicts with their timestamps.
        self.alerts: list[dict[str, Any]] = []

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "Recording":
        with open(path, "r", encoding="utf-8") as stream:
            return cls.parse(stream)

    @classmethod
    def parse(cls, lines: Iterable[str]) -> "Recording":
        recording: Recording | None = None
        kinds_seen: dict[SeriesKey, str] = {}
        for lineno, raw in enumerate(lines, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"tsrec line {lineno}: invalid JSON ({exc})"
                ) from exc
            if recording is None:
                if obj.get("schema") != TSREC_SCHEMA:
                    raise ObservabilityError(
                        f"tsrec line 1: expected schema {TSREC_SCHEMA!r}, "
                        f"got {obj.get('schema')!r}"
                    )
                recording = cls(meta=obj.get("meta"))
                continue
            if "f" in obj:
                t = float(obj["t"])
                frame = {
                    SeriesKey.parse(k): float(v)
                    for k, v in obj["f"].items()
                }
                fresh = {
                    SeriesKey.parse(k): str(kind)
                    for k, kind in obj.get("k", {}).items()
                }
                kinds_seen.update(fresh)
                kinds = {
                    k: kinds_seen.get(k, "gauge") for k in frame
                }
                recording.frames.append((t, frame, kinds))
                recording.store.record_frame(t, frame, kinds)
            elif "e" in obj:
                event = dict(obj["e"])
                event.setdefault("at_time", obj.get("t"))
                recording.events.append(event)
            elif "a" in obj:
                alert = dict(obj["a"])
                alert.setdefault("at_time", obj.get("t"))
                recording.alerts.append(alert)
            elif "m" in obj:
                recording.meta.update(obj["m"])
            else:
                raise ObservabilityError(
                    f"tsrec line {lineno}: unrecognised record {obj!r}"
                )
        if recording is None:
            raise ObservabilityError("tsrec file is empty (no header line)")
        return recording

    # -- derived views -----------------------------------------------------------

    def replay(self):
        """Yield ``(t, store_so_far)`` after each frame, on a fresh
        store — the offline twin of the live sampling loop."""
        store = SeriesStore(capacity=self.store.capacity)
        for t, frame, kinds in self.frames:
            store.record_frame(t, frame, kinds)
            yield t, store

    @property
    def start(self) -> float:
        return self.frames[0][0] if self.frames else 0.0

    @property
    def end(self) -> float:
        return self.frames[-1][0] if self.frames else 0.0

    def domains(self) -> tuple[str, ...]:
        """Domains mentioned by any recorded series label."""
        found = set()
        for key in self.store.keys():
            domain = key.label("domain")
            if domain:
                found.add(domain)
        return tuple(sorted(found))


# ---------------------------------------------------------------------------
# Fabric probes
# ---------------------------------------------------------------------------


def testbed_probes(testbed) -> list[Probe]:
    """Probes for the state the registry does not carry: per-domain
    resource utilization (admission schedules at *now*), live
    reservation-table sizes, and per-link breaker states."""

    def utilization(now: float) -> dict:
        out = {}
        for domain, broker in sorted(testbed.brokers.items()):
            total = 0.0
            count = 0
            for name in broker.admission.resources():
                schedule = broker.admission.schedule(name)
                total += schedule.utilization(now)
                count += 1
            key = SeriesKey.make("domain_utilization", {"domain": domain})
            out[key] = total / count if count else 0.0
        return out

    def reservations(now: float) -> dict:
        return {
            SeriesKey.make("reservation_table_size", {"domain": domain}):
                float(len(broker.reservations))
            for domain, broker in sorted(testbed.brokers.items())
        }

    def breakers(now: float) -> dict:
        snapshot = testbed.hop_by_hop.breaker_snapshot()
        return {
            SeriesKey.make("breaker_state", {"link": link}):
                BREAKER_STATE_VALUES.get(state, 2.0)
            for link, state in sorted(snapshot.items())
        }

    return [utilization, reservations, breakers]
