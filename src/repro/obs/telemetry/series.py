"""Bounded ring-buffer time series: the flight recorder's storage layer.

One :class:`TimeSeries` holds the sampled history of a single metric
series (one name + one label set) as ``(time, value)`` points in a
``deque(maxlen=capacity)`` — the ring-buffer bound that keeps a
long-running recorder's memory constant no matter how many frames it
takes.  A :class:`SeriesStore` owns many of them behind one lock and is
the substrate the health model and the alert engine evaluate over.

Counters are stored **raw** (the cumulative totals the registry
reports); the *derivation* into rates is delta-aware and happens at
read time (:meth:`SeriesStore.rate`), summing only non-negative deltas
so a counter reset (a fresh testbed mid-campaign) reads as "no traffic"
rather than a large negative rate.  Storing raw samples is what makes
recordings replayable bit-for-bit: everything derived — rates, burn
rates, health verdicts, alert transitions — is a pure function of the
recorded frames.

Everything here is driven by caller-supplied modelled time; lint rule
REP113 bans wall-clock and raw monotonic reads in this package.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import ObservabilityError

__all__ = [
    "SeriesKey",
    "TimeSeries",
    "SeriesStore",
    "ewma",
    "ewm_stats",
]

#: Default per-series ring-buffer capacity (frames retained).
DEFAULT_CAPACITY = 720


@dataclass(frozen=True, order=True)
class SeriesKey:
    """One series' identity: metric name + sorted label items."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()

    @staticmethod
    def make(name: str, labels: Mapping[str, object] | None = None) -> "SeriesKey":
        items = tuple(
            sorted((k, str(v)) for k, v in (labels or {}).items())
        )
        return SeriesKey(name, items)

    def label(self, key: str, default: str = "") -> str:
        for k, v in self.labels:
            if k == key:
                return v
        return default

    def matches(self, name: str, where: Mapping[str, str] | None = None) -> bool:
        if self.name != name:
            return False
        if where:
            mine = dict(self.labels)
            return all(mine.get(k) == v for k, v in where.items())
        return True

    def render(self) -> str:
        if not self.labels:
            return self.name
        body = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{body}}}"

    @staticmethod
    def parse(text: str) -> "SeriesKey":
        """Inverse of :meth:`render` (the ``.tsrec`` on-disk key form)."""
        if "{" not in text:
            return SeriesKey(text)
        name, _, rest = text.partition("{")
        body = rest.rstrip("}")
        labels = []
        if body:
            for item in body.split(","):
                k, _, v = item.partition("=")
                labels.append((k, v))
        return SeriesKey(name, tuple(sorted(labels)))


class TimeSeries:
    """One bounded series of ``(time, value)`` samples.

    Not internally locked — the owning :class:`SeriesStore` serialises
    access.  Appends must not move time backwards (the simulated clock
    never does; a recording that did would be corrupt).
    """

    __slots__ = ("key", "kind", "_points")

    def __init__(self, key: SeriesKey, kind: str = "gauge",
                 capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ObservabilityError(
                f"series {key.render()!r}: capacity must be >= 1"
            )
        self.key = key
        #: ``"counter"`` (cumulative, rate-derivable) or ``"gauge"``.
        self.kind = kind
        self._points: deque[tuple[float, float]] = deque(maxlen=capacity)

    def append(self, t: float, value: float) -> None:
        if self._points and t < self._points[-1][0]:
            raise ObservabilityError(
                f"series {self.key.render()!r}: time went backwards "
                f"({t} < {self._points[-1][0]})"
            )
        self._points.append((t, float(value)))

    def points(self) -> tuple[tuple[float, float], ...]:
        return tuple(self._points)

    def last(self) -> tuple[float, float] | None:
        return self._points[-1] if self._points else None

    def window(self, start: float, end: float) -> tuple[tuple[float, float], ...]:
        """Points with ``start <= t <= end``."""
        return tuple(p for p in self._points if start <= p[0] <= end)

    def __len__(self) -> int:
        return len(self._points)


class SeriesStore:
    """A keyed collection of bounded time series behind one lock.

    The single lock mirrors :class:`~repro.obs.metrics.MetricsRegistry`:
    operations are tiny deque appends, so one lock is cheaper than
    per-series locks, and a whole *frame* (many series sampled at the
    same instant) can be recorded atomically with :meth:`record_frame`
    — concurrent readers never see half a frame (the "torn read" the
    sampler stress test hunts for).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._lock = threading.RLock()
        self._series: dict[SeriesKey, TimeSeries] = {}

    # -- writing -----------------------------------------------------------------

    def _series_for(self, key: SeriesKey, kind: str) -> TimeSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TimeSeries(
                key, kind, capacity=self.capacity
            )
        return series

    def record(
        self, name: str, t: float, value: float, *,
        kind: str = "gauge", labels: Mapping[str, object] | None = None,
    ) -> None:
        key = SeriesKey.make(name, labels)
        with self._lock:
            self._series_for(key, kind).append(t, value)

    def record_frame(
        self,
        t: float,
        samples: Mapping[SeriesKey, float],
        kinds: Mapping[SeriesKey, str] | None = None,
    ) -> None:
        """Append one whole frame atomically (all series at time *t*)."""
        kinds = kinds or {}
        with self._lock:
            for key in sorted(samples):
                self._series_for(
                    key, kinds.get(key, "gauge")
                ).append(t, samples[key])

    # -- reading -----------------------------------------------------------------

    def keys(self) -> tuple[SeriesKey, ...]:
        with self._lock:
            return tuple(sorted(self._series))

    def get(self, key: SeriesKey) -> TimeSeries | None:
        with self._lock:
            return self._series.get(key)

    def series(self, name: str, labels: Mapping[str, object] | None = None
               ) -> TimeSeries | None:
        return self.get(SeriesKey.make(name, labels))

    def select(
        self, name: str, where: Mapping[str, str] | None = None
    ) -> tuple[TimeSeries, ...]:
        """Every series with metric *name* whose labels satisfy *where*."""
        with self._lock:
            return tuple(
                s for k, s in sorted(self._series.items())
                if k.matches(name, where)
            )

    def last_points(
        self, name: str | None = None,
        where: Mapping[str, str] | None = None,
    ) -> dict[SeriesKey, tuple[float, float]]:
        """Latest ``(t, value)`` per matching series, read atomically
        under the store lock.  This is the consistent read the sampler
        stress test relies on: two separate ``.last()`` calls could
        straddle a writer's in-progress :meth:`record_frame` and see
        half a frame, which this cannot."""
        with self._lock:
            out: dict[SeriesKey, tuple[float, float]] = {}
            for key, series in sorted(self._series.items()):
                if name is not None and not key.matches(name, where):
                    continue
                last = series.last()
                if last is not None:
                    out[key] = last
            return out

    def last_value(
        self, name: str, where: Mapping[str, str] | None = None,
        default: float = 0.0,
    ) -> float:
        """Latest sample across matching series (summed when several
        label sets match — the scrape-level aggregation)."""
        matched = self.select(name, where)
        values = [s.last()[1] for s in matched if s.last() is not None]
        return sum(values) if values else default

    def points(
        self, name: str, where: Mapping[str, str] | None = None
    ) -> tuple[tuple[float, float], ...]:
        """Time-ordered union of points across matching series."""
        out: list[tuple[float, float]] = []
        for s in self.select(name, where):
            out.extend(s.points())
        return tuple(sorted(out))

    # -- delta-aware derivations --------------------------------------------------

    @staticmethod
    def _windowed_delta(
        points: Iterable[tuple[float, float]], start: float, end: float
    ) -> tuple[float, float]:
        """``(positive_delta, covered_seconds)`` over ``[start, end]``.

        Sums only non-negative inter-sample deltas, so a counter reset
        (value dropping to zero when a fresh testbed replaces the last)
        contributes nothing instead of a negative rate.
        """
        inside = [(t, v) for t, v in points if start <= t <= end]
        if len(inside) < 2:
            return 0.0, 0.0
        delta = 0.0
        for (_, prev), (_, cur) in zip(inside, inside[1:]):
            step = cur - prev
            if step > 0:
                delta += step
        return delta, inside[-1][0] - inside[0][0]

    def delta(
        self, name: str, *, now: float, window_s: float,
        where: Mapping[str, str] | None = None,
    ) -> float:
        """Positive counter growth over the trailing window, summed over
        matching series (each series reset-corrected independently)."""
        total = 0.0
        for s in self.select(name, where):
            d, _ = self._windowed_delta(s.points(), now - window_s, now)
            total += d
        return total

    def rate(
        self, name: str, *, now: float, window_s: float,
        where: Mapping[str, str] | None = None,
    ) -> float:
        """Per-second rate of a counter over the trailing window."""
        delta = 0.0
        covered = 0.0
        for s in self.select(name, where):
            d, c = self._windowed_delta(s.points(), now - window_s, now)
            delta += d
            covered = max(covered, c)
        return delta / covered if covered > 0 else 0.0

    def ratio(
        self, numerator: str, denominators: Iterable[str], *,
        now: float, window_s: float, where: Mapping[str, str] | None = None,
    ) -> float:
        """Windowed ``Δnum / Σ Δden`` — the building block of burn
        rates (e.g. denials over all admission decisions).  An empty
        denominator window yields 0.0 (no decisions = no burn)."""
        num = self.delta(numerator, now=now, window_s=window_s, where=where)
        den = sum(
            self.delta(d, now=now, window_s=window_s, where=where)
            for d in denominators
        )
        return num / den if den > 0 else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def __iter__(self) -> Iterator[TimeSeries]:
        with self._lock:
            items = sorted(self._series.items())
        return iter(tuple(s for _, s in items))


# ---------------------------------------------------------------------------
# Streaming statistics (the anomaly rules' arithmetic)
# ---------------------------------------------------------------------------


def ewma(values: Iterable[float], alpha: float) -> float:
    """Exponentially weighted moving average (newest sample weighted
    ``alpha``).  Empty input averages to 0.0."""
    if not 0.0 < alpha <= 1.0:
        raise ObservabilityError(f"ewma alpha {alpha} outside (0, 1]")
    mean = 0.0
    seeded = False
    for v in values:
        if not seeded:
            mean, seeded = float(v), True
        else:
            mean = alpha * float(v) + (1.0 - alpha) * mean
    return mean


def ewm_stats(values: Iterable[float], alpha: float) -> tuple[float, float, int]:
    """EWMA mean and standard deviation (West's incremental form) plus
    the sample count — what the z-score anomaly rule runs on."""
    if not 0.0 < alpha <= 1.0:
        raise ObservabilityError(f"ewma alpha {alpha} outside (0, 1]")
    mean = 0.0
    variance = 0.0
    count = 0
    for v in values:
        count += 1
        if count == 1:
            mean = float(v)
            continue
        diff = float(v) - mean
        incr = alpha * diff
        mean += incr
        variance = (1.0 - alpha) * (variance + diff * incr)
    return mean, math.sqrt(variance), count
