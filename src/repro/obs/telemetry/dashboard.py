"""Rendering for ``repro top`` and ``repro timeline``.

Pure string builders over the telemetry substrate: given a
:class:`~repro.obs.telemetry.series.SeriesStore` (live or loaded from a
``.tsrec`` recording) plus the health and alert layers, :func:`render_top`
draws the fleet dashboard — one row per broker with its verdict,
utilization sparkline, admission/denial rates, backlog, cache hit
ratio, defense rejections — and the firing-alert table.

:func:`merge_timeline` is the incident-forensics view: obs events,
alert transitions, audit :class:`DecisionRecord`\\ s, and trace spans
are normalised into one time-sorted stream, filterable by correlation
id (an incident's ``alert-…`` id or a request's ``req-…`` id) or a
time window — the "what happened around t=40s" question answered in
one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.telemetry.alerts import AlertState, AlertTransition
from repro.obs.telemetry.health import (
    HealthPolicy,
    HealthStatus,
    HealthVerdict,
    evaluate_fleet,
)
from repro.obs.telemetry.series import SeriesStore

__all__ = [
    "sparkline",
    "render_top",
    "TimelineEntry",
    "merge_timeline",
    "render_timeline",
]

_SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"

_STATUS_BADGES = {
    HealthStatus.GREEN: "green   ",
    HealthStatus.DEGRADED: "DEGRADED",
    HealthStatus.CRITICAL: "CRITICAL",
}


def sparkline(values: Sequence[float], *, width: int = 16,
              lo: float | None = None, hi: float | None = None) -> str:
    """A unicode block-height sketch of the series' recent shape."""
    if not values:
        return " " * width
    tail = list(values)[-width:]
    lo = min(tail) if lo is None else lo
    hi = max(tail) if hi is None else hi
    span = hi - lo
    out = []
    for v in tail:
        frac = 0.0 if span <= 0 else (v - lo) / span
        frac = min(max(frac, 0.0), 1.0)
        out.append(_SPARK_BLOCKS[round(frac * (len(_SPARK_BLOCKS) - 1))])
    return "".join(out).rjust(width)


# ---------------------------------------------------------------------------
# repro top
# ---------------------------------------------------------------------------


def _domains_of(store: SeriesStore) -> tuple[str, ...]:
    found = set()
    for key in store.keys():
        domain = key.label("domain")
        if domain:
            found.add(domain)
    return tuple(sorted(found))


def _cache_hit_ratio(store: SeriesStore, *, now: float, window_s: float) -> float:
    hits = store.delta(
        "verification_cache_events_total", now=now, window_s=window_s,
        where={"result": "hit"},
    )
    misses = store.delta(
        "verification_cache_events_total", now=now, window_s=window_s,
        where={"result": "miss"},
    )
    total = hits + misses
    return hits / total if total > 0 else 0.0


def render_top(
    store: SeriesStore,
    *,
    now: float,
    domains: Iterable[str] | None = None,
    policy: HealthPolicy | None = None,
    alerts: Sequence[AlertTransition] = (),
    verdicts: Mapping[str, HealthVerdict] | None = None,
    window_s: float = 30.0,
    title: str = "repro top",
) -> str:
    """The fleet dashboard at instant *now*, as one printable block."""
    domains = tuple(domains) if domains else _domains_of(store)
    if verdicts is None:
        verdicts = evaluate_fleet(store, domains, now=now, policy=policy)

    lines: list[str] = []
    lines.append(f"{title} — t={now:.1f}s  brokers={len(domains)}")
    lines.append("")
    header = (
        f"{'broker':<8} {'health':<8} {'util':>5} {'utilization':>16} "
        f"{'adm/s':>6} {'den/s':>6} {'pend':>5} {'backlog':>8} "
        f"{'rejects':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for domain in domains:
        verdict = verdicts.get(domain)
        status = verdict.status if verdict else HealthStatus.GREEN
        util_series = store.series("domain_utilization", {"domain": domain})
        util_points = [v for _, v in util_series.points()] if util_series else []
        util = util_points[-1] if util_points else 0.0
        admit_rate = store.rate(
            "admissions_total", now=now, window_s=window_s,
            where={"domain": domain},
        )
        deny_rate = store.rate(
            "admissions_total", now=now, window_s=window_s,
            where={"domain": domain, "granted": "false"},
        )
        pending = store.last_value(
            "reservation_table_size", {"domain": domain}
        )
        backlog = store.last_value(
            "work_queue_backlog_s", {"domain": domain}
        )
        rejects = store.delta(
            "defense_rejections_total", now=now, window_s=window_s,
            where={"domain": domain},
        )
        lines.append(
            f"{domain:<8} {_STATUS_BADGES[status]:<8} {util:>4.0%} "
            f"{sparkline(util_points, lo=0.0, hi=1.0):>16} "
            f"{admit_rate:>6.2f} {deny_rate:>6.2f} {pending:>5.0f} "
            f"{backlog:>7.2f}s {rejects:>7.0f}"
        )

    hit_ratio = _cache_hit_ratio(store, now=now, window_s=window_s)
    pending_events = store.last_value("sim_pending_events")
    lines.append("")
    lines.append(
        f"verification-cache hit ratio {hit_ratio:.0%}   "
        f"sim pending events {pending_events:.0f}"
    )

    # Per-domain non-green detail.
    for domain in domains:
        verdict = verdicts.get(domain)
        if verdict and verdict.status > HealthStatus.GREEN:
            for reason in verdict.reasons():
                lines.append(f"  {domain}: {reason}")

    # Alerts table (firing first, then most recent transitions).  An
    # incident is *currently* firing only if its latest transition is
    # the FIRING edge — a later RESOLVED edge retires it.
    latest: dict[tuple[str, str], Any] = {}
    for a in alerts:
        latest[(a.rule, a.group)] = a
    firing = [a for a in latest.values()
              if a.to_state == AlertState.FIRING]
    resolved = [a for a in alerts if a.to_state == AlertState.RESOLVED]
    lines.append("")
    if firing or resolved:
        lines.append(f"alerts: {len(firing)} firing, {len(resolved)} resolved")
        for a in firing:
            lines.append(
                f"  [{a.severity.value.upper():>8}] {a.rule}"
                f"{'/' + a.group if a.group else ''} FIRING since "
                f"t={a.at_time:.1f}s (value {a.value:.2f})  "
                f"{a.correlation_id}"
            )
        for a in resolved[-5:]:
            lines.append(
                f"  [resolved] {a.rule}"
                f"{'/' + a.group if a.group else ''} at t={a.at_time:.1f}s  "
                f"{a.correlation_id}"
            )
    else:
        lines.append("alerts: none")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# repro timeline
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class TimelineEntry:
    """One normalised line of the merged incident timeline."""

    at_time: float
    source: str  # "event" | "alert" | "audit" | "span"
    text: str = field(compare=False)
    correlation_id: str = field(default="", compare=False)

    def render(self) -> str:
        tag = f"[{self.source:<5}]"
        corr = f"  ({self.correlation_id})" if self.correlation_id else ""
        return f"t={self.at_time:9.3f}s {tag} {self.text}{corr}"


def _event_entry(event: Mapping[str, Any]) -> TimelineEntry:
    kind = str(event.get("kind", "?"))
    domain = str(event.get("domain", ""))
    reason = str(event.get("reason", ""))
    code = str(event.get("reason_code", ""))
    bits = [kind.upper()]
    if domain:
        bits.append(f"@{domain}")
    if code:
        bits.append(f"[{code}]")
    if reason:
        bits.append(reason)
    return TimelineEntry(
        at_time=float(event.get("at_time", 0.0)),
        source="event",
        text=" ".join(bits),
        correlation_id=str(event.get("correlation_id", "")),
    )


def _alert_entry(alert: Mapping[str, Any]) -> TimelineEntry:
    rule = str(alert.get("rule", "?"))
    group = str(alert.get("group", ""))
    state = str(alert.get("state", "?"))
    severity = str(alert.get("severity", ""))
    value = alert.get("value", 0.0)
    name = f"{rule}/{group}" if group else rule
    return TimelineEntry(
        at_time=float(alert.get("at_time", 0.0)),
        source="alert",
        text=f"{name} -> {state.upper()} ({severity}, value {value})",
        correlation_id=str(alert.get("correlation_id", "")),
    )


def _audit_entry(record: Any) -> TimelineEntry:
    kind = getattr(record.kind, "value", record.kind)
    bits = [str(kind).upper()]
    if record.domain:
        bits.append(f"@{record.domain}")
    if record.handle:
        bits.append(str(record.handle))
    if record.reason_code:
        bits.append(f"[{record.reason_code}]")
    if record.reason:
        bits.append(record.reason)
    return TimelineEntry(
        at_time=float(record.at_time),
        source="audit",
        text=" ".join(bits),
        correlation_id=record.correlation_id,
    )


def _span_entries(span: Any) -> TimelineEntry:
    duration = (
        f" ({span.sim_latency_s * 1000:.1f} ms sim)"
        if span.sim_latency_s else ""
    )
    return TimelineEntry(
        at_time=float(span.attributes.get("sim_start_s", 0.0)),
        source="span",
        text=f"{span.name} [{span.status}]{duration}",
        correlation_id=span.trace_id,
    )


def merge_timeline(
    *,
    events: Iterable[Mapping[str, Any]] = (),
    alerts: Iterable[Mapping[str, Any]] = (),
    audit_records: Iterable[Any] = (),
    spans: Iterable[Any] = (),
    correlation: str | None = None,
    window: tuple[float, float] | None = None,
) -> list[TimelineEntry]:
    """Normalise and merge the four streams, then filter and sort."""
    entries: list[TimelineEntry] = []
    entries.extend(_event_entry(e) for e in events)
    entries.extend(_alert_entry(a) for a in alerts)
    entries.extend(_audit_entry(r) for r in audit_records)
    entries.extend(_span_entries(s) for s in spans)
    if correlation is not None:
        entries = [e for e in entries if e.correlation_id == correlation]
    if window is not None:
        start, end = window
        entries = [e for e in entries if start <= e.at_time <= end]
    entries.sort()
    return entries


def render_timeline(
    entries: Sequence[TimelineEntry], *, title: str = "timeline"
) -> str:
    lines = [f"{title}: {len(entries)} entries"]
    lines.extend(e.render() for e in entries)
    return "\n".join(lines)
