"""repro.obs.telemetry — the continuous-time telemetry plane (ISSUE 9).

Where the rest of :mod:`repro.obs` is point-in-time (registry
snapshots) or post-hoc (audit ledger, critical-path analysis), this
package watches the fabric *while it runs*:

* :mod:`~repro.obs.telemetry.series` — bounded ring-buffer time series
  with delta-aware (counter-reset-safe) rate derivation;
* :mod:`~repro.obs.telemetry.recorder` — the flight recorder: samples
  the metrics registry and fabric probes on the **simulated clock**
  into frames, optionally streamed to an append-only ``.tsrec`` file
  that replays bit-for-bit;
* :mod:`~repro.obs.telemetry.health` — green/degraded/critical broker
  verdicts from multi-window SLO burn rates, backlog, saturation, and
  breaker-flap detection;
* :mod:`~repro.obs.telemetry.alerts` — threshold / burn-rate / anomaly
  rules with a pending→firing→resolved lifecycle, each transition
  emitted as an obs event whose correlation id stitches the incident
  into audit DecisionChains;
* :mod:`~repro.obs.telemetry.dashboard` — the ``repro top`` fleet view
  and the ``repro timeline`` merged incident stream.

Determinism contract: nothing in this package reads a wall clock or a
raw timer (lint rule REP113); every function takes modelled time from
the caller, so a replayed recording reproduces identical health
verdicts and alert transitions — pinned by the Hypothesis property in
``tests/proptest/test_telemetry_props.py``.

See ``docs/TELEMETRY.md`` for the recording schema and the health /
burn-rate math.
"""

from __future__ import annotations

from repro.obs.telemetry.alerts import (
    AlertEngine,
    AlertRule,
    AlertSeverity,
    AlertState,
    AlertTransition,
    chaos_rules,
    default_rules,
)
from repro.obs.telemetry.dashboard import (
    TimelineEntry,
    merge_timeline,
    render_timeline,
    render_top,
    sparkline,
)
from repro.obs.telemetry.health import (
    HealthPolicy,
    HealthSignal,
    HealthStatus,
    HealthVerdict,
    evaluate_fleet,
    evaluate_health,
)
from repro.obs.telemetry.recorder import (
    BREAKER_STATE_VALUES,
    HISTOGRAM_QUANTILES,
    TSREC_SCHEMA,
    FlightRecorder,
    Recording,
    RecordingWriter,
    testbed_probes,
)
from repro.obs.telemetry.series import (
    SeriesKey,
    SeriesStore,
    TimeSeries,
    ewm_stats,
    ewma,
)

__all__ = [
    "SeriesKey",
    "TimeSeries",
    "SeriesStore",
    "ewma",
    "ewm_stats",
    "TSREC_SCHEMA",
    "BREAKER_STATE_VALUES",
    "HISTOGRAM_QUANTILES",
    "FlightRecorder",
    "RecordingWriter",
    "Recording",
    "testbed_probes",
    "HealthStatus",
    "HealthPolicy",
    "HealthSignal",
    "HealthVerdict",
    "evaluate_health",
    "evaluate_fleet",
    "AlertSeverity",
    "AlertState",
    "AlertRule",
    "AlertTransition",
    "AlertEngine",
    "default_rules",
    "chaos_rules",
    "sparkline",
    "render_top",
    "TimelineEntry",
    "merge_timeline",
    "render_timeline",
]
