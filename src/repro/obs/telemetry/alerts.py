"""Alert rules and the pending → firing → resolved lifecycle.

Three rule kinds, all pure functions of a
:class:`~repro.obs.telemetry.series.SeriesStore` at an instant:

* ``threshold`` — latest value of a series against a bound;
* ``burn_rate`` — multi-window denial-burn (the health model's
  arithmetic) against a burn bound, per domain;
* ``anomaly`` — EWMA z-score of a gauge's newest sample against its
  own recent history (West's incremental variance), for drifts with no
  natural fixed bound.

The :class:`AlertEngine` owns one state machine per ``(rule, group)``
pair.  A breach moves INACTIVE → PENDING and mints an incident
correlation id (``alert-<rule>-<n>``, engine-deterministic, no
randomness) so even a blip's events stitch; a breach that persists for
``for_s`` moves PENDING → FIRING; recovery moves
FIRING → RESOLVED → INACTIVE.  Every transition is returned to
the caller, appended to the ``.tsrec`` recording, and emitted as an
:class:`~repro.obs.events.EventKind.ALERT` obs event carrying the
incident's correlation id — which is exactly what lets ``repro
timeline`` stitch alerts into audit DecisionChains as one incident
timeline.

Like the rest of the package, nothing here reads a clock (REP113):
``step(store, now)`` is handed the simulated time, so a replayed
recording walks the same state machines through the same transitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ObservabilityError
from repro.obs import events as obs_events
from repro.obs.telemetry.health import denial_burn
from repro.obs.telemetry.series import SeriesStore, ewm_stats

__all__ = [
    "AlertSeverity",
    "AlertState",
    "AlertRule",
    "AlertTransition",
    "AlertEngine",
    "default_rules",
    "chaos_rules",
]


class AlertSeverity(str, enum.Enum):
    WARNING = "warning"
    CRITICAL = "critical"


class AlertState(str, enum.Enum):
    INACTIVE = "inactive"
    PENDING = "pending"
    FIRING = "firing"
    RESOLVED = "resolved"


_KINDS = ("threshold", "burn_rate", "anomaly")
_OPS = (">=", "<=")


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule.  ``group_by`` expands the rule over every
    value of that label found in the store (one state machine each);
    leave it empty for a single fleet-wide machine."""

    name: str
    kind: str
    metric: str = ""
    severity: AlertSeverity = AlertSeverity.WARNING
    #: Labels every matched series must carry (beyond the group label).
    where: tuple[tuple[str, str], ...] = ()
    group_by: str = ""
    #: Breach must persist this long before PENDING becomes FIRING.
    for_s: float = 0.0
    # threshold / anomaly parameters
    op: str = ">="
    threshold: float = 0.0
    # burn_rate parameters (denial-burn per domain)
    slo: float = 0.5
    fast_window_s: float = 10.0
    slow_window_s: float = 60.0
    #: The slow window confirms at ``threshold * slow_fraction`` — a
    #: ramping attack saturates the fast window long before the slow
    #: one catches up, so full-threshold confirmation would add most of
    #: a slow window to time-to-detect.
    slow_fraction: float = 1.0
    #: Generic burn selectors: windowed Δnumerator / Δdenominator over
    #: the SLO target.  Unset, the rule falls back to the per-domain
    #: admission denial burn (the health model's arithmetic).
    numerator: str = ""
    numerator_where: tuple[tuple[str, str], ...] = ()
    denominator: str = ""
    denominator_where: tuple[tuple[str, str], ...] = ()
    # anomaly parameters
    lookback_points: int = 60
    alpha: float = 0.3
    z_threshold: float = 4.0
    min_samples: int = 8

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ObservabilityError(
                f"alert rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {_KINDS})"
            )
        if self.op not in _OPS:
            raise ObservabilityError(
                f"alert rule {self.name!r}: unknown op {self.op!r}"
            )
        if self.kind in ("threshold", "anomaly") and not self.metric:
            raise ObservabilityError(
                f"alert rule {self.name!r}: {self.kind} rules need a metric"
            )
        if bool(self.numerator) != bool(self.denominator):
            raise ObservabilityError(
                f"alert rule {self.name!r}: numerator and denominator "
                "must be set together"
            )

    # -- evaluation --------------------------------------------------------------

    def _groups(self, store: SeriesStore) -> tuple[str, ...]:
        if not self.group_by:
            return ("",)
        found = set()
        name = self.metric or self.denominator or "admissions_total"
        for key in store.keys():
            if key.name != name:
                continue
            value = key.label(self.group_by)
            if value:
                found.add(value)
        return tuple(sorted(found))

    def _where_for(self, group: str) -> dict[str, str]:
        where = dict(self.where)
        if self.group_by and group:
            where[self.group_by] = group
        return where

    def _breaches(self, value: float) -> bool:
        return value >= self.threshold if self.op == ">=" else value <= self.threshold

    def evaluate(self, store: SeriesStore, now: float) -> dict[str, tuple[bool, float]]:
        """``{group: (breached, measured_value)}`` at *now*."""
        out: dict[str, tuple[bool, float]] = {}
        for group in self._groups(store):
            where = self._where_for(group)
            if self.kind == "threshold":
                value = store.last_value(self.metric, where)
                out[group] = (self._breaches(value), value)
            elif self.kind == "burn_rate":
                fast = self._burn(store, group, now, self.fast_window_s)
                slow = self._burn(store, group, now, self.slow_window_s)
                breached = (
                    fast >= self.threshold
                    and slow >= self.threshold * self.slow_fraction
                )
                out[group] = (breached, max(fast, slow))
            else:  # anomaly
                out[group] = self._evaluate_anomaly(store, where)
        return out

    def _burn(
        self, store: SeriesStore, group: str, now: float, window_s: float
    ) -> float:
        if not self.numerator:
            return denial_burn(
                store, group, now=now, window_s=window_s, slo=self.slo
            )
        group_where = (
            {self.group_by: group} if self.group_by and group else {}
        )
        num = store.delta(
            self.numerator, now=now, window_s=window_s,
            where={**dict(self.numerator_where), **group_where},
        )
        den = store.delta(
            self.denominator, now=now, window_s=window_s,
            where={**dict(self.denominator_where), **group_where},
        )
        if den <= 0:
            return 0.0
        ratio = num / den
        return ratio / self.slo if self.slo > 0 else 0.0

    def _evaluate_anomaly(
        self, store: SeriesStore, where: Mapping[str, str]
    ) -> tuple[bool, float]:
        series = store.select(self.metric, where)
        values: list[tuple[float, float]] = []
        for s in series:
            values.extend(s.points())
        values.sort()
        tail = [v for _, v in values[-self.lookback_points:]]
        if len(tail) < self.min_samples:
            return (False, 0.0)
        history, latest = tail[:-1], tail[-1]
        mean, std, _ = ewm_stats(history, self.alpha)
        # A degenerate flat history gets a unit-scale floor so the first
        # genuinely different sample still registers as a finite z.
        floor = max(std, 0.05 * max(abs(mean), 1.0))
        z = (latest - mean) / floor
        if self.op == "<=":
            z = -z
        return (z >= self.z_threshold, z)


@dataclass(frozen=True)
class AlertTransition:
    """One lifecycle edge, as written to the recording and emitted as
    an obs event."""

    rule: str
    group: str
    from_state: AlertState
    to_state: AlertState
    at_time: float
    value: float
    severity: AlertSeverity
    correlation_id: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "group": self.group,
            "from": self.from_state.value,
            "state": self.to_state.value,
            "at_time": self.at_time,
            "value": round(self.value, 6),
            "severity": self.severity.value,
            "correlation_id": self.correlation_id,
        }


@dataclass
class _MachineState:
    state: AlertState = AlertState.INACTIVE
    pending_since: float = 0.0
    correlation_id: str = ""
    value: float = 0.0


class AlertEngine:
    """Steps every rule's state machines against a store.

    Deterministic: incident ids are minted from a per-engine counter,
    transitions are produced in sorted ``(rule, group)`` order, and
    evaluation touches no clock — identical frames produce identical
    transitions, live or replayed.
    """

    def __init__(self, rules: tuple[AlertRule, ...] | list[AlertRule]):
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ObservabilityError("alert rule names must be unique")
        self.rules = tuple(rules)
        self._machines: dict[tuple[str, str], _MachineState] = {}
        self._incidents = 0
        self.transitions: list[AlertTransition] = []

    # -- state accessors ---------------------------------------------------------

    def _machine(self, rule: str, group: str) -> _MachineState:
        key = (rule, group)
        machine = self._machines.get(key)
        if machine is None:
            machine = self._machines[key] = _MachineState()
        return machine

    def active(self) -> tuple[AlertTransition, ...]:
        """The currently-firing alerts as their FIRING transitions."""
        firing = {
            (m.rule, m.group): m for m in self.transitions
            if m.to_state == AlertState.FIRING
        }
        out = []
        for (rule, group), machine in sorted(self._machines.items()):
            if machine.state == AlertState.FIRING:
                out.append(firing[(rule, group)])
        return tuple(out)

    def firing_count(self, severity: AlertSeverity | None = None) -> int:
        count = 0
        by_name = {r.name: r for r in self.rules}
        for (rule, _), machine in self._machines.items():
            if machine.state != AlertState.FIRING:
                continue
            if severity is None or by_name[rule].severity == severity:
                count += 1
        return count

    # -- the lifecycle -----------------------------------------------------------

    def step(
        self, store: SeriesStore, now: float, *,
        event_log: "obs_events.EventLog | None" = None,
        recorder=None,
    ) -> tuple[AlertTransition, ...]:
        """Evaluate every rule at *now*; return the transitions taken."""
        taken: list[AlertTransition] = []
        for rule in self.rules:
            for group, (breached, value) in sorted(
                rule.evaluate(store, now).items()
            ):
                machine = self._machine(rule.name, group)
                machine.value = value
                if breached:
                    if machine.state == AlertState.INACTIVE:
                        machine.pending_since = now
                        # The incident starts when the breach is first
                        # seen: minting here keeps every ALERT event —
                        # including PENDING — correlated.
                        self._incidents += 1
                        machine.correlation_id = (
                            f"alert-{rule.name}-{self._incidents:04d}"
                        )
                        taken.append(self._transition(
                            rule, group, machine,
                            AlertState.PENDING, now, value,
                        ))
                        if rule.for_s <= 0:
                            taken.append(self._fire(
                                rule, group, machine, now, value
                            ))
                    elif machine.state == AlertState.PENDING:
                        if now - machine.pending_since >= rule.for_s:
                            taken.append(self._fire(
                                rule, group, machine, now, value
                            ))
                    # FIRING stays FIRING.
                else:
                    if machine.state == AlertState.PENDING:
                        taken.append(self._transition(
                            rule, group, machine,
                            AlertState.INACTIVE, now, value,
                        ))
                        machine.correlation_id = ""
                    elif machine.state == AlertState.FIRING:
                        taken.append(self._transition(
                            rule, group, machine,
                            AlertState.RESOLVED, now, value,
                        ))
                        machine.state = AlertState.INACTIVE
                        machine.correlation_id = ""
        self.transitions.extend(taken)
        self._emit(taken, event_log=event_log, recorder=recorder)
        return tuple(taken)

    def _fire(
        self, rule: AlertRule, group: str, machine: _MachineState,
        now: float, value: float,
    ) -> AlertTransition:
        return self._transition(
            rule, group, machine, AlertState.FIRING, now, value
        )

    def _transition(
        self, rule: AlertRule, group: str, machine: _MachineState,
        to_state: AlertState, now: float, value: float,
    ) -> AlertTransition:
        transition = AlertTransition(
            rule=rule.name, group=group,
            from_state=machine.state, to_state=to_state,
            at_time=now, value=value, severity=rule.severity,
            correlation_id=machine.correlation_id,
        )
        machine.state = to_state
        return transition

    def _emit(
        self, taken: list[AlertTransition], *,
        event_log: "obs_events.EventLog | None", recorder,
    ) -> None:
        if not taken:
            return
        if event_log is None:  # an empty EventLog is falsy (__len__)
            event_log = obs_events.get_event_log()
        for t in taken:
            if event_log is not None:
                event_log.emit(
                    obs_events.EventKind.ALERT,
                    at_time=t.at_time,
                    domain=t.group,
                    correlation_id=t.correlation_id,
                    reason=(
                        f"{t.rule}: {t.from_state.value} -> "
                        f"{t.to_state.value} (value {t.value:.3f})"
                    ),
                    rule=t.rule,
                    state=t.to_state.value,
                    severity=t.severity.value,
                )
            if recorder is not None:
                recorder.record_alert(t.at_time, t.to_dict())

    # -- incident summary --------------------------------------------------------

    def first_firing(
        self, severity: AlertSeverity | None = None
    ) -> AlertTransition | None:
        by_name = {r.name: r for r in self.rules}
        for t in self.transitions:
            if t.to_state != AlertState.FIRING:
                continue
            if severity is None or by_name[t.rule].severity == severity:
                return t
        return None


# ---------------------------------------------------------------------------
# Stock rule sets
# ---------------------------------------------------------------------------


def default_rules() -> tuple[AlertRule, ...]:
    """The fleet profile used by ``repro top`` and the attack harness:
    tuned so an honest steady-state run stays silent while a flood's
    backlog growth or denial burn fires within seconds."""
    return (
        AlertRule(
            name="denial-burn", kind="burn_rate",
            severity=AlertSeverity.CRITICAL,
            group_by="domain", threshold=1.8, slo=0.5,
            fast_window_s=10.0, slow_window_s=60.0,
            slow_fraction=0.5, for_s=2.0,
        ),
        AlertRule(
            name="backlog-critical", kind="threshold",
            metric="work_queue_backlog_s",
            severity=AlertSeverity.CRITICAL,
            group_by="domain", threshold=2.5, for_s=2.0,
        ),
        AlertRule(
            name="backlog-warning", kind="threshold",
            metric="work_queue_backlog_s",
            severity=AlertSeverity.WARNING,
            group_by="domain", threshold=1.0, for_s=1.0,
        ),
        AlertRule(
            name="breaker-open", kind="threshold",
            metric="breaker_state",
            severity=AlertSeverity.CRITICAL,
            group_by="link", threshold=2.0, for_s=0.0,
        ),
        AlertRule(
            name="utilization-anomaly", kind="anomaly",
            metric="domain_utilization",
            severity=AlertSeverity.WARNING,
            group_by="domain", z_threshold=6.0, alpha=0.3,
            min_samples=10, for_s=2.0,
        ),
    )


def chaos_rules() -> tuple[AlertRule, ...]:
    """The chaos-campaign profile (one frame per trial, trial index as
    time).  Fault injection legitimately denies and trips breakers, so
    only *sustained fleet-wide* failure should page: the CI gate runs an
    honest campaign through these rules and requires zero CRITICAL."""
    return (
        # End-to-end denial burn over the whole campaign.  A healthy
        # single-fault matrix (recovery working) stays under ~0.4 denied
        # in any 10-trial window; sustained >= 0.75 fast and >= 0.6 slow
        # means recovery itself has broken.
        AlertRule(
            name="campaign-denial-burn", kind="burn_rate",
            severity=AlertSeverity.CRITICAL,
            numerator="reservations_total",
            numerator_where=(("result", "denied"),),
            denominator="reservations_total",
            threshold=1.5, slo=0.5, slow_fraction=0.8,
            fast_window_s=10.0, slow_window_s=30.0, for_s=2.0,
        ),
        AlertRule(
            name="campaign-unwind-failures", kind="anomaly",
            metric="unwind_failures_total",
            severity=AlertSeverity.WARNING,
            z_threshold=8.0, alpha=0.2, min_samples=10, for_s=0.0,
        ),
    )
