"""Stitch per-hop DecisionRecords into one end-to-end decision chain.

Every record carries the correlation id minted when the user agent
signed ``RAR_U`` (PR 4), so "explain this reservation" is a pure ledger
query: collect the correlation's records, order them by sequence
number, and split them into the admission chain (the hop-by-hop
admit/deny records, in travel order) and the later lifecycle
(claim / cancel / expire / unwind / fallback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.audit.ledger import DecisionLedger, DecisionRecord, RecordKind

__all__ = [
    "DecisionChain",
    "resolve_correlation",
    "stitch",
    "render_chain",
    "chain_to_dict",
]

#: Records that are part of the admission leg proper.
_HOP_KINDS = frozenset({RecordKind.ADMIT, RecordKind.DENY})

#: Post-admission lifecycle records.
_LIFECYCLE_KINDS = frozenset({
    RecordKind.CLAIM,
    RecordKind.CANCEL,
    RecordKind.EXPIRE,
    RecordKind.UNWIND_FAILED,
    RecordKind.FALLBACK,
})


@dataclass(frozen=True)
class DecisionChain:
    """Everything the ledger knows about one end-to-end request."""

    correlation_id: str
    #: Per-hop admit/deny records, in sequence (= travel) order.
    hops: tuple[DecisionRecord, ...] = ()
    #: Claim / cancel / expire / unwind / fallback records, in order.
    lifecycle: tuple[DecisionRecord, ...] = ()
    #: The terminal OUTCOME record the source domain wrote, if any.
    outcome: DecisionRecord | None = None

    @property
    def granted(self) -> bool:
        if self.outcome is not None:
            return self.outcome.granted
        return bool(self.hops) and all(h.granted for h in self.hops)

    @property
    def path(self) -> tuple[str, ...]:
        """The domains the admission leg touched, in travel order."""
        seen: list[str] = []
        for hop in self.hops:
            if hop.domain and hop.domain not in seen:
                seen.append(hop.domain)
        return tuple(seen)

    def complete_for(self, path: tuple[str, ...]) -> bool:
        """True when every domain on *path* has an admit record in
        travel order — the "complete per-hop provenance chain"
        invariant for granted reservations."""
        admitted = [h.domain for h in self.hops if h.kind is RecordKind.ADMIT]
        return list(path) == admitted[: len(path)] and len(admitted) >= len(path)


def resolve_correlation(ledger: DecisionLedger, target: str) -> str | None:
    """Map *target* — a correlation id or a reservation handle — to a
    correlation id present in the ledger."""
    for record in ledger:
        if record.correlation_id == target:
            return target
    for record in ledger:
        if record.handle == target and record.correlation_id:
            return record.correlation_id
    return None


def stitch(ledger: DecisionLedger, correlation_id: str) -> DecisionChain:
    """Assemble the :class:`DecisionChain` for one correlation id."""
    records = sorted(
        ledger.records(correlation_id=correlation_id), key=lambda r: r.seq
    )
    hops = tuple(r for r in records if r.kind in _HOP_KINDS)
    lifecycle = tuple(r for r in records if r.kind in _LIFECYCLE_KINDS)
    outcome = next(
        (r for r in records if r.kind is RecordKind.OUTCOME), None
    )
    return DecisionChain(
        correlation_id=correlation_id,
        hops=hops,
        lifecycle=lifecycle,
        outcome=outcome,
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _render_checks(record: DecisionRecord, lines: list[str]) -> None:
    for check in record.checks:
        verdict = check.verdict
        label = f"{check.kind}"
        if check.subject:
            label += f" {check.subject}"
        source = f" [{check.source}]" if check.source else ""
        detail = f" — {check.detail}" if check.detail else ""
        lines.append(f"      check: {label}: {verdict}{source}{detail}")


def _render_record(record: DecisionRecord, lines: list[str]) -> None:
    verdict = "GRANT" if record.granted else record.kind.value.upper()
    head = f"  [{record.seq:04d}] {record.domain or '-'}: {verdict}"
    if record.handle:
        head += f" {record.handle}"
    if record.reason:
        head += f" — {record.reason}"
    if record.reason_code:
        head += f" ({record.reason_code})"
    lines.append(head)
    if record.matched_rule:
        lines.append(f"      rule: {record.matched_rule}")
    if record.rules_fired and record.rules_fired != (record.matched_rule,):
        lines.append("      rules fired: " + " -> ".join(record.rules_fired))
    _render_checks(record, lines)
    extras = []
    if record.retries:
        extras.append(f"retries={record.retries}")
    if record.breaker_state:
        extras.append(f"breaker={record.breaker_state}")
    if record.deadline_remaining_s is not None:
        extras.append(f"deadline_remaining={record.deadline_remaining_s:.3f}s")
    if extras:
        lines.append("      recovery: " + " ".join(extras))


def render_chain(chain: DecisionChain) -> str:
    """Human-readable "explain this decision" output."""
    lines: list[str] = []
    verdict = "GRANTED" if chain.granted else "DENIED"
    path = " -> ".join(chain.path) or "(no hops recorded)"
    lines.append(f"decision chain {chain.correlation_id or '(uncorrelated)'}")
    lines.append(f"  verdict: {verdict}   path: {path}")
    if chain.hops:
        lines.append("  admission leg:")
        for hop in chain.hops:
            _render_record(hop, lines)
    if chain.outcome is not None:
        lines.append("  outcome:")
        _render_record(chain.outcome, lines)
    if chain.lifecycle:
        lines.append("  lifecycle:")
        for record in chain.lifecycle:
            _render_record(record, lines)
    return "\n".join(lines)


def chain_to_dict(chain: DecisionChain) -> dict[str, Any]:
    """JSON form of the chain (``repro audit explain --json``)."""
    return {
        "correlation_id": chain.correlation_id,
        "granted": chain.granted,
        "path": list(chain.path),
        "hops": [r.to_dict() for r in chain.hops],
        "outcome": None if chain.outcome is None else chain.outcome.to_dict(),
        "lifecycle": [r.to_dict() for r in chain.lifecycle],
    }
