"""Cross-check the decision ledger against the fabric's ground truth.

The ledger claims to be a faithful account of every decision; the
reconciler *proves* it (or produces a violation list) by checking four
families of invariants:

**Ledger-internal** (:func:`reconcile_ledger`):

* ``policy-evaluation`` — no admission without a matching policy
  evaluation: every ADMIT record names the rule that granted it.
* ``provenance-chain`` — every granted outcome has a complete per-hop
  admission chain, one ADMIT per path domain, in travel order; every
  denied outcome with a denying domain has that hop's DENY record.
* ``unwind-balance`` — in any denied run, every hop admission is
  balanced by a cancel, an expiry, or an explicit unwind-failure
  record (soft state reclaims the latter).
* ``cache-revocation`` — no cache-sourced verdict postdates the
  revocation of the certificate it vouches for (sequence order; the
  PR-5 caches invalidate synchronously, so a violation here means the
  revocation hook was bypassed).
* ``claim-provenance`` — nothing is claimed that was never admitted.

**Broker state** (:func:`reconcile_brokers`): the reservation tables
and capacity bookings of live brokers agree with the ledger — granted
state has an unbalanced ADMIT, denied state a DENY, expired state an
EXPIRE, and every capacity booking is tagged by a still-admitted
handle.

**Accounting** (:func:`reconcile_accounting`): every billing run's
path is fully covered by admissions of the billed signalling run.

Brokers and billing are duck-typed (the module imports nothing from
``repro.bb``/``repro.accounting``), so the reconciler also works on
ledgers imported from JSON long after the testbed is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.audit.ledger import DecisionLedger, DecisionRecord, RecordKind

__all__ = [
    "AuditViolation",
    "ReconciliationReport",
    "reconcile",
    "reconcile_ledger",
    "reconcile_brokers",
    "reconcile_accounting",
]

#: Record kinds that balance (tear down) an earlier admission.
_BALANCING = (RecordKind.CANCEL, RecordKind.EXPIRE, RecordKind.UNWIND_FAILED)


@dataclass(frozen=True)
class AuditViolation:
    """One broken invariant."""

    invariant: str
    detail: str
    correlation_id: str = ""
    handle: str = ""

    def render(self) -> str:
        where = self.handle or self.correlation_id
        suffix = f" [{where}]" if where else ""
        return f"{self.invariant}: {self.detail}{suffix}"


@dataclass
class ReconciliationReport:
    """The outcome of one reconciliation pass."""

    violations: list[AuditViolation] = field(default_factory=list)
    checked_records: int = 0
    checked_reservations: int = 0
    checked_bookings: int = 0
    checked_billing_runs: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            "audit reconciliation: "
            + ("OK" if self.ok else f"{len(self.violations)} violation(s)"),
            f"  records checked:      {self.checked_records}",
            f"  reservations checked: {self.checked_reservations}",
            f"  bookings checked:     {self.checked_bookings}",
            f"  billing runs checked: {self.checked_billing_runs}",
        ]
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation.render()}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "checked_records": self.checked_records,
            "checked_reservations": self.checked_reservations,
            "checked_bookings": self.checked_bookings,
            "checked_billing_runs": self.checked_billing_runs,
            "violations": [
                {
                    "invariant": v.invariant,
                    "detail": v.detail,
                    "correlation_id": v.correlation_id,
                    "handle": v.handle,
                }
                for v in self.violations
            ],
        }


# ---------------------------------------------------------------------------
# Ledger-internal invariants
# ---------------------------------------------------------------------------


def _admits_by_handle(
    records: tuple[DecisionRecord, ...]
) -> dict[str, DecisionRecord]:
    return {
        r.handle: r
        for r in records
        if r.kind is RecordKind.ADMIT and r.handle
    }


def reconcile_ledger(ledger: DecisionLedger) -> list[AuditViolation]:
    violations: list[AuditViolation] = []
    records = tuple(ledger)

    # policy-evaluation: every admission names the rule that granted it.
    for record in records:
        if record.kind is RecordKind.ADMIT and not record.matched_rule:
            violations.append(AuditViolation(
                "policy-evaluation",
                f"admission at {record.domain} (seq {record.seq}) carries "
                "no matched policy rule",
                correlation_id=record.correlation_id,
                handle=record.handle,
            ))

    # claim-provenance: nothing claimed that was never admitted.
    admits = _admits_by_handle(records)
    for record in records:
        if record.kind is RecordKind.CLAIM and record.handle not in admits:
            violations.append(AuditViolation(
                "claim-provenance",
                f"claim of {record.handle} at {record.domain} has no "
                "admission record",
                correlation_id=record.correlation_id,
                handle=record.handle,
            ))

    # provenance-chain + unwind-balance, per correlation.
    by_correlation: dict[str, list[DecisionRecord]] = {}
    for record in records:
        if record.correlation_id:
            by_correlation.setdefault(record.correlation_id, []).append(record)

    for cid, group in by_correlation.items():
        group.sort(key=lambda r: r.seq)
        outcome = next(
            (r for r in group if r.kind is RecordKind.OUTCOME), None
        )
        admitted = [r for r in group if r.kind is RecordKind.ADMIT]
        denied = [r for r in group if r.kind is RecordKind.DENY]

        if outcome is not None and outcome.granted:
            path = tuple(
                p for p in outcome.attribute("path").split(">") if p
            )
            admit_domains = [r.domain for r in admitted]
            for domain in path:
                if domain not in admit_domains:
                    violations.append(AuditViolation(
                        "provenance-chain",
                        f"granted outcome traversed {domain} but the hop "
                        "has no admission record",
                        correlation_id=cid,
                    ))
            on_path = [d for d in admit_domains if d in path]
            if tuple(on_path[: len(path)]) != path[: len(on_path)]:
                violations.append(AuditViolation(
                    "provenance-chain",
                    f"admissions {on_path} out of travel order vs path "
                    f"{list(path)}",
                    correlation_id=cid,
                ))
        if outcome is not None and not outcome.granted and outcome.domain:
            if not any(r.domain == outcome.domain for r in denied):
                violations.append(AuditViolation(
                    "provenance-chain",
                    f"denied outcome blames {outcome.domain} but the hop "
                    "has no denial record",
                    correlation_id=cid,
                ))

        run_denied = denied or (outcome is not None and not outcome.granted)
        if run_denied:
            for admit in admitted:
                balanced = any(
                    r.kind in _BALANCING
                    and r.handle == admit.handle
                    and r.seq > admit.seq
                    for r in group
                )
                if not balanced:
                    violations.append(AuditViolation(
                        "unwind-balance",
                        f"denied run left admission at {admit.domain} "
                        "unbalanced (no cancel/expire/unwind record)",
                        correlation_id=cid,
                        handle=admit.handle,
                    ))

    # cache-revocation: sequence order — a cache-sourced verdict for a
    # fingerprint revoked at an earlier seq is a stale-cache escape.
    revoked: set[str] = set()
    for record in records:
        if record.kind is RecordKind.REVOKE:
            for check in record.checks:
                if check.fingerprint:
                    revoked.add(check.fingerprint)
            continue
        for check in record.checks:
            if (
                check.source.startswith("cache")
                and check.verdict == "ok"
                and check.fingerprint
                and check.fingerprint in revoked
            ):
                violations.append(AuditViolation(
                    "cache-revocation",
                    f"cache-sourced verdict for {check.subject or 'cert'} "
                    f"({check.fingerprint[:12]}…) postdates its revocation",
                    correlation_id=record.correlation_id,
                    handle=record.handle,
                ))
    return violations


# ---------------------------------------------------------------------------
# Broker reservation tables, capacity bookings, soft-state leases
# ---------------------------------------------------------------------------


def _is_live(
    ledger_records: tuple[DecisionRecord, ...], handle: str
) -> bool:
    """True when *handle* has an admission not balanced by teardown."""
    admit_seq = None
    for r in ledger_records:
        if r.kind is RecordKind.ADMIT and r.handle == handle:
            admit_seq = r.seq
            break
    if admit_seq is None:
        return False
    return not any(
        r.kind in _BALANCING and r.handle == handle and r.seq > admit_seq
        for r in ledger_records
    )


def reconcile_brokers(
    ledger: DecisionLedger,
    brokers: Mapping[str, Any],
    *,
    report: ReconciliationReport | None = None,
) -> list[AuditViolation]:
    """Check broker reservation tables and bookings against the ledger.

    *brokers* is duck-typed: each value needs ``.reservations.all()``
    and ``.admission`` with ``resources()`` / ``schedule(r).bookings``.
    """
    violations: list[AuditViolation] = []
    records = tuple(ledger)
    admits = _admits_by_handle(records)
    by_kind_handle: dict[tuple[RecordKind, str], DecisionRecord] = {}
    for r in records:
        if r.handle:
            by_kind_handle.setdefault((r.kind, r.handle), r)

    for domain, broker in brokers.items():
        for resv in broker.reservations.all():
            if report is not None:
                report.checked_reservations += 1
            state = resv.state.value
            handle = resv.handle
            if state in ("granted", "active"):
                if handle not in admits:
                    violations.append(AuditViolation(
                        "table-ledger",
                        f"{state} reservation in {domain} has no "
                        "admission record",
                        handle=handle,
                    ))
                elif not _is_live(records, handle):
                    violations.append(AuditViolation(
                        "table-ledger",
                        f"ledger shows {handle} torn down but {domain} "
                        f"still holds it {state}",
                        handle=handle,
                    ))
            elif state == "denied":
                if (RecordKind.DENY, handle) not in by_kind_handle:
                    violations.append(AuditViolation(
                        "table-ledger",
                        f"denied reservation in {domain} has no denial "
                        "record",
                        handle=handle,
                    ))
            elif state == "expired":
                if handle in admits and (
                    (RecordKind.EXPIRE, handle) not in by_kind_handle
                ):
                    violations.append(AuditViolation(
                        "table-ledger",
                        f"expired reservation in {domain} was admitted "
                        "but never recorded an expiry",
                        handle=handle,
                    ))
            elif state == "cancelled":
                if handle in admits and not any(
                    (k, handle) in by_kind_handle
                    for k in _BALANCING
                ):
                    violations.append(AuditViolation(
                        "table-ledger",
                        f"cancelled reservation in {domain} was admitted "
                        "but never recorded a teardown",
                        handle=handle,
                    ))

        for resource in broker.admission.resources():
            for booking in broker.admission.schedule(resource).bookings:
                if report is not None:
                    report.checked_bookings += 1
                tag = booking.tag
                if not tag:
                    continue
                if not _is_live(records, tag):
                    violations.append(AuditViolation(
                        "booking-ledger",
                        f"capacity booking on {resource} tagged {tag} "
                        "has no live admission in the ledger",
                        handle=tag,
                    ))
    return violations


# ---------------------------------------------------------------------------
# Accounting
# ---------------------------------------------------------------------------


def reconcile_accounting(
    ledger: DecisionLedger,
    billing_runs: Iterable[Any],
    *,
    report: ReconciliationReport | None = None,
) -> list[AuditViolation]:
    """Every billing run bills a signalling run the ledger admitted on
    every domain of the billed path."""
    violations: list[AuditViolation] = []
    for run in billing_runs:
        if report is not None:
            report.checked_billing_runs += 1
        cid = getattr(run, "correlation_id", "") or ""
        if not cid:
            continue  # pre-ISSUE-6 runs carry no correlation id
        admit_domains = {
            r.domain
            for r in ledger.records(RecordKind.ADMIT, correlation_id=cid)
        }
        for domain in run.path:
            if domain not in admit_domains:
                violations.append(AuditViolation(
                    "accounting",
                    f"billing run charges for {domain} but the ledger "
                    "has no admission there",
                    correlation_id=cid,
                ))
    return violations


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------


def reconcile(
    ledger: DecisionLedger,
    *,
    brokers: Mapping[str, Any] | None = None,
    billing_runs: Iterable[Any] | None = None,
) -> ReconciliationReport:
    """Run every applicable invariant family and return one report."""
    report = ReconciliationReport(checked_records=len(ledger))
    report.violations.extend(reconcile_ledger(ledger))
    if brokers is not None:
        report.violations.extend(
            reconcile_brokers(ledger, brokers, report=report)
        )
    if billing_runs is not None:
        report.violations.extend(
            reconcile_accounting(ledger, billing_runs, report=report)
        )
    return report
