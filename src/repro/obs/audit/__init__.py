"""repro.obs.audit — the decision-provenance ledger (ISSUE 6).

Metrics say *where time went* and events say *what happened*; the audit
ledger says **why decisions happened**.  Every admission, denial, claim,
cancel, expiry, unwind, and fallback at every hop appends one immutable
:class:`DecisionRecord` carrying the full evaluation provenance:

* the policy rule ids that fired (:mod:`repro.policy.engine` traces its
  evaluation path and stamps ``matched_rule`` / ``rules_fired``);
* every certificate and delegation chain checked, each with its verdict
  and verdict *source* — ``fresh`` or ``cache:<kind>`` from the PR-5
  verification caches;
* breaker / retry / deadline context from :mod:`repro.core.recovery`;
* the PR-4 correlation id, so per-hop records stitch into one
  end-to-end decision chain (:func:`repro.obs.audit.explain.stitch`).

On top of the ledger sits a reconciliation engine
(:mod:`repro.obs.audit.reconcile`) that cross-checks it against broker
reservation tables, capacity bookings, soft-state leases, and the
accounting ledger, asserting the invariants documented in
``docs/AUDIT.md``.  ``repro audit query/explain/--reconcile`` is the
CLI surface.

Same contract as the other pillars: disabled by default, one ``None``
check when off, scoped installation via :class:`use_ledger`.
"""

from __future__ import annotations

from repro.obs.audit.ledger import (
    CheckRecord,
    DecisionLedger,
    DecisionRecord,
    RecordKind,
    disable,
    discard_pending,
    enable,
    get_ledger,
    note_check,
    note_recovery,
    note_retry,
    record_decision,
    record_revocation,
    use_ledger,
)
from repro.obs.audit.explain import (
    DecisionChain,
    chain_to_dict,
    render_chain,
    resolve_correlation,
    stitch,
)
from repro.obs.audit.reconcile import (
    AuditViolation,
    ReconciliationReport,
    reconcile,
    reconcile_accounting,
    reconcile_brokers,
    reconcile_ledger,
)

__all__ = [
    "CheckRecord",
    "DecisionRecord",
    "DecisionLedger",
    "RecordKind",
    "enable",
    "disable",
    "get_ledger",
    "use_ledger",
    "note_check",
    "note_retry",
    "note_recovery",
    "discard_pending",
    "record_decision",
    "record_revocation",
    "DecisionChain",
    "stitch",
    "resolve_correlation",
    "render_chain",
    "chain_to_dict",
    "AuditViolation",
    "ReconciliationReport",
    "reconcile",
    "reconcile_ledger",
    "reconcile_brokers",
    "reconcile_accounting",
]
