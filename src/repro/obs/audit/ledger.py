"""The append-only, thread-safe DecisionRecord ledger.

Two layers cooperate to build one record:

* **Pending-check buffer** — verification code deep in the stack
  (:mod:`repro.core.trust`, :mod:`repro.crypto.capability`, the policy
  server) calls :func:`note_check` / :func:`note_retry` /
  :func:`note_recovery` as it works.  The notes accumulate in a
  :mod:`contextvars` buffer, so concurrent requests on worker threads
  never cross-contaminate, and no call signature in the protocol stack
  had to grow a "ledger" argument.
* **Record finalisation** — the decision points (the broker's audit
  hook, the signalling engine's denial synthesis) call
  :func:`record_decision`, which drains the pending buffer into an
  immutable :class:`DecisionRecord` and appends it under the ledger
  lock with a monotonically increasing sequence number.

Everything no-ops when no ledger is installed: ``note_check`` costs one
``None`` check, and the buffer is only ever created while a ledger is
active (benchmark trajectory entry 6 measures the enabled overhead).
"""

from __future__ import annotations

import contextlib
import enum
import json
import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs import events as obs_events

__all__ = [
    "RecordKind",
    "CheckRecord",
    "DecisionRecord",
    "DecisionLedger",
    "enable",
    "disable",
    "get_ledger",
    "use_ledger",
    "note_check",
    "note_retry",
    "note_recovery",
    "discard_pending",
    "record_decision",
    "record_revocation",
]


class RecordKind(str, enum.Enum):
    """What kind of decision a record captures."""

    #: A broker admitted the request into its capacity schedule.
    ADMIT = "admit"
    #: A broker (or the signalling engine on its behalf) denied it.
    DENY = "deny"
    #: A granted reservation was claimed (service started).
    CLAIM = "claim"
    #: A reservation was cancelled (user action or unwind release).
    CANCEL = "cancel"
    #: A soft-state lease lapsed and the broker reclaimed capacity.
    EXPIRE = "expire"
    #: An explicit unwind release failed (soft state will reclaim).
    UNWIND_FAILED = "unwind_failed"
    #: Graceful degradation engaged (tunnel -> per-flow signalling).
    FALLBACK = "fallback"
    #: A certificate/credential was revoked at its authority.
    REVOKE = "revoke"
    #: The end-to-end verdict the source domain returned to the user.
    OUTCOME = "outcome"


@dataclass(frozen=True)
class CheckRecord:
    """One certificate / delegation / assertion check inside a decision.

    ``source`` is the provenance of the verdict: ``"fresh"`` for a full
    cryptographic verification, ``"cache:<kind>"`` when a PR-5
    verification cache answered (the reconciler cross-checks cached
    verdicts against revocations), or ``""`` for non-crypto notes such
    as retries.
    """

    kind: str
    subject: str = ""
    fingerprint: str = ""
    verdict: str = "ok"
    source: str = "fresh"
    detail: str = ""

    def to_dict(self) -> dict[str, str]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "fingerprint": self.fingerprint,
            "verdict": self.verdict,
            "source": self.source,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CheckRecord":
        return cls(
            kind=str(data.get("kind", "")),
            subject=str(data.get("subject", "")),
            fingerprint=str(data.get("fingerprint", "")),
            verdict=str(data.get("verdict", "")),
            source=str(data.get("source", "")),
            detail=str(data.get("detail", "")),
        )


@dataclass(frozen=True)
class DecisionRecord:
    """One immutable entry in the ledger."""

    #: Ledger-assigned, strictly increasing.  Revocation ordering and
    #: unwind balancing reason about ``seq``, not wall-clock time.
    seq: int
    kind: RecordKind
    at_time: float
    domain: str = ""
    handle: str = ""
    user: str = ""
    correlation_id: str = ""
    granted: bool = False
    reason: str = ""
    #: Stable machine cause (:class:`repro.obs.events.ReasonCode` value).
    reason_code: str = ""
    rate_mbps: float = 0.0
    window: tuple[float, float] = (0.0, 0.0)
    upstream: str | None = None
    downstream: str | None = None
    #: Policy-rule id that produced the verdict (e.g. ``policy/1.then.0``).
    matched_rule: str = ""
    #: Every rule node visited on the way, in evaluation order.
    rules_fired: tuple[str, ...] = ()
    #: Certificates / delegations / assertions checked for this decision.
    checks: tuple[CheckRecord, ...] = ()
    #: Transient-failure retries absorbed on the way to this decision.
    retries: int = 0
    #: Circuit-breaker state of the inbound link ("closed", "open", ...).
    breaker_state: str = ""
    #: Seconds left on the end-to-end deadline, or None when unbounded.
    deadline_remaining_s: float | None = None
    attributes: tuple[tuple[str, str], ...] = ()

    def attribute(self, name: str, default: str = "") -> str:
        for key, value in self.attributes:
            if key == name:
                return value
        return default

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind.value,
            "at_time": self.at_time,
            "domain": self.domain,
            "handle": self.handle,
            "user": self.user,
            "correlation_id": self.correlation_id,
            "granted": self.granted,
            "reason": self.reason,
            "reason_code": self.reason_code,
            "rate_mbps": self.rate_mbps,
            "window": list(self.window),
            "upstream": self.upstream,
            "downstream": self.downstream,
            "matched_rule": self.matched_rule,
            "rules_fired": list(self.rules_fired),
            "checks": [c.to_dict() for c in self.checks],
            "retries": self.retries,
            "breaker_state": self.breaker_state,
            "deadline_remaining_s": self.deadline_remaining_s,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DecisionRecord":
        window = data.get("window") or (0.0, 0.0)
        deadline = data.get("deadline_remaining_s")
        return cls(
            seq=int(data["seq"]),
            kind=RecordKind(data["kind"]),
            at_time=float(data.get("at_time", 0.0)),
            domain=str(data.get("domain", "")),
            handle=str(data.get("handle", "")),
            user=str(data.get("user", "")),
            correlation_id=str(data.get("correlation_id", "")),
            granted=bool(data.get("granted", False)),
            reason=str(data.get("reason", "")),
            reason_code=str(data.get("reason_code", "")),
            rate_mbps=float(data.get("rate_mbps", 0.0)),
            window=(float(window[0]), float(window[1])),
            upstream=data.get("upstream"),
            downstream=data.get("downstream"),
            matched_rule=str(data.get("matched_rule", "")),
            rules_fired=tuple(data.get("rules_fired") or ()),
            checks=tuple(
                CheckRecord.from_dict(c) for c in data.get("checks") or ()
            ),
            retries=int(data.get("retries", 0)),
            breaker_state=str(data.get("breaker_state", "")),
            deadline_remaining_s=(
                None if deadline is None else float(deadline)
            ),
            attributes=tuple(
                sorted((str(k), str(v))
                       for k, v in (data.get("attributes") or {}).items())
            ),
        )


class DecisionLedger:
    """Append-only, thread-safe store of :class:`DecisionRecord`.

    Unlike the event log there is **no eviction**: reconciliation is only
    sound over a complete history, so the ledger holds every record for
    its lifetime (scope it with :class:`use_ledger` per campaign).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._records: list[DecisionRecord] = []

    def record(
        self,
        kind: RecordKind | str,
        *,
        at_time: float = 0.0,
        domain: str = "",
        handle: str = "",
        user: str = "",
        correlation_id: str | None = None,
        granted: bool = False,
        reason: str = "",
        reason_code: str = "",
        rate_mbps: float = 0.0,
        window: tuple[float, float] = (0.0, 0.0),
        upstream: str | None = None,
        downstream: str | None = None,
        matched_rule: str = "",
        rules_fired: tuple[str, ...] = (),
        checks: tuple[CheckRecord, ...] = (),
        **attributes: object,
    ) -> DecisionRecord:
        """Finalise one decision: drain the pending-check buffer and
        append the assembled record."""
        if correlation_id is None:
            correlation_id = obs_events.current_correlation_id() or ""
        pending = _drain_pending()
        record_checks = (*pending.checks, *checks)
        with self._lock:
            entry = DecisionRecord(
                seq=len(self._records),
                kind=RecordKind(kind),
                at_time=at_time,
                domain=domain,
                handle=handle,
                user=user,
                correlation_id=correlation_id,
                granted=granted,
                reason=reason,
                reason_code=reason_code,
                rate_mbps=rate_mbps,
                window=window,
                upstream=upstream,
                downstream=downstream,
                matched_rule=matched_rule,
                rules_fired=rules_fired,
                checks=record_checks,
                retries=pending.retries,
                breaker_state=pending.breaker_state,
                deadline_remaining_s=pending.deadline_remaining_s,
                attributes=tuple(
                    sorted((k, str(v)) for k, v in attributes.items())
                ),
            )
            self._records.append(entry)
        return entry

    def append(self, record: DecisionRecord) -> DecisionRecord:
        """Append a pre-built record (ledger import), re-sequencing it."""
        with self._lock:
            entry = DecisionRecord(**{
                **{f: getattr(record, f)
                   for f in record.__dataclass_fields__},
                "seq": len(self._records),
            })
            self._records.append(entry)
        return entry

    def records(
        self,
        kind: RecordKind | None = None,
        *,
        domain: str | None = None,
        correlation_id: str | None = None,
        handle: str | None = None,
        user: str | None = None,
    ) -> tuple[DecisionRecord, ...]:
        with self._lock:
            snapshot = tuple(self._records)
        return tuple(
            r for r in snapshot
            if (kind is None or r.kind is kind)
            and (domain is None or r.domain == domain)
            and (correlation_id is None or r.correlation_id == correlation_id)
            and (handle is None or r.handle == handle)
            and (user is None or r.user == user)
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[DecisionRecord]:
        with self._lock:
            return iter(tuple(self._records))

    # -- persistence -------------------------------------------------------------

    def to_json(self, *, indent: int | None = 2) -> str:
        with self._lock:
            snapshot = tuple(self._records)
        return json.dumps(
            {"records": [r.to_dict() for r in snapshot]}, indent=indent
        )

    @classmethod
    def from_json(cls, text: str) -> "DecisionLedger":
        payload = json.loads(text)
        ledger = cls()
        for data in payload.get("records", ()):
            ledger.append(DecisionRecord.from_dict(data))
        return ledger


# ---------------------------------------------------------------------------
# Pending-check buffer (contextvar: per-thread / per-task isolation)
# ---------------------------------------------------------------------------


@dataclass
class _Pending:
    checks: list[CheckRecord] = field(default_factory=list)
    retries: int = 0
    breaker_state: str = ""
    deadline_remaining_s: float | None = None


_EMPTY = _Pending()

_pending: ContextVar[_Pending | None] = ContextVar(
    "repro_audit_pending", default=None
)


def _current_pending() -> _Pending:
    buffer = _pending.get()
    if buffer is None:
        buffer = _Pending()
        _pending.set(buffer)
    return buffer


def _drain_pending() -> _Pending:
    buffer = _pending.get()
    if buffer is None:
        return _EMPTY
    _pending.set(None)
    return buffer


def discard_pending() -> None:
    """Drop any notes left over from an earlier request on this context
    (the signalling engine calls this at the top of every operation, so
    reused worker threads start from a clean buffer)."""
    _pending.set(None)


def note_check(
    kind: str,
    *,
    subject: str = "",
    fingerprint: str = "",
    verdict: str = "ok",
    source: str = "fresh",
    detail: str = "",
) -> None:
    """Note one certificate/delegation/assertion check for the decision
    currently being evaluated.  No-op when the ledger is off."""
    if _active is None:
        return
    _current_pending().checks.append(CheckRecord(
        kind=kind,
        subject=subject,
        fingerprint=fingerprint,
        verdict=verdict,
        source=source,
        detail=detail,
    ))


def note_retry(target: str = "", reason: str = "") -> None:
    """Note one absorbed transient failure (mirrors the RETRY event)."""
    if _active is None:
        return
    buffer = _current_pending()
    buffer.retries += 1
    buffer.checks.append(CheckRecord(
        kind="retry", subject=target, verdict="retried", source="",
        detail=reason,
    ))


def note_recovery(
    *,
    breaker_state: str | None = None,
    deadline_remaining_s: float | None = None,
) -> None:
    """Note the recovery context (breaker state of the inbound link,
    remaining end-to-end deadline) for the decision in flight."""
    if _active is None:
        return
    buffer = _current_pending()
    if breaker_state is not None:
        buffer.breaker_state = breaker_state
    if deadline_remaining_s is not None:
        buffer.deadline_remaining_s = deadline_remaining_s


# ---------------------------------------------------------------------------
# Module-level recording helpers (safe to call with the ledger off)
# ---------------------------------------------------------------------------


def record_decision(
    kind: RecordKind | str, **kwargs: Any
) -> DecisionRecord | None:
    """Append one record to the active ledger, or no-op when off."""
    ledger = get_ledger()
    if ledger is None:
        return None
    return ledger.record(kind, **kwargs)


def record_revocation(
    *,
    fingerprint: str,
    subject: str = "",
    authority: str = "",
    at_time: float = 0.0,
) -> DecisionRecord | None:
    """Record a certificate/credential revocation.  The reconciler uses
    these to assert no cache-sourced verdict postdates a revocation."""
    ledger = get_ledger()
    if ledger is None:
        return None
    return ledger.record(
        RecordKind.REVOKE,
        at_time=at_time,
        domain=authority,
        user=subject,
        reason=f"revoked by {authority}" if authority else "revoked",
        checks=(CheckRecord(
            kind="revocation", subject=subject, fingerprint=fingerprint,
            verdict="revoked", source="authority",
        ),),
    )


# ---------------------------------------------------------------------------
# Process-global ledger (disabled by default)
# ---------------------------------------------------------------------------

_active: DecisionLedger | None = None
_global_lock = threading.Lock()


def enable(ledger: DecisionLedger | None = None) -> DecisionLedger:
    """Install *ledger* (or a fresh one) as the process-global ledger."""
    global _active
    with _global_lock:
        _active = ledger if ledger is not None else DecisionLedger()
        return _active


def disable() -> None:
    global _active
    with _global_lock:
        _active = None


def get_ledger() -> DecisionLedger | None:
    """The active global decision ledger, or ``None`` when off."""
    return _active


class use_ledger(contextlib.AbstractContextManager["DecisionLedger"]):
    """Scoped ledger installation (mirror of ``events.use_event_log``)."""

    def __init__(self, ledger: DecisionLedger | None = None):
        self.ledger = ledger if ledger is not None else DecisionLedger()
        self._previous: DecisionLedger | None = None

    def __enter__(self) -> DecisionLedger:
        self._previous = get_ledger()
        enable(self.ledger)
        return self.ledger

    def __exit__(self, *exc: object) -> None:
        if self._previous is None:
            disable()
        else:
            enable(self._previous)
