"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The fabric's quantitative telemetry lives here.  Three instrument kinds
cover everything the reproduction needs to observe about itself:

* :class:`Counter` — monotonically increasing totals (verifications,
  admissions, messages, bytes);
* :class:`Gauge` — point-in-time values that move both ways (simulator
  queue depth, active tunnel allocations);
* :class:`Histogram` — fixed-bucket distributions (per-hop signalling
  latency, delegation-chain verification wall time).

Every instrument supports label dimensions given as keyword arguments
(``counter.inc(domain="A", granted="true")``); each distinct label set is
an independent series, Prometheus-style.

Design constraints (ISSUE 1): zero third-party dependencies, thread-safe
(one registry lock shared by its instruments — operations are tiny
dictionary updates, so a single lock is cheaper than per-series locks),
and free when disabled — instrumented code asks :func:`get_registry`
first, and a ``None`` check is the entire disabled-path cost.

Usage::

    registry = enable()                     # install a process-global registry
    ...
    reg = get_registry()
    if reg is not None:
        reg.counter("admissions_total").inc(domain="A", granted="true")
"""

from __future__ import annotations

import threading
import time
from typing import Iterator, Mapping, Sequence

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "interpolate_quantile",
    "enable",
    "disable",
    "get_registry",
    "use_registry",
]

#: Default histogram buckets, tuned for signalling latencies in seconds:
#: sub-millisecond crypto up through multi-second pathological paths.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def interpolate_quantile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """The *q*-quantile of a bucketed distribution, by linear
    interpolation within the bucket the rank falls in (Prometheus
    ``histogram_quantile`` semantics).  *counts* are per-bucket (not
    cumulative) observation counts aligned with the finite upper
    *bounds*; observations beyond the last bound clamp to it.  An empty
    distribution estimates ``0.0``.
    """
    if not 0.0 <= q <= 1.0:
        raise ObservabilityError(f"quantile {q} outside [0, 1]")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    running = 0.0
    lower = 0.0
    for bound, n in zip(bounds, counts):
        if running + n >= rank and n > 0:
            # Assume the bucket's observations spread uniformly.
            return lower + (bound - lower) * ((rank - running) / n)
        running += n
        lower = bound
    # The rank falls in the implicit +Inf bucket: clamp.
    return float(bounds[-1])


class _Instrument:
    """Shared plumbing: name, help text, and the registry's lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.RLock):
        self.name = name
        self.help = help
        self._lock = lock

    def _check_name(self) -> None:  # pragma: no cover - trivial
        pass


class Counter(_Instrument):
    """A monotonically increasing total, per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.RLock):
        super().__init__(name, help, lock)
        self._series: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._series.values())

    def series(self) -> dict[LabelKey, float]:
        with self._lock:
            return dict(self._series)


class Gauge(_Instrument):
    """A value that can move in both directions, per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.RLock):
        super().__init__(name, help, lock)
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        with self._lock:
            return dict(self._series)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets  # one per finite upper bound
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket distribution.  Buckets are cumulative at export time
    (Prometheus ``le`` semantics); internally each finite bound holds the
    observations that fell at or below it and above the previous bound,
    with overflow tracked by ``count`` (the implicit ``+Inf`` bucket)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ObservabilityError(f"histogram {self.name!r} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ObservabilityError(f"histogram {self.name!r} has duplicate buckets")
        self.buckets = bounds
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.sum += value
            series.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
                    break

    def cumulative_buckets(self, **labels: object) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` per finite bucket; the
        ``+Inf`` bucket equals :meth:`count`."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return [(b, 0) for b in self.buckets]
            out, running = [], 0
            for bound, n in zip(self.buckets, series.bucket_counts):
                running += n
                out.append((bound, running))
            return out

    def quantile(self, q: float, **labels: object) -> float:
        """Estimate the *q*-quantile (``0 <= q <= 1``) of one series via
        :func:`interpolate_quantile`.  An absent series estimates
        ``0.0``; a quantile falling in the implicit ``+Inf`` bucket
        clamps to the largest finite bound."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            counts = (
                [0] * len(self.buckets)
                if series is None
                else list(series.bucket_counts)
            )
        return interpolate_quantile(self.buckets, counts, q)

    def aggregate_quantile(self, q: float) -> float:
        """The *q*-quantile over ALL label sets of this histogram merged
        into one distribution (sound: every series shares the bucket
        bounds)."""
        with self._lock:
            summed = [0] * len(self.buckets)
            for series in self._series.values():
                for i, n in enumerate(series.bucket_counts):
                    summed[i] += n
        return interpolate_quantile(self.buckets, summed, q)

    def count(self, **labels: object) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return 0 if series is None else series.count

    def sum(self, **labels: object) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return 0.0 if series is None else series.sum

    def time(self, **labels: object) -> _HistogramTimer:
        """Context manager observing the block's wall-clock duration
        (``time.perf_counter``) into this histogram on clean exit; a
        block that raises records nothing.  The blessed way to meter a
        code section — manual ``perf_counter()`` pairs outside the obs
        layer trip lint rule REP110."""
        return _HistogramTimer(self, labels)

    def series(self) -> dict[LabelKey, _HistogramSeries]:
        with self._lock:
            return dict(self._series)


class _HistogramTimer:
    """See :meth:`Histogram.time`."""

    __slots__ = ("_histogram", "_labels", "_t0")

    def __init__(self, histogram: Histogram, labels: Mapping[str, object]):
        self._histogram = histogram
        self._labels = dict(labels)
        self._t0 = 0.0

    def __enter__(self) -> _HistogramTimer:
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is None:
            self._histogram.observe(
                time.perf_counter() - self._t0, **self._labels
            )


class MetricsRegistry:
    """A named collection of instruments.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call fixes the kind (and, for histograms, the buckets); later calls
    with the same name return the same instrument, and a kind mismatch
    raises ``ValueError`` — a misspelled registration should fail loudly,
    not silently fork a second metric.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObservabilityError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, self._lock, **kwargs)
            self._metrics[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> Iterator[_Instrument]:
        """Instruments in name order (stable export output)."""
        with self._lock:
            items = sorted(self._metrics.items())
        for _, instrument in items:
            yield instrument

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


# ---------------------------------------------------------------------------
# Process-global registry (disabled by default)
# ---------------------------------------------------------------------------

_active: MetricsRegistry | None = None
_global_lock = threading.Lock()


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install *registry* (or a fresh one) as the process-global registry
    and return it.  Instrumented code starts recording immediately."""
    global _active
    with _global_lock:
        _active = registry if registry is not None else MetricsRegistry()
        return _active


def disable() -> None:
    """Remove the global registry; instrumentation reverts to no-ops."""
    global _active
    with _global_lock:
        _active = None


def get_registry() -> MetricsRegistry | None:
    """The active global registry, or ``None`` when observability is off.
    Instrumented call sites must treat ``None`` as "record nothing"."""
    return _active


class use_registry:
    """Context manager installing a registry for the dynamic extent of a
    ``with`` block (tests, CLI commands, benchmark fixtures)::

        with use_registry() as reg:
            ...
        # previous global state restored
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = get_registry()
        enable(self.registry)
        return self.registry

    def __exit__(self, *exc: object) -> None:
        if self._previous is None:
            disable()
        else:
            enable(self._previous)
