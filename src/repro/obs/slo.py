"""Declarative service-level objectives over the obs substrate.

An SLO here is a named, machine-checkable statement about the fabric's
behaviour — "p95 end-to-end signalling latency stays under 500 ms",
"fewer than 10% of reservation decisions are denials", "circuit
breakers open on under 5% of decisions" — evaluated after the fact over
what the metrics registry and event log recorded.  Three objective
kinds cover the reproduction's needs:

* ``latency_quantile`` — a histogram quantile (via
  :meth:`~repro.obs.metrics.Histogram.aggregate_quantile`) must not
  exceed a threshold in seconds;
* ``denial_rate`` — ``DENY`` events as a fraction of all admission
  decisions (``ADMIT`` + ``DENY``) must not exceed a ratio;
* ``breaker_open_rate`` — ``BREAKER`` open transitions per admission
  decision must not exceed a ratio.

Each verdict reports a **burn rate**: actual divided by allowed, the
standard error-budget multiple (1.0 = exactly at budget, 2.0 = burning
twice the budget).  ``repro slo`` evaluates a spec from the CLI and the
chaos harness attaches a verdict table to every run, so fault campaigns
answer "did recovery keep us inside the objectives?" and not just "did
the invariants hold?".

Spec files are JSON::

    {"slos": [
      {"name": "signalling-p95", "type": "latency_quantile",
       "metric": "signalling_latency_seconds",
       "quantile": 0.95, "threshold": 0.5},
      {"name": "denials", "type": "denial_rate", "threshold": 0.1},
      {"name": "breakers", "type": "breaker_open_rate", "threshold": 0.05}
    ]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ObservabilityError
from repro.obs.events import EventKind, EventLog
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "SLO",
    "SLOResult",
    "SLOReport",
    "SLO_KINDS",
    "default_slos",
    "parse_slo_spec",
    "evaluate_slos",
    "evaluate_slos_from_recording",
]

SLO_KINDS = ("latency_quantile", "denial_rate", "breaker_open_rate")


@dataclass(frozen=True)
class SLO:
    """One declarative objective."""

    name: str
    kind: str
    #: Upper bound on the observed value: seconds for latency
    #: objectives, a ratio in [0, 1] for rate objectives.
    threshold: float
    #: Histogram metric name (``latency_quantile`` only).
    metric: str = ""
    #: Which quantile to hold to the threshold (``latency_quantile``).
    quantile: float = 0.95

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ObservabilityError(
                f"SLO {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(SLO_KINDS)})"
            )
        if self.threshold < 0:
            raise ObservabilityError(
                f"SLO {self.name!r}: threshold must be >= 0"
            )
        if self.kind == "latency_quantile" and not self.metric:
            raise ObservabilityError(
                f"SLO {self.name!r}: latency_quantile needs a metric name"
            )
        if not 0.0 <= self.quantile <= 1.0:
            raise ObservabilityError(
                f"SLO {self.name!r}: quantile {self.quantile} outside [0, 1]"
            )


@dataclass(frozen=True)
class SLOResult:
    """The verdict for one objective."""

    slo: SLO
    #: The observed value (seconds or ratio, matching the objective).
    actual: float
    #: ``actual / threshold`` — the error-budget burn multiple.
    burn_rate: float
    ok: bool
    #: What the numbers were computed from (for the humans).
    detail: str


@dataclass(frozen=True)
class SLOReport:
    """All verdicts of one evaluation."""

    results: tuple[SLOResult, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failing(self) -> tuple[SLOResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    def render(self) -> str:
        if not self.results:
            return "(no SLOs evaluated)"
        lines = [
            f"{'':4} {'objective':<24} {'actual':>10} {'allowed':>10} "
            f"{'burn':>7}"
        ]
        for r in self.results:
            verdict = "OK" if r.ok else "FAIL"
            lines.append(
                f"{verdict:<4} {r.slo.name:<24} {r.actual:>10.4f} "
                f"{r.slo.threshold:>10.4f} {r.burn_rate:>6.2f}x  {r.detail}"
            )
        status = "all objectives met" if self.ok else (
            f"{len(self.failing)} of {len(self.results)} objectives FAILING"
        )
        lines.append(status)
        return "\n".join(lines)


def default_slos() -> tuple[SLO, ...]:
    """The repo's built-in objectives — deliberately loose enough for a
    healthy fabric (including chaos runs, where every trial carries an
    injected fault) and tight enough to flag systemic regressions."""
    return (
        SLO(
            name="signalling-latency-p95",
            kind="latency_quantile",
            metric="signalling_latency_seconds",
            quantile=0.95,
            threshold=2.5,
        ),
        SLO(name="denial-rate", kind="denial_rate", threshold=0.5),
        SLO(
            name="breaker-open-rate",
            kind="breaker_open_rate",
            threshold=0.25,
        ),
    )


def parse_slo_spec(text: str) -> tuple[SLO, ...]:
    """Parse a JSON spec document (see module docstring) into SLOs."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"SLO spec is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("slos"), list):
        raise ObservabilityError('SLO spec needs a top-level "slos" list')
    slos: list[SLO] = []
    for i, raw in enumerate(doc["slos"]):
        if not isinstance(raw, dict):
            raise ObservabilityError(f"SLO spec entry {i} is not an object")
        unknown = set(raw) - {"name", "type", "threshold", "metric", "quantile"}
        if unknown:
            raise ObservabilityError(
                f"SLO spec entry {i} has unknown keys: {sorted(unknown)}"
            )
        try:
            name = str(raw["name"])
            kind = str(raw["type"])
            threshold = float(raw["threshold"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"SLO spec entry {i} needs name/type/threshold: {exc}"
            ) from exc
        slos.append(
            SLO(
                name=name,
                kind=kind,
                threshold=threshold,
                metric=str(raw.get("metric", "")),
                quantile=float(raw.get("quantile", 0.95)),
            )
        )
    if not slos:
        raise ObservabilityError("SLO spec declares no objectives")
    return tuple(slos)


def _evaluate_one(
    slo: SLO,
    *,
    registry: MetricsRegistry | None,
    event_log: EventLog | None,
) -> SLOResult:
    if slo.kind == "latency_quantile":
        actual = 0.0
        detail = f"metric {slo.metric!r} has no data"
        if registry is not None:
            metric = registry.get(slo.metric)
            if isinstance(metric, Histogram):
                total = sum(s.count for s in metric.series().values())
                if total > 0:
                    actual = metric.aggregate_quantile(slo.quantile)
                    detail = (
                        f"p{int(slo.quantile * 100)} of {total} observations"
                    )
    else:
        admits = denies = opens = 0
        if event_log is not None:
            admits = len(event_log.events(EventKind.ADMIT))
            denies = len(event_log.events(EventKind.DENY))
            opens = sum(
                1
                for e in event_log.events(EventKind.BREAKER)
                if e.reason.endswith("-> open")
            )
        decisions = admits + denies
        if slo.kind == "denial_rate":
            actual = denies / decisions if decisions else 0.0
            detail = f"{denies} denials / {decisions} decisions"
        else:  # breaker_open_rate
            actual = opens / decisions if decisions else float(opens)
            detail = f"{opens} breaker opens / {decisions} decisions"
    if slo.threshold > 0:
        burn = actual / slo.threshold
    else:
        burn = 0.0 if actual == 0.0 else float("inf")
    return SLOResult(
        slo=slo,
        actual=actual,
        burn_rate=burn,
        ok=actual <= slo.threshold,
        detail=detail,
    )


def evaluate_slos(
    slos: tuple[SLO, ...] | list[SLO],
    *,
    registry: MetricsRegistry | None,
    event_log: EventLog | None,
) -> SLOReport:
    """Evaluate every objective over what *registry* and *event_log*
    recorded.  Either source may be ``None`` (its objectives then see no
    data and pass vacuously at actual 0.0)."""
    return SLOReport(
        results=tuple(
            _evaluate_one(slo, registry=registry, event_log=event_log)
            for slo in slos
        )
    )


def _evaluate_one_recorded(slo: SLO, recording) -> SLOResult:
    """One objective over a telemetry recording (``.tsrec``).

    A recording is not a registry: histograms arrive as their scraped
    ``<name>:pNN`` quantile gauges and ``<name>:count`` counters, and
    events are plain dicts (or absent — chaos recordings sample on a
    trial-index clock and skip obs events entirely, so the rate
    objectives fall back to the recorded admission counters)."""
    store = recording.store
    if slo.kind == "latency_quantile":
        gauge = f"{slo.metric}:p{int(slo.quantile * 100)}"
        actual = 0.0
        detail = f"recorded gauge {gauge!r} has no data"
        if store.select(gauge):
            actual = store.last_value(gauge)
            count = store.last_value(f"{slo.metric}:count")
            detail = (f"recorded p{int(slo.quantile * 100)} "
                      f"of {count:.0f} observations")
    else:
        admits = sum(
            1 for e in recording.events
            if e.get("kind") == EventKind.ADMIT.value
        )
        denies = sum(
            1 for e in recording.events
            if e.get("kind") == EventKind.DENY.value
        )
        opens = sum(
            1 for e in recording.events
            if e.get("kind") == EventKind.BREAKER.value
            and str(e.get("reason", "")).endswith("-> open")
        )
        source = "recorded events"
        if admits + denies == 0:
            admits = int(store.last_value(
                "admissions_total", {"granted": "true"}))
            denies = int(store.last_value(
                "admissions_total", {"granted": "false"}))
            opens = int(store.last_value(
                "breaker_transitions_total", {"to": "open"}))
            source = "recorded counters"
        decisions = admits + denies
        if slo.kind == "denial_rate":
            actual = denies / decisions if decisions else 0.0
            detail = f"{denies} denials / {decisions} decisions ({source})"
        else:  # breaker_open_rate
            actual = opens / decisions if decisions else float(opens)
            detail = (f"{opens} breaker opens / {decisions} decisions "
                      f"({source})")
    if slo.threshold > 0:
        burn = actual / slo.threshold
    else:
        burn = 0.0 if actual == 0.0 else float("inf")
    return SLOResult(
        slo=slo,
        actual=actual,
        burn_rate=burn,
        ok=actual <= slo.threshold,
        detail=detail,
    )


def evaluate_slos_from_recording(
    slos: tuple[SLO, ...] | list[SLO],
    recording,
) -> SLOReport:
    """Evaluate every objective over a loaded
    :class:`~repro.obs.telemetry.Recording` — the after-the-fact twin
    of :func:`evaluate_slos` for ``repro slo --record FILE.tsrec``."""
    return SLOReport(
        results=tuple(
            _evaluate_one_recorded(slo, recording) for slo in slos
        )
    )
