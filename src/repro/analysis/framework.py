"""Core machinery of the repo's custom AST lint framework.

The paper's architecture only works because every hop can *verify* the
policy and trust material it receives; this package applies the same
discipline to the codebase itself.  A :class:`Rule` is an
``ast.NodeVisitor`` registered under a stable identifier (``REP101``,
``REP102``, ...) with a severity and a package scope; the framework
parses each source file once, runs every applicable rule over the tree,
and filters the resulting :class:`Finding` list through per-line
``# repro: noqa[RULE]`` suppressions.

Adding a rule is three steps: subclass :class:`Rule`, set the class
attributes (``id``, ``title``, ``severity``, optionally ``packages``),
and decorate with :func:`register`.  See ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Mapping, Sequence

from repro.errors import AnalysisError

__all__ = [
    "Severity",
    "Finding",
    "Rule",
    "register",
    "registered_rules",
    "check_source",
    "suppressed_lines",
]


class Severity(Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings fail ``repro lint``; ``WARNING`` findings are
    reported (and fail the run too — the gate is "clean at merge") but
    signal style/robustness rather than correctness.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, pointing at a file position."""

    path: str
    line: int
    column: int
    rule: str
    severity: Severity
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} {self.severity.value}: {self.message}"
        )

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }


def findings_to_json(findings: Sequence[Finding]) -> str:
    """Serialize findings as a stable JSON document (machine output)."""
    return json.dumps(
        {
            "findings": [f.to_json() for f in findings],
            "count": len(findings),
        },
        indent=2,
        sort_keys=True,
    )


class Rule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set:

    * ``id`` — stable identifier used in output and ``noqa`` pragmas;
    * ``title`` — one-line description (shown by ``repro lint --list``);
    * ``severity`` — default :class:`Severity` for reports;
    * ``packages`` — dotted module prefixes the rule applies to, or
      ``None`` for every module.
    """

    id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    packages: tuple[str, ...] | None = None

    def __init__(self, path: str, module: str) -> None:
        self.path = path
        self.module = module
        self.findings: list[Finding] = []

    @classmethod
    def applies_to(cls, module: str) -> bool:
        if cls.packages is None:
            return True
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in cls.packages
        )

    def report(
        self,
        node: ast.AST,
        message: str,
        *,
        severity: Severity | None = None,
    ) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                column=getattr(node, "col_offset", 0),
                rule=self.id,
                severity=severity if severity is not None else self.severity,
                message=message,
            )
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not cls.id or not re.fullmatch(r"REP\d{3}", cls.id):
        raise AnalysisError(
            f"rule {cls.__name__} needs an id of the form REPnnn"
        )
    if cls.id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def registered_rules() -> Mapping[str, type[Rule]]:
    """The rule registry, keyed by rule id (importing
    :mod:`repro.analysis.rules` populates it)."""
    return dict(_REGISTRY)


#: ``# repro: noqa[REP101]`` or ``# repro: noqa[REP101,REP105] why...``.
#: A trailing free-text justification is encouraged (and what the repo's
#: own gate requires); ``noqa[*]`` suppresses every rule on the line.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>\*|[A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)\]"
)


def suppressed_lines(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids suppressed there (``{"*"}`` = all)."""
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(text)
        if m is None:
            continue
        spec = m.group("rules")
        if spec == "*":
            out[lineno] = frozenset({"*"})
        else:
            out[lineno] = frozenset(
                part.strip() for part in spec.split(",") if part.strip()
            )
    return out


def _is_suppressed(
    finding: Finding, suppressions: Mapping[int, frozenset[str]]
) -> bool:
    rules = suppressions.get(finding.line)
    if rules is None:
        return False
    return "*" in rules or finding.rule in rules


def check_source(
    source: str,
    *,
    path: str = "<string>",
    module: str = "",
    rules: Iterable[type[Rule]] | None = None,
) -> list[Finding]:
    """Run *rules* (default: every registered rule) over one source file.

    Returns findings sorted by position, with ``noqa``-suppressed lines
    removed.  Raises :class:`AnalysisError` if the source does not parse.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise AnalysisError(f"{path}: cannot parse: {exc}") from exc
    if rules is None:
        rules = _REGISTRY.values()
    suppressions = suppressed_lines(source)
    findings: list[Finding] = []
    for rule_cls in rules:
        if not rule_cls.applies_to(module):
            continue
        rule = rule_cls(path, module)
        rule.visit(tree)
        findings.extend(
            f for f in rule.findings if not _is_suppressed(f, suppressions)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return findings
