"""The repo-specific lint rules.

Each rule encodes an invariant the reproduction depends on:

* ``REP101`` — simulator-driven code must not read the wall clock;
  certificate windows, token buckets, and reservation intervals are all
  driven by the discrete-event clock, and one ``time.time()`` makes a
  run unreproducible.
* ``REP102`` — stochastic behaviour must come from an injected, seeded
  ``random.Random``; module-level ``random.*`` calls share hidden global
  state across flows and break replay.
* ``REP103`` — ``raise Exception/ValueError/RuntimeError`` hides faults
  from the ``except ReproError`` guards the library promises; use the
  :mod:`repro.errors` hierarchy.
* ``REP104`` — key material must never reach logs or f-strings.
* ``REP105`` — mutable default arguments alias state across calls.
* ``REP106`` — observability is optional by design: metric/tracer
  handles must be fetched once, None-checked, then used, so the
  uninstrumented path stays cheap (the "one-None-check guard").
* ``REP107`` — the strict-typing gate's local proxy: every function in
  ``repro.core``/``repro.crypto``/``repro.policy`` carries complete
  annotations (parameters and return), matching what ``mypy --strict``
  enforces in CI.
* ``REP109`` — every retry loop around channel/broker/policy calls must
  be bounded: a ``while True`` that transmits or re-admits with no
  attempt counter, backoff, or deadline in sight retries a dead peer
  forever (the failure-recovery design is bounded attempts + backoff +
  circuit breaker; see :mod:`repro.core.recovery`).
* ``REP110`` — no raw monotonic timers (``time.perf_counter`` and
  friends) outside :mod:`repro.obs`: hand-rolled ``t0``/``t1`` pairs
  bypass the timing helpers (``Histogram.time()``, spans,
  ``obs_spans.phase_clock()``), so the cost they measure never reaches
  the metrics registry or a trace.
* ``REP111`` — every function in the broker/signalling layer that mints
  an admission or denial (``AdmitOutcome(...)``, ``make_denial(...)``)
  must also talk to the decision-provenance recorder
  (:mod:`repro.obs.audit`); a decision path with no recorder call is
  invisible to ``repro audit --reconcile``.
* ``REP112`` — every function in the broker/signalling layer that mints
  a *denial* must attach a :class:`~repro.obs.events.ReasonCode`
  (a ``reason_code=`` keyword, a ``ReasonCode.X`` member, or
  ``reason_code_for(exc)``); an uncoded denial cannot be bucketed by
  the SLO denial-rate machinery, the audit ledger, or an operator
  grepping the event stream.
* ``REP113`` — the telemetry/health/alert layer
  (:mod:`repro.obs.telemetry`) must not read *any* clock, calendar or
  monotonic: every verdict is a pure function of (recorded frames,
  supplied ``now``), which is what makes ``repro top --replay``
  reproduce a live incident bit-for-bit.  REP110's ``repro.obs``
  exemption does not extend here.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Rule, Severity, register

__all__ = [
    "WallClockRule",
    "GlobalRandomRule",
    "BareExceptionRule",
    "SecretExposureRule",
    "MutableDefaultRule",
    "ObsGuardRule",
    "SaltedHashSeedRule",
    "StrictAnnotationsRule",
    "UnboundedRetryRule",
    "RawTimerRule",
    "ProvenanceBypassRule",
    "UncodedDenialRule",
    "TelemetryClockRule",
]

#: Packages whose behaviour must be driven by the simulation clock.
SIMULATION_PACKAGES = ("repro.net", "repro.core", "repro.bb")


def _collect_aliases(tree: ast.AST) -> tuple[dict[str, str], dict[str, str]]:
    """Resolve import aliases: local name -> module, and local name ->
    dotted member ("from time import time" makes ``time`` -> ``time.time``)."""
    modules: dict[str, str] = {}
    members: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                members[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return modules, members


class _ImportAwareRule(Rule):
    """A rule that resolves call targets through import aliases."""

    def __init__(self, path: str, module: str) -> None:
        super().__init__(path, module)
        self._modules: dict[str, str] = {}
        self._members: dict[str, str] = {}

    def visit_Module(self, node: ast.Module) -> None:
        self._modules, self._members = _collect_aliases(node)
        self.generic_visit(node)

    def resolve(self, func: ast.expr) -> str | None:
        """Dotted path of a call target, through import aliases."""
        parts: list[str] = []
        while isinstance(func, ast.Attribute):
            parts.append(func.attr)
            func = func.value
        if not isinstance(func, ast.Name):
            return None
        root = func.id
        base = self._members.get(root) or self._modules.get(root) or root
        return ".".join([base, *reversed(parts)])


#: Calendar-clock reads.  Monotonic duration timers (``time.monotonic``,
#: ``time.perf_counter``) are not *this* rule's concern — they cannot
#: express a time of day, so they never feed simulation state — but they
#: are no longer a free-for-all either: REP110 below confines them to
#: :mod:`repro.obs`, where the blessed timing helpers live.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(_ImportAwareRule):
    id = "REP101"
    title = "no wall-clock reads in simulator-driven code"
    severity = Severity.ERROR
    packages = SIMULATION_PACKAGES

    def visit_Call(self, node: ast.Call) -> None:
        target = self.resolve(node.func)
        if target in _WALL_CLOCK:
            self.report(
                node,
                f"{target}() reads the wall clock; simulator-driven code "
                "must take the current time from the simulation clock "
                "(sim.now / at_time parameters)",
            )
        self.generic_visit(node)


#: Functions on the shared module-level random state.
_GLOBAL_RANDOM = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)


@register
class GlobalRandomRule(_ImportAwareRule):
    id = "REP102"
    title = "no module-level random.* calls; inject a seeded random.Random"
    severity = Severity.ERROR
    # The issue scope is the simulator-driven packages, but module-level
    # random state is never acceptable in library code: one call anywhere
    # perturbs every other consumer's stream.  Lint the whole package.
    packages = ("repro",)

    def visit_Call(self, node: ast.Call) -> None:
        target = self.resolve(node.func)
        if target is not None and "." in target:
            mod, _, name = target.rpartition(".")
            if mod == "random" and name in _GLOBAL_RANDOM:
                self.report(
                    node,
                    f"random.{name}() draws from hidden global state; "
                    "thread an injected, seeded random.Random through "
                    "the caller instead",
                )
        self.generic_visit(node)


_GENERIC_EXCEPTIONS = frozenset({"Exception", "ValueError", "RuntimeError"})


@register
class BareExceptionRule(Rule):
    id = "REP103"
    title = "raise repro.errors subclasses, not bare builtin exceptions"
    severity = Severity.ERROR
    packages = ("repro",)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name: str | None = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _GENERIC_EXCEPTIONS:
            self.report(
                node,
                f"raise {name} escapes the 'except ReproError' guards; "
                "raise the most specific repro.errors subclass instead "
                "(add one if none fits)",
            )
        self.generic_visit(node)


#: Identifier substrings that indicate key material.
_SECRET_MARKERS = ("private", "secret", "passphrase", "password", "signing_key")

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)


def _is_secret_name(ident: str) -> bool:
    lowered = ident.lower()
    return any(marker in lowered for marker in _SECRET_MARKERS)


def _secret_identifiers(node: ast.expr) -> list[str]:
    """Identifiers in *node* whose **rendered value** looks like key
    material.  For an attribute chain only the leaf attribute is the
    rendered value (``private.scheme`` prints a scheme name,
    ``key.private_key`` prints the key), so intermediate names along a
    chain do not count."""
    hits: list[str] = []

    def visit(sub: ast.expr) -> None:
        if isinstance(sub, ast.Attribute):
            if _is_secret_name(sub.attr):
                hits.append(sub.attr)
            base = sub.value
            while isinstance(base, ast.Attribute):
                base = base.value
            if not isinstance(base, ast.Name):
                visit(base)
            return
        if isinstance(sub, ast.Name):
            if _is_secret_name(sub.id):
                hits.append(sub.id)
            return
        for child in ast.iter_child_nodes(sub):
            if isinstance(child, ast.expr):
                visit(child)

    visit(node)
    return hits


@register
class SecretExposureRule(Rule):
    id = "REP104"
    title = "no key material in f-strings or log calls"
    severity = Severity.ERROR
    packages = ("repro",)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                for ident in _secret_identifiers(value.value):
                    self.report(
                        value,
                        f"f-string interpolates {ident!r}, which looks like "
                        "key material; never format secrets into strings",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.JoinedStr):
                    continue  # handled by visit_JoinedStr
                for ident in _secret_identifiers(arg):
                    self.report(
                        node,
                        f"log call passes {ident!r}, which looks like key "
                        "material; log key ids or fingerprints instead",
                    )
        self.generic_visit(node)


@register
class MutableDefaultRule(Rule):
    id = "REP105"
    title = "no mutable default arguments"
    severity = Severity.ERROR
    packages = ("repro",)

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = [
            *node.args.defaults,
            *(d for d in node.args.kw_defaults if d is not None),
        ]
        for default in defaults:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set", "bytearray"}
            )
            if bad:
                self.report(
                    default,
                    f"mutable default argument in {node.name}() is shared "
                    "across calls; default to None (or a frozen type) and "
                    "construct inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)


_OBS_ACCESSORS = frozenset({"get_registry", "get_tracer", "get_event_log"})


@register
class ObsGuardRule(Rule):
    id = "REP106"
    title = "obs handles: fetch once, None-check, then use"
    severity = Severity.ERROR
    packages = ("repro",)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            func = value.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _OBS_ACCESSORS:
                self.report(
                    node,
                    f"chained use of {name}() bypasses the one-None-check "
                    "guard; assign the handle to a local, test it against "
                    "None once, then use it",
                )
        self.generic_visit(node)


@register
class SaltedHashSeedRule(_ImportAwareRule):
    id = "REP108"
    title = "no builtin hash() in RNG seeds (salted per process)"
    severity = Severity.ERROR
    packages = ("repro",)

    def visit_Call(self, node: ast.Call) -> None:
        target = self.resolve(node.func)
        is_seed_sink = target == "random.Random" or (
            target is not None and target.rpartition(".")[2] == "seed"
        )
        if is_seed_sink:
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                for sub in ast.walk(arg):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "hash"
                    ):
                        self.report(
                            sub,
                            "seeding an RNG with builtin hash(): str/bytes "
                            "hashes are salted per process (PYTHONHASHSEED), "
                            "so the seed differs across runs; use "
                            "zlib.crc32/hashlib over the encoded text",
                        )
        self.generic_visit(node)


#: Packages under the ``mypy --strict`` gate (mirrored in pyproject.toml).
STRICT_PACKAGES = ("repro.core", "repro.crypto", "repro.policy")


@register
class StrictAnnotationsRule(Rule):
    id = "REP107"
    title = "strict packages: every def fully annotated"
    severity = Severity.ERROR
    packages = STRICT_PACKAGES

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        ordered = [*args.posonlyargs, *args.args]
        missing: list[str] = []
        for index, arg in enumerate(ordered):
            if index == 0 and arg.arg in {"self", "cls"}:
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(
            a.arg for a in args.kwonlyargs if a.annotation is None
        )
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if node.returns is None:
            missing.append("return")
        if missing:
            self.report(
                node,
                f"{node.name}() is missing annotations for "
                f"{', '.join(missing)}; this package is under the "
                "mypy --strict gate",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)


#: Method names whose failure typically means "the peer/service did not
#: answer" — the calls retry machinery wraps.
RETRYABLE_CALLS = frozenset(
    {"transmit", "admit", "reserve", "lookup", "decide",
     "verify_credentials"}
)

#: Identifier substrings that signal the loop is actually bounded (an
#: attempt counter, a backoff computation, a deadline budget).
_BOUND_MARKERS = (
    "attempt", "retry", "retries", "tries", "backoff", "max",
    "deadline", "remaining", "budget",
)


@register
class UnboundedRetryRule(Rule):
    id = "REP109"
    title = "retry loops around channel/broker calls must be bounded"
    severity = Severity.ERROR
    packages = ("repro",)

    @staticmethod
    def _is_constant_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    @staticmethod
    def _retryable_calls(node: ast.While) -> list[str]:
        names = []
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in RETRYABLE_CALLS
            ):
                names.append(sub.func.attr)
        return names

    @staticmethod
    def _has_bound_marker(node: ast.While) -> bool:
        for sub in ast.walk(node):
            idents: list[str] = []
            if isinstance(sub, ast.Name):
                idents.append(sub.id)
            elif isinstance(sub, ast.Attribute):
                idents.append(sub.attr)
            elif isinstance(sub, ast.arg):
                idents.append(sub.arg)
            for ident in idents:
                lowered = ident.lower()
                if any(marker in lowered for marker in _BOUND_MARKERS):
                    return True
        return False

    def visit_While(self, node: ast.While) -> None:
        if self._is_constant_true(node.test):
            calls = self._retryable_calls(node)
            if calls and not self._has_bound_marker(node):
                self.report(
                    node,
                    f"unbounded retry: 'while True' around "
                    f"{', '.join(sorted(set(calls)))}() with no attempt "
                    "counter, backoff, or deadline; bound it with "
                    "repro.core.recovery.RetryPolicy (or an explicit "
                    "attempt limit)",
                )
        self.generic_visit(node)


#: Raw monotonic clock reads: legitimate inside repro.obs (the helpers
#: are built on them), a smell everywhere else.
_RAW_TIMERS = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)


@register
class RawTimerRule(_ImportAwareRule):
    id = "REP110"
    title = "no raw monotonic timers outside repro.obs; use the helpers"
    severity = Severity.ERROR
    packages = ("repro",)

    #: The observability layer implements the blessed timing surfaces
    #: (``Histogram.time()``, ``Tracer``/``phase_clock``), so the raw
    #: clocks are its building material — exempt.
    EXEMPT_PACKAGES = ("repro.obs",)

    @classmethod
    def applies_to(cls, module: str) -> bool:
        if any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in cls.EXEMPT_PACKAGES
        ):
            return False
        return super().applies_to(module)

    def visit_Call(self, node: ast.Call) -> None:
        target = self.resolve(node.func)
        if target in _RAW_TIMERS:
            self.report(
                node,
                f"{target}() hand-rolls a timer that bypasses the "
                "observability helpers; time histogram observations with "
                "Histogram.time(), phases with Tracer spans or "
                "repro.obs.spans.phase_clock()",
            )
        self.generic_visit(node)


#: Calls that mint an admission/denial decision.
_DECISION_CONSTRUCTORS = frozenset({"AdmitOutcome", "make_denial"})

#: Call names that prove the function talks to the provenance recorder
#: (the broker's ``_audit``, the :mod:`repro.obs.audit` module helpers,
#: or a ledger handle used directly).
_PROVENANCE_RECORDERS = frozenset(
    {
        "_audit",
        "record_decision",
        "record_revocation",
        "record",
        "note_check",
        "note_retry",
        "note_recovery",
        "get_ledger",
    }
)


def _call_basename(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@register
class ProvenanceBypassRule(Rule):
    id = "REP111"
    title = "admissions/denials must reach the decision-provenance ledger"
    severity = Severity.ERROR
    packages = ("repro.bb", "repro.core.hopbyhop")

    def _check_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        decisions: list[ast.Call] = []
        has_recorder = False
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            name = _call_basename(sub)
            if name in _DECISION_CONSTRUCTORS:
                decisions.append(sub)
            elif name in _PROVENANCE_RECORDERS:
                has_recorder = True
        if has_recorder:
            return
        for call in decisions:
            name = _call_basename(call)
            self.report(
                call,
                f"{name}() mints an admission/denial in a function that "
                "never talks to the decision-provenance recorder; record "
                "it (broker _audit / repro.obs.audit.record_decision) or "
                "the decision is invisible to repro audit --reconcile",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)


#: Evidence that a denial carries a reason code: the broker/audit
#: keyword, the enum itself, or the exception-to-code mapper.
_REASON_CODE_MARKERS = frozenset({"ReasonCode", "reason_code_for"})


def _is_denial_call(node: ast.Call) -> bool:
    """A call that mints a denial: ``make_denial(...)``, an
    ``AdmitOutcome``/``IngressReport`` whose granted/accepted flag is
    literally false, or one passing ``granted=False``/``accepted=False``."""
    name = _call_basename(node)
    if name == "make_denial":
        return True
    if name not in {"AdmitOutcome", "IngressReport"}:
        return False
    if node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) and first.value is False:
            return True
    for keyword in node.keywords:
        if (
            keyword.arg in {"granted", "accepted"}
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is False
        ):
            return True
    return False


@register
class UncodedDenialRule(Rule):
    id = "REP112"
    title = "denial sites must attach a ReasonCode"
    severity = Severity.ERROR
    packages = ("repro.bb", "repro.core.hopbyhop")

    def _check_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        denials: list[ast.Call] = []
        has_reason_code = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                if _is_denial_call(sub):
                    denials.append(sub)
                if any(kw.arg == "reason_code" for kw in sub.keywords):
                    has_reason_code = True
                name = _call_basename(sub)
                if name in _REASON_CODE_MARKERS:
                    has_reason_code = True
            elif isinstance(sub, ast.Attribute):
                if isinstance(sub.value, ast.Name) and (
                    sub.value.id == "ReasonCode"
                ):
                    has_reason_code = True
            elif isinstance(sub, ast.Name):
                if sub.id in _REASON_CODE_MARKERS:
                    has_reason_code = True
        if has_reason_code:
            return
        for call in denials:
            name = _call_basename(call)
            self.report(
                call,
                f"{name}() mints a denial in a function that never "
                "attaches a ReasonCode; pass reason_code= (or derive one "
                "with repro.obs.events.reason_code_for) so the denial can "
                "be bucketed by SLOs, audit, and operators",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)


@register
class TelemetryClockRule(_ImportAwareRule):
    id = "REP113"
    title = "no clock reads in telemetry/health/alert code"
    severity = Severity.ERROR
    #: The replay-identity guarantee: health verdicts and alert
    #: transitions are pure functions of (recorded frames, supplied
    #: ``now``).  One clock read anywhere in this package and a replayed
    #: recording could diverge from the live incident it captured.
    packages = ("repro.obs.telemetry",)

    def visit_Call(self, node: ast.Call) -> None:
        target = self.resolve(node.func)
        if target in _WALL_CLOCK or target in _RAW_TIMERS:
            self.report(
                node,
                f"{target}() reads a clock inside repro.obs.telemetry; "
                "telemetry is replayable only if every verdict is a pure "
                "function of the recorded frames and the caller-supplied "
                "now — take time from sample timestamps instead",
            )
        self.generic_visit(node)


# The whole-program concurrency rules (REP120 lock-order cycles, REP121
# unguarded guarded-state access) live in their own subpackage; import
# it here so the registry and ``repro lint --list-rules`` always know
# them.  Their findings come from ``repro lint --concurrency``.
from repro.analysis import concurrency as _concurrency  # noqa: E402,F401
