"""Static verifier for policy trees.

The paper's policy files (Figures 1 and 6) are small decision trees, and
small trees accumulate big mistakes: a branch guarded by ``BW <= 10Mb/s``
nested under ``BW > 1Gb/s`` silently never grants, a missing final
``Return`` silently falls back to the engine default, a subtree whose
every leaf is DENY makes its conditions dead weight.  This module
analyzes parsed :class:`~repro.policy.engine.PolicyNode` trees — the
same trees the engine evaluates — and reports four classes of defect:

* **contradiction** — a branch condition that can never hold given the
  conditions on the path to it (or that is self-contradictory);
* **unreachable** — statements after an unconditional ``Return`` (or
  after an ``If``/``Else`` pair in which both arms always return), and
  ``Else`` arms of conditions that are always true on their path;
* **non-exhaustive** — a policy that can fall through without reaching
  a ``Return`` (the engine applies its default, usually DENY, which is
  at best implicit and at worst not what the author meant);
* **always-deny** — an ``If`` subtree in which every reachable verdict
  is DENY, so its conditions never change the outcome.

The analysis is conservative: it only derives constraints from
comparisons of a policy variable against a literal (numeric intervals,
string (in)equalities, set memberships, predicate truth), combines them
through ``and``/``not``, and treats everything else as unknown.  A
reported contradiction is therefore a real one; silence is not a proof
of correctness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Sequence

from repro.analysis.framework import Severity
from repro.policy.engine import Condition, Decision, If, PolicyNode, Return
from repro.policy.language import parse_policy
from repro.policy.rules import (
    And,
    Call,
    Comparison,
    Literal,
    Not,
    Or,
    PredicateCondition,
    Variable,
)

__all__ = [
    "PolicyFinding",
    "verify_policy",
    "verify_policy_source",
    "policy_findings_to_json",
]


@dataclass(frozen=True)
class PolicyFinding:
    """One defect in a policy tree."""

    kind: str  # contradiction | unreachable | non-exhaustive | always-deny
    message: str
    severity: Severity = Severity.WARNING

    def format(self) -> str:
        return f"{self.kind} {self.severity.value}: {self.message}"


def policy_findings_to_json(findings: Sequence[PolicyFinding]) -> str:
    return json.dumps(
        {
            "findings": [
                {
                    "kind": f.kind,
                    "severity": f.severity.value,
                    "message": f.message,
                }
                for f in findings
            ],
            "count": len(findings),
        },
        indent=2,
        sort_keys=True,
    )


# ---------------------------------------------------------------------------
# constraint environment
# ---------------------------------------------------------------------------

_NUMERIC_OPS = {"<", "<=", ">", ">=", "=", "!="}

#: Flipped operator for `Literal op Variable` normalisation.
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}

#: Negated operator, for Else-branch refinement and `not` handling.
_NEGATE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "=": "!=", "!=": "="}


@dataclass(frozen=True)
class _Interval:
    """An open/closed numeric interval; the set of values a variable may
    still take on the current path."""

    lo: float = float("-inf")
    hi: float = float("inf")
    lo_open: bool = True
    hi_open: bool = True

    def empty(self) -> bool:
        if self.lo > self.hi:
            return True
        if self.lo == self.hi and (self.lo_open or self.hi_open):
            return True
        return False

    def narrowed(self, op: str, value: float) -> "_Interval":
        iv = self
        if op == "<" and (value < iv.hi or (value == iv.hi and not iv.hi_open)):
            iv = replace(iv, hi=value, hi_open=True)
        elif op == "<=" and value < iv.hi:
            iv = replace(iv, hi=value, hi_open=False)
        elif op == ">" and (value > iv.lo or (value == iv.lo and not iv.lo_open)):
            iv = replace(iv, lo=value, lo_open=True)
        elif op == ">=" and value > iv.lo:
            iv = replace(iv, lo=value, lo_open=False)
        elif op == "=":
            iv = _Interval(value, value, False, False).intersect(iv)
        return iv

    def intersect(self, other: "_Interval") -> "_Interval":
        lo, lo_open = max(
            (self.lo, self.lo_open), (other.lo, other.lo_open)
        )
        hi, hi_open = min(
            (self.hi, not self.hi_open), (other.hi, not other.hi_open)
        )
        return _Interval(lo, hi, lo_open, not hi_open)

    def allows(self, op: str, value: float) -> bool:
        """Could ``var op value`` hold for some var in this interval?"""
        return not self.narrowed(op, value).empty()

    def implies(self, op: str, value: float) -> bool:
        """Does every var in this interval satisfy ``var op value``?"""
        if self.empty():
            return True
        negated = self.narrowed(_NEGATE[op], value)
        if op in ("=", "!="):
            # Equality splits the interval; only a point interval implies =.
            if op == "=":
                return (
                    self.lo == self.hi == value
                    and not self.lo_open
                    and not self.hi_open
                )
            return negated.empty()
        return negated.empty()


@dataclass(frozen=True)
class _Env:
    """Constraints accumulated along one root-to-branch path.

    ``intervals`` — numeric variables; ``equal``/``unequal`` — string
    variables; ``member``/``not_member`` — set-valued expressions keyed by
    their ``describe()`` text; ``truths`` — bare predicate conditions.
    """

    intervals: tuple[tuple[str, _Interval], ...] = ()
    equal: tuple[tuple[str, object], ...] = ()
    unequal: tuple[tuple[str, object], ...] = ()
    member: tuple[tuple[str, object], ...] = ()
    not_member: tuple[tuple[str, object], ...] = ()
    truths: tuple[tuple[str, bool], ...] = ()

    def interval(self, var: str) -> _Interval:
        for name, iv in self.intervals:
            if name == var:
                return iv
        return _Interval()

    def with_interval(self, var: str, iv: _Interval) -> "_Env":
        rest = tuple((n, v) for n, v in self.intervals if n != var)
        return replace(self, intervals=rest + ((var, iv),))


#: Set-valued left-hand sides use membership semantics.
_SET_VARIABLES = frozenset({"Group", "Capability"})


def _atom_parts(cond: Condition) -> tuple[str, str, object] | None:
    """Decompose a comparison into (key, op, literal value) when one side
    is a variable/call and the other a literal; None when not analyzable."""
    if not isinstance(cond, Comparison):
        return None
    lhs, op, rhs = cond.lhs, cond.op, cond.rhs
    if isinstance(rhs, (Variable, Call)) and isinstance(lhs, Literal):
        lhs, rhs = rhs, lhs
        op = _FLIP[op]
    if not isinstance(rhs, Literal):
        return None
    if isinstance(lhs, Variable):
        return lhs.name, op, rhs.value
    if isinstance(lhs, Call):
        return lhs.describe(), op, rhs.value
    return None


def _is_set_key(key: str) -> bool:
    return key in _SET_VARIABLES or key.startswith("Issued_by(")


def _add_atom(env: _Env, cond: Condition, *, negated: bool) -> _Env | None:
    """Refine *env* with one atomic condition; ``None`` = contradiction."""
    if isinstance(cond, Not):
        return _add_atom(env, cond.inner, negated=not negated)
    if isinstance(cond, PredicateCondition):
        key = cond.describe()
        want = not negated
        for name, value in env.truths:
            if name == key and value != want:
                return None
        if any(name == key for name, _ in env.truths):
            return env
        return replace(env, truths=env.truths + ((key, want),))
    parts = _atom_parts(cond)
    if parts is None:
        return env  # unknown atom: no refinement, no contradiction
    key, op, value = parts
    if negated:
        op = _NEGATE[op]
    if _is_set_key(key):
        # `Group = Atlas` means membership; ordering ops are engine errors.
        if op == "=":
            if (key, value) in env.not_member:
                return None
            if (key, value) in env.member:
                return env
            return replace(env, member=env.member + ((key, value),))
        if op == "!=":
            if (key, value) in env.member:
                return None
            if (key, value) in env.not_member:
                return env
            return replace(env, not_member=env.not_member + ((key, value),))
        return env
    if isinstance(value, (int, float)) and op in _NUMERIC_OPS:
        if op == "!=":
            iv = env.interval(key)
            if iv.implies("=", float(value)):
                return None
            return env
        iv = env.interval(key).narrowed(op, float(value))
        if iv.empty():
            return None
        return env.with_interval(key, iv)
    # String (in)equalities.
    if op == "=":
        for name, existing in env.equal:
            if name == key and existing != value:
                return None
        if (key, value) in env.unequal:
            return None
        if (key, value) in env.equal:
            return env
        return replace(env, equal=env.equal + ((key, value),))
    if op == "!=":
        if (key, value) in env.equal:
            return None
        if (key, value) in env.unequal:
            return env
        return replace(env, unequal=env.unequal + ((key, value),))
    return env


def _refine(env: _Env, cond: Condition, *, negated: bool = False) -> _Env | None:
    """Refine *env* assuming *cond* holds (or fails, when *negated*).

    Returns ``None`` when the assumption is impossible.  Conjunctions
    refine through every part; a negated conjunction and any disjunction
    refine only when a single arm remains analyzable (otherwise the env
    is returned unchanged — conservative, never unsound).
    """
    if isinstance(cond, Not):
        return _refine(env, cond.inner, negated=not negated)
    if isinstance(cond, And) and not negated:
        for part in cond.parts:
            result = _refine(env, part)
            if result is None:
                return None
            env = result
        return env
    if isinstance(cond, Or) and negated:
        # not (a or b) == not a and not b
        for part in cond.parts:
            result = _refine(env, part, negated=True)
            if result is None:
                return None
            env = result
        return env
    if isinstance(cond, Or) and not negated:
        # Satisfiable iff some arm is; no refinement unless all but the
        # satisfiable arms are contradictions and exactly one remains.
        viable = [part for part in cond.parts if _refine(env, part) is not None]
        if not viable:
            return None
        if len(viable) == 1:
            return _refine(env, viable[0])
        return env
    if isinstance(cond, And) and negated:
        # not (a and b) is a disjunction of negations: contradiction only
        # when every negated arm is impossible.
        viable = [
            part
            for part in cond.parts
            if _refine(env, part, negated=True) is not None
        ]
        if not viable:
            return None
        if len(viable) == 1:
            return _refine(env, viable[0], negated=True)
        return env
    return _add_atom(env, cond, negated=negated)


def _always_true(env: _Env, cond: Condition) -> bool:
    """Conservatively: does *cond* hold for every state admitted by *env*?"""
    return _refine(env, cond, negated=True) is None


# ---------------------------------------------------------------------------
# tree walk
# ---------------------------------------------------------------------------


def _describe_return(node: Return) -> str:
    return node.reason or f"Return {node.decision.name}"


class _Verifier:
    def __init__(self, name: str):
        self.name = name
        self.findings: list[PolicyFinding] = []

    def add(self, kind: str, message: str,
            severity: Severity = Severity.WARNING) -> None:
        self.findings.append(
            PolicyFinding(kind, f"{self.name}: {message}", severity)
        )

    # -- always-deny ---------------------------------------------------------

    def _verdicts(self, nodes: Sequence[PolicyNode]) -> set[Decision]:
        out: set[Decision] = set()
        for node in nodes:
            if isinstance(node, Return):
                out.add(node.decision)
            elif isinstance(node, If):
                out |= self._verdicts(node.then)
                out |= self._verdicts(node.orelse)
        return out

    def _check_always_deny(self, node: If) -> None:
        verdicts = self._verdicts(node.then) | self._verdicts(node.orelse)
        if verdicts == {Decision.DENY}:
            self.add(
                "always-deny",
                f"every verdict under 'If {node.condition.describe()}' is "
                "DENY; the conditions in this subtree never change the "
                "outcome (the engine default already denies)",
            )

    # -- main walk -----------------------------------------------------------

    def check_block(self, nodes: Sequence[PolicyNode], env: _Env) -> bool:
        """Analyze one statement block; True if it always returns."""
        terminated = False
        for node in nodes:
            if terminated:
                if isinstance(node, Return):
                    what = f"'{_describe_return(node)}'"
                else:
                    what = f"'If {node.condition.describe()}'"
                self.add(
                    "unreachable",
                    f"{what} is unreachable: every earlier path through "
                    "this block already returned",
                )
                continue
            if isinstance(node, Return):
                terminated = True
                continue
            assert isinstance(node, If)
            terminated = self.check_if(node, env)
        return terminated

    def check_if(self, node: If, env: _Env) -> bool:
        cond = node.condition
        then_env = _refine(env, cond)
        if then_env is None:
            self.add(
                "contradiction",
                f"condition '{cond.describe()}' can never hold on this "
                "path; its branch is dead",
            )
            then_terminates = True  # the arm never runs; don't double-report
        else:
            if node.orelse and _always_true(env, cond):
                self.add(
                    "unreachable",
                    f"condition '{cond.describe()}' always holds on this "
                    "path; the Else arm is dead",
                )
            then_terminates = self.check_block(node.then, then_env)
        if node.orelse:
            else_env = _refine(env, cond, negated=True)
            if else_env is None:
                else_terminates = True
            else:
                else_terminates = self.check_block(node.orelse, else_env)
            if then_env is not None:
                self._check_always_deny(node)
            return then_terminates and else_terminates
        if then_env is not None:
            self._check_always_deny(node)
        return False  # no Else: the If may fall through


def verify_policy(
    nodes: Sequence[PolicyNode], *, name: str = "policy"
) -> list[PolicyFinding]:
    """Statically verify a parsed policy tree; returns its defects."""
    verifier = _Verifier(name)
    exhaustive = verifier.check_block(tuple(nodes), _Env())
    if not exhaustive:
        verifier.add(
            "non-exhaustive",
            "the policy can fall through without reaching a Return; add "
            "an explicit final 'Return DENY' (the engine default applies "
            "silently otherwise)",
        )
    return verifier.findings


def verify_policy_source(
    source: str, *, name: str = "policy"
) -> list[PolicyFinding]:
    """Parse *source* (the paper's syntax) and verify the resulting tree.

    Raises :class:`~repro.errors.PolicySyntaxError` on parse failure.
    """
    return verify_policy(parse_policy(source), name=name)
