"""Static analysis for the reproduction itself.

Three layers, mirroring the paper's "verify before you commit bandwidth"
discipline applied to our own artifacts:

* :mod:`repro.analysis.framework` + :mod:`repro.analysis.rules` — a
  custom AST lint framework with repo-specific rules (``repro lint``);
* :mod:`repro.analysis.policycheck` — a static verifier for policy-file
  trees (``repro lint-policy``), also run when a
  :class:`~repro.bb.policyserver.PolicyServer` loads an engine;
* the strict-typing gate — ``REP107`` locally plus ``mypy --strict`` in
  CI over ``repro.core``, ``repro.crypto``, ``repro.policy``.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog and how to add a
rule.
"""

from repro.analysis.framework import (
    Finding,
    Rule,
    Severity,
    check_source,
    register,
    registered_rules,
    suppressed_lines,
)
from repro.analysis.policycheck import (
    PolicyFinding,
    verify_policy,
    verify_policy_source,
)
from repro.analysis.runner import default_root, lint_paths, render_findings

__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "check_source",
    "register",
    "registered_rules",
    "suppressed_lines",
    "PolicyFinding",
    "verify_policy",
    "verify_policy_source",
    "default_root",
    "lint_paths",
    "render_findings",
]
