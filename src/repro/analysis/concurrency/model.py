"""Data model of the concurrency-soundness pass.

The unit of reasoning is the **static lock node**: one `threading.Lock`
/ ``threading.RLock`` *declaration site*, identified by the attribute it
is stored in (``repro.bb.broker.BandwidthBroker._lock``) or the
module-global name that binds it (``repro.obs.metrics._global_lock``).
All runtime instances of a class share one node — the discipline we are
checking ("never acquire a broker lock while holding a reservation-table
lock") is a property of the *code*, not of individual objects.

The :class:`LockOrderGraph` holds the may-acquire-while-holding
relation: an edge ``A -> B`` means some code path acquires ``B`` (maybe
through a chain of calls) while already holding ``A``.  A cycle in this
graph is a potential deadlock (rule ``REP120``): two threads entering
the cycle from different nodes can each hold the lock the other needs.

A lock passed into a constructor rather than freshly created (the
metrics instruments share their registry's ``RLock``) is the *same*
runtime object under a second name; :class:`LockAliases` is the
union-find that folds such aliases onto the declaration that actually
created the lock, so sharing a lock never fabricates an ordering edge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = [
    "LockNode",
    "EdgeWitness",
    "LockEdge",
    "LockAliases",
    "LockOrderGraph",
]

#: Lock flavours, as discovered at the declaration site.
KIND_LOCK = "lock"
KIND_RLOCK = "rlock"
#: The attribute stores a lock received from a constructor parameter:
#: an alias of whatever its callers pass in, not a lock of its own.
KIND_PARAM = "param"


@dataclass(frozen=True)
class LockNode:
    """One static lock declaration."""

    #: Stable identity: ``module.Class.attr`` or ``module.NAME``.
    key: str
    kind: str
    #: File and line of the ``threading.Lock()`` / ``RLock()`` call (or
    #: of the aliasing assignment for ``param`` locks).  The runtime
    #: witness maps real lock objects back to nodes through this site.
    path: str = ""
    line: int = 0

    @property
    def reentrant(self) -> bool:
        return self.kind == KIND_RLOCK

    def short(self) -> str:
        """Drop the common ``repro.`` prefix for human output."""
        return self.key.removeprefix("repro.")


@dataclass(frozen=True)
class EdgeWitness:
    """Why one may-acquire-while-holding edge exists: the function whose
    body induces it, and the call chain (empty for a direct nested
    ``with``) through which the inner acquisition is reached."""

    function: str
    path: str
    line: int
    chain: tuple[str, ...] = ()

    def describe(self) -> str:
        via = f" via {' -> '.join(self.chain)}" if self.chain else ""
        return f"{self.function} ({self.path}:{self.line}){via}"


class LockAliases:
    """Union-find over lock node keys (constructor-injected locks)."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        #: Which key of each alias class owns a *fresh* declaration;
        #: canonicalization prefers it so merged nodes keep the real
        #: creation site and kind.
        self._fresh: dict[str, str] = {}

    def find(self, key: str) -> str:
        root = key
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        # Path compression.
        while self._parent.get(key, key) != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, fresh_key: str, alias_key: str) -> None:
        """Declare *alias_key* to be the same runtime lock as
        *fresh_key* (the declaration that created it)."""
        fresh_root = self.find(fresh_key)
        alias_root = self.find(alias_key)
        if fresh_root == alias_root:
            return
        self._parent[alias_root] = fresh_root
        self._fresh.setdefault(fresh_root, fresh_key)

    def classes(self) -> Mapping[str, tuple[str, ...]]:
        """root -> members, for reporting."""
        out: dict[str, list[str]] = {}
        for key in self._parent:
            out.setdefault(self.find(key), []).append(key)
        return {root: tuple(sorted(members)) for root, members in out.items()}


class LockOrderGraph:
    """The may-acquire-while-holding digraph over canonical lock nodes."""

    def __init__(self) -> None:
        self._nodes: dict[str, LockNode] = {}
        self._edges: dict[tuple[str, str], list[EdgeWitness]] = {}
        #: Re-entrant self-acquisitions we deliberately did not turn
        #: into self-edges (an RLock taken while already held by the
        #: same thread), kept for reporting and witness cross-checks.
        self.reentries: dict[str, list[EdgeWitness]] = {}
        self.aliases = LockAliases()

    # -- construction ------------------------------------------------------------

    def add_node(self, node: LockNode) -> None:
        existing = self._nodes.get(node.key)
        if existing is None or existing.kind == KIND_PARAM:
            self._nodes[node.key] = node

    def add_edge(self, src: str, dst: str, witness: EdgeWitness) -> None:
        witnesses = self._edges.setdefault((src, dst), [])
        if len(witnesses) < 8:  # keep reports bounded
            witnesses.append(witness)

    def note_reentry(self, key: str, witness: EdgeWitness) -> None:
        entries = self.reentries.setdefault(key, [])
        if len(entries) < 8:
            entries.append(witness)

    # -- queries ------------------------------------------------------------------

    def node(self, key: str) -> LockNode | None:
        return self._nodes.get(key)

    def nodes(self) -> tuple[LockNode, ...]:
        return tuple(self._nodes[k] for k in sorted(self._nodes))

    def edges(self) -> Mapping[tuple[str, str], tuple[EdgeWitness, ...]]:
        return {pair: tuple(w) for pair, w in sorted(self._edges.items())}

    def successors(self, key: str) -> tuple[str, ...]:
        return tuple(
            sorted(dst for (src, dst) in self._edges if src == key)
        )

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._edges

    def __contains__(self, key: str) -> bool:
        return key in self._nodes

    # -- cycle detection ----------------------------------------------------------

    def cycles(self) -> list[tuple[str, ...]]:
        """Potential-deadlock cycles, one representative per strongly
        connected component (plus every self-loop), deterministically
        ordered.  A cycle is reported starting from its smallest key.
        """
        adj: dict[str, list[str]] = {}
        for (src, dst) in self._edges:
            adj.setdefault(src, []).append(dst)
        for outs in adj.values():
            outs.sort()

        sccs = _tarjan_sccs(sorted(self._nodes), adj)
        found: list[tuple[str, ...]] = []
        for scc in sccs:
            members = set(scc)
            if len(scc) == 1:
                key = scc[0]
                if key in adj and key in adj[key]:
                    found.append((key,))
                continue
            start = min(scc)
            cycle = _cycle_through(start, adj, members)
            if cycle:
                found.append(tuple(cycle))
        found.sort()
        return found

    def cycle_witnesses(
        self, cycle: tuple[str, ...]
    ) -> list[tuple[str, str, EdgeWitness]]:
        """One witness per edge of *cycle* (closing edge included)."""
        out: list[tuple[str, str, EdgeWitness]] = []
        for i, src in enumerate(cycle):
            dst = cycle[(i + 1) % len(cycle)]
            witnesses = self._edges.get((src, dst), ())
            if witnesses:
                out.append((src, dst, witnesses[0]))
        return out

    # -- rendering ----------------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz rendering; cycle edges are drawn red and bold."""
        cyclic_edges: set[tuple[str, str]] = set()
        for cycle in self.cycles():
            for i, src in enumerate(cycle):
                cyclic_edges.add((src, cycle[(i + 1) % len(cycle)]))
        lines = [
            "digraph lockorder {",
            "  rankdir=LR;",
            '  node [shape=box, fontname="monospace", fontsize=10];',
        ]
        for node in self.nodes():
            shape = "box" if node.kind == KIND_LOCK else "ellipse"
            lines.append(
                f'  "{node.short()}" [shape={shape}, '
                f'tooltip="{node.path}:{node.line} ({node.kind})"];'
            )
        for (src, dst), witnesses in sorted(self._edges.items()):
            src_node = self._nodes.get(src)
            dst_node = self._nodes.get(dst)
            src_label = src_node.short() if src_node else src
            dst_label = dst_node.short() if dst_node else dst
            style = (
                ' [color=red, penwidth=2.0]'
                if (src, dst) in cyclic_edges else ""
            )
            first = witnesses[0].describe() if witnesses else ""
            lines.append(
                f'  "{src_label}" -> "{dst_label}"'
                f'{style or f" [tooltip={json.dumps(first)}]"};'
            )
        lines.append("}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {
            "nodes": [
                {
                    "key": n.key,
                    "kind": n.kind,
                    "path": n.path,
                    "line": n.line,
                }
                for n in self.nodes()
            ],
            "edges": [
                {
                    "src": src,
                    "dst": dst,
                    "witnesses": [w.describe() for w in witnesses],
                }
                for (src, dst), witnesses in sorted(self._edges.items())
            ],
            "aliases": {
                root: list(members)
                for root, members in sorted(self.aliases.classes().items())
            },
            "cycles": [list(c) for c in self.cycles()],
        }

    def summary(self) -> str:
        cycles = self.cycles()
        lines = [
            f"lock-order graph: {len(self._nodes)} lock(s), "
            f"{len(self._edges)} may-acquire-while-holding edge(s), "
            f"{len(cycles)} cycle(s)"
        ]
        for node in self.nodes():
            succ = self.successors(node.key)
            arrow = f" -> {', '.join(self._short(s) for s in succ)}" if succ else ""
            lines.append(f"  [{node.kind:<5s}] {node.short()}{arrow}")
        for cycle in cycles:
            pretty = " -> ".join(self._short(k) for k in (*cycle, cycle[0]))
            lines.append(f"  CYCLE: {pretty}")
        return "\n".join(lines)

    def _short(self, key: str) -> str:
        node = self._nodes.get(key)
        return node.short() if node else key


def _tarjan_sccs(
    nodes: Iterable[str], adj: Mapping[str, list[str]]
) -> list[list[str]]:
    """Iterative Tarjan strongly-connected components (stable order)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = iter(range(1 << 30))

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, Iterator[str]]] = [(root, iter(adj.get(root, ())))]
        index[root] = lowlink[root] = next(counter)
        stack.append(root)
        on_stack.add(root)
        while work:
            v, successors = work[-1]
            advanced = False
            for w in successors:
                if w not in index:
                    index[w] = lowlink[w] = next(counter)
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(adj.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index[v]:
                scc: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                sccs.append(sorted(scc))
    return sccs


def _cycle_through(
    start: str, adj: Mapping[str, list[str]], members: set[str]
) -> list[str] | None:
    """A simple cycle from *start* back to itself inside *members*."""
    path: list[str] = [start]
    seen: set[str] = {start}

    def dfs(v: str) -> bool:
        for w in adj.get(v, ()):
            if w not in members:
                continue
            if w == start:
                return True
            if w in seen:
                continue
            seen.add(w)
            path.append(w)
            if dfs(w):
                return True
            path.pop()
        return False

    return path if dfs(start) else None
