"""Concurrency-soundness analysis: lock-order graph, deadlock
detection, guarded-state inference, and a runtime lock witness.

PR 5 made the signalling path concurrent; the broker-fleet roadmap item
wants to shard it much further.  This package is the gate that makes
those steps safe to take: it proves (to a documented approximation)
that the repo's ~24 locks compose without deadlock and that the state
they guard is not quietly touched lock-free.

* :mod:`~repro.analysis.concurrency.extract` — AST/type extraction;
* :mod:`~repro.analysis.concurrency.lockgraph` — the whole-program
  may-acquire-while-holding graph and cycle detection (``REP120``);
* :mod:`~repro.analysis.concurrency.guarded` — guarded-state inference
  (``REP121``) with noqa + committed-baseline escape hatches;
* :mod:`~repro.analysis.concurrency.witness` — an opt-in runtime lock
  witness (``pytest --lock-witness``, ``repro chaos --witness``) that
  records real acquisition orders and cross-checks the static graph.

CLI: ``repro lint --concurrency`` and ``repro lockgraph [--dot|--json]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.concurrency.guarded import (
    Baseline,
    default_baseline_path,
    guarded_state_findings,
)
from repro.analysis.concurrency.lockgraph import (
    DEFAULT_MAX_DEPTH,
    build_lock_graph,
    lock_order_findings,
)
from repro.analysis.concurrency.model import LockNode, LockOrderGraph
from repro.analysis.concurrency.extract import ProgramIndex, index_sources
from repro.analysis.framework import (
    Finding,
    Rule,
    Severity,
    register,
    suppressed_lines,
)

__all__ = [
    "CONCURRENCY_RULE_IDS",
    "ConcurrencyReport",
    "analyze_sources",
    "analyze_paths",
    "Baseline",
    "default_baseline_path",
    "LockOrderGraph",
    "LockNode",
    "ProgramIndex",
]

CONCURRENCY_RULE_IDS = ("REP120", "REP121")


@register
class LockOrderCycleRule(Rule):
    """Catalog entry for ``REP120``.

    The analysis is whole-program (it needs every module's summaries at
    once), so the per-file visitor is a no-op; findings are produced by
    :func:`analyze_paths`, which ``repro lint --concurrency`` invokes.
    """

    id = "REP120"
    title = ("lock-order cycle / non-reentrant self-acquisition "
             "(potential deadlock; whole-program, via lint --concurrency)")
    severity = Severity.ERROR
    packages: tuple[str, ...] | None = None


@register
class UnguardedStateRule(Rule):
    """Catalog entry for ``REP121`` (see :class:`LockOrderCycleRule`)."""

    id = "REP121"
    title = ("lock-guarded attribute accessed outside its lock "
             "(whole-program, via lint --concurrency)")
    severity = Severity.WARNING
    packages: tuple[str, ...] | None = None


@dataclass
class ConcurrencyReport:
    """Everything one concurrency-soundness run produced."""

    graph: LockOrderGraph
    index: ProgramIndex
    #: Findings after noqa suppression *and* baseline filtering — what
    #: ``repro lint --concurrency`` prints and gates on.
    findings: list[Finding] = field(default_factory=list)
    #: Unsuppressed REP121 fingerprints (pre-baseline), for
    #: ``--write-baseline``.
    rep121_fingerprints: list[str] = field(default_factory=list)
    #: Unsuppressed cycles (pre-baseline), as baseline cycle keys.
    cycle_keys: list[str] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _apply_noqa(
    findings: Sequence[Finding], source_by_path: dict[str, str]
) -> tuple[list[int], int]:
    """Indices of findings that survive ``# repro: noqa[...]`` lines."""
    cache: dict[str, dict[int, frozenset[str]]] = {}
    kept: list[int] = []
    dropped = 0
    for i, finding in enumerate(findings):
        suppressions = cache.get(finding.path)
        if suppressions is None:
            source = source_by_path.get(finding.path)
            if source is None:
                try:
                    source = Path(finding.path).read_text(encoding="utf-8")
                except OSError:
                    source = ""
            suppressions = suppressed_lines(source)
            cache[finding.path] = suppressions
        rules = suppressions.get(finding.line)
        if rules is not None and ("*" in rules or finding.rule in rules):
            dropped += 1
            continue
        kept.append(i)
    return kept, dropped


def analyze_sources(
    sources: Sequence[tuple[str, str, str]],
    *,
    baseline: Baseline | None = None,
    max_depth: int = DEFAULT_MAX_DEPTH,
    rules: Sequence[str] = CONCURRENCY_RULE_IDS,
) -> ConcurrencyReport:
    """Run the whole-program pass over ``(module, path, source)``
    triples (the unit the synthetic-fixture tests drive directly)."""
    baseline = baseline if baseline is not None else Baseline()
    index = index_sources(sources)
    graph = build_lock_graph(index, max_depth=max_depth)
    report = ConcurrencyReport(graph=graph, index=index)
    source_by_path = {path: source for _, path, source in sources}

    if "REP120" in rules:
        paired = lock_order_findings(graph)
        kept, dropped = _apply_noqa(
            [finding for _, finding in paired], source_by_path
        )
        report.suppressed += dropped
        for i in kept:
            cycle, finding = paired[i]
            report.cycle_keys.append("|".join(sorted(cycle)))
            if baseline.allows_cycle(cycle):
                report.baselined += 1
                continue
            report.findings.append(finding)

    if "REP121" in rules:
        findings, fingerprints = guarded_state_findings(index)
        kept, dropped = _apply_noqa(findings, source_by_path)
        report.suppressed += dropped
        for i in kept:
            fingerprint = fingerprints[i]
            report.rep121_fingerprints.append(fingerprint)
            if baseline.allows_access(fingerprint):
                report.baselined += 1
                continue
            report.findings.append(findings[i])

    report.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return report


def analyze_paths(
    paths: Sequence[Path] | None = None,
    *,
    baseline_path: Path | None = None,
    max_depth: int = DEFAULT_MAX_DEPTH,
    rules: Sequence[str] = CONCURRENCY_RULE_IDS,
) -> ConcurrencyReport:
    """Run the pass over files/directories (default: the installed
    ``repro`` package, i.e. what CI gates on)."""
    from repro.analysis.runner import default_root, iter_sources

    targets = list(paths) if paths else [default_root()]
    triples = [
        (module, str(file), file.read_text(encoding="utf-8"))
        for file, module in iter_sources(targets)
    ]
    baseline = Baseline.load(
        baseline_path if baseline_path is not None else default_baseline_path()
    )
    return analyze_sources(
        triples, baseline=baseline, max_depth=max_depth, rules=rules
    )
