"""Whole-program lock-order analysis (rule ``REP120``).

Assembles the per-function summaries from
:mod:`repro.analysis.concurrency.extract` into the global
may-acquire-while-holding graph:

* a nested ``with`` inside a function adds a direct edge held -> inner;
* a call made while holding a lock adds edges from every held lock to
  every lock the callee may transitively acquire (bounded-depth closure
  over the call-graph approximation);
* a lock passed into a constructor is unified with the attribute that
  stores it (union-find), so shared locks never fabricate edges;
* re-acquiring the *same* node is legal for an ``RLock`` (recorded as a
  re-entry, not an edge) and an immediate self-deadlock for a plain
  ``Lock`` (reported even without a cycle partner).

Cycles in the resulting graph are reported as ``REP120`` findings with
one witness call chain per edge.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.concurrency.extract import FunctionSummary, ProgramIndex
from repro.analysis.concurrency.model import (
    EdgeWitness,
    KIND_LOCK,
    LockOrderGraph,
)
from repro.analysis.framework import Finding, Severity

__all__ = ["build_lock_graph", "lock_order_findings", "DEFAULT_MAX_DEPTH"]

#: How many call-graph levels the transitive may-acquire closure follows
#: before giving up on a path (deep recursion is cut, not explored).
DEFAULT_MAX_DEPTH = 8


def _unify_aliases(index: ProgramIndex, graph: LockOrderGraph) -> None:
    """Fold constructor-injected locks onto the caller's declaration.

    For every constructor call that passes one of the caller's locks,
    find which parameter received it and whether some class in the
    constructed class's MRO stores that parameter in a ``param``-kind
    lock attribute; if so the two keys are one runtime lock.
    """
    for summary in index.functions.values():
        for call in summary.calls:
            if not call.lock_args or call.target is None:
                continue
            if not call.target.endswith(".__init__"):
                continue
            class_key = call.target.rsplit(".", 1)[0]
            for param, fresh_key in call.lock_args:
                for mro_key in index.mro(class_key):
                    cls = index.classes.get(mro_key)
                    if cls is None:
                        continue
                    for decl in cls.lock_decls.values():
                        if decl.source_param == param:
                            graph.aliases.union(fresh_key, decl.key)


class _Closure:
    """Bounded transitive may-acquire sets over the call graph.

    Computed as an iterative fixpoint: each round propagates callees'
    sets one call level outward, so ``max_depth`` rounds give exactly
    the locks reachable through chains of at most ``max_depth`` calls
    (the documented call-graph depth bound).
    """

    def __init__(
        self,
        functions: Mapping[str, FunctionSummary],
        canon,
        max_depth: int,
    ) -> None:
        self.functions = functions
        self.canon = canon
        self.max_depth = max_depth
        self._sets: dict[str, frozenset[str]] = {
            key: frozenset(canon(a.lock) for a in summary.acquisitions)
            for key, summary in functions.items()
        }
        for _ in range(max_depth):
            changed = False
            for key, summary in functions.items():
                merged = set(self._sets[key])
                for call in summary.calls:
                    if call.target is not None:
                        merged |= self._sets.get(call.target, frozenset())
                if len(merged) != len(self._sets[key]):
                    self._sets[key] = frozenset(merged)
                    changed = True
            if not changed:
                break

    def may_acquire(self, key: str) -> frozenset[str]:
        return self._sets.get(key, frozenset())

    def witness_chain(
        self, key: str, target_lock: str
    ) -> tuple[str, ...] | None:
        """A call chain from *key* to a function that directly acquires
        *target_lock* (canonical), for edge reports.  BFS, shortest
        chain first, each function visited once."""
        seen: set[str] = {key}
        queue: list[tuple[str, ...]] = [(key,)]
        while queue:
            chain = queue.pop(0)
            if len(chain) > self.max_depth + 1:
                continue
            summary = self.functions.get(chain[-1])
            if summary is None:
                continue
            for acq in summary.acquisitions:
                if self.canon(acq.lock) == target_lock:
                    return chain
            for call in summary.calls:
                if call.target is not None and call.target not in seen:
                    seen.add(call.target)
                    queue.append((*chain, call.target))
        return None


def build_lock_graph(
    index: ProgramIndex, *, max_depth: int = DEFAULT_MAX_DEPTH
) -> LockOrderGraph:
    """The whole-program lock-order graph for an indexed source set."""
    graph = LockOrderGraph()
    _unify_aliases(index, graph)
    canon = graph.aliases.find

    # Nodes: every fresh declaration (param aliases fold onto their
    # creating declaration; unresolved param locks stay as nodes of
    # their own so acquisitions through them are still tracked).
    for decl in index.lock_decls.values():
        if canon(decl.key) == decl.key:
            graph.add_node(decl.node())

    closure = _Closure(index.functions, canon, max_depth)

    for summary in index.functions.values():
        for acq in summary.acquisitions:
            inner = canon(acq.lock)
            for held in acq.held:
                outer = canon(held)
                witness = EdgeWitness(
                    function=summary.key, path=summary.path, line=acq.line
                )
                if outer == inner:
                    node = graph.node(inner)
                    if node is not None and node.kind == KIND_LOCK:
                        # Non-reentrant self-acquisition: guaranteed
                        # self-deadlock, keep the self-edge.
                        graph.add_edge(outer, inner, witness)
                    else:
                        graph.note_reentry(inner, witness)
                    continue
                graph.add_edge(outer, inner, witness)
        for call in summary.calls:
            if call.target is None or not call.held:
                continue
            acquired = closure.may_acquire(call.target)
            if not acquired:
                continue
            for inner in sorted(acquired):
                chain = closure.witness_chain(call.target, inner) or (
                    call.target,
                )
                witness = EdgeWitness(
                    function=summary.key, path=summary.path,
                    line=call.line, chain=chain,
                )
                for held in call.held:
                    outer = canon(held)
                    if outer == inner:
                        node = graph.node(inner)
                        if node is not None and node.kind == KIND_LOCK:
                            graph.add_edge(outer, inner, witness)
                        else:
                            graph.note_reentry(inner, witness)
                        continue
                    graph.add_edge(outer, inner, witness)
    return graph


def lock_order_findings(
    graph: LockOrderGraph,
) -> list[tuple[tuple[str, ...], Finding]]:
    """``REP120`` findings, one per potential-deadlock cycle, paired
    with the cycle that produced each (for baseline keying)."""
    findings: list[tuple[tuple[str, ...], Finding]] = []
    for cycle in graph.cycles():
        witnesses = graph.cycle_witnesses(cycle)
        if not witnesses:  # pragma: no cover - cycles come from edges
            continue
        anchor = min(witnesses, key=lambda w: (w[2].path, w[2].line))
        _, _, anchor_witness = anchor
        pretty = " -> ".join(
            (graph.node(k).short() if graph.node(k) else k)
            for k in (*cycle, cycle[0])
        )
        details = "; ".join(
            f"{graph.node(src).short() if graph.node(src) else src}->"
            f"{graph.node(dst).short() if graph.node(dst) else dst} "
            f"in {w.describe()}"
            for src, dst, w in witnesses
        )
        if len(cycle) == 1:
            message = (
                f"non-reentrant lock {pretty.split(' -> ')[0]} may be "
                f"re-acquired while already held (self-deadlock): {details}"
            )
        else:
            message = (
                f"lock-order cycle (potential deadlock): {pretty} — {details}"
            )
        findings.append((cycle, Finding(
            path=anchor_witness.path,
            line=anchor_witness.line,
            column=0,
            rule="REP120",
            severity=Severity.ERROR,
            message=message,
        )))
    findings.sort(key=lambda cf: (cf[1].path, cf[1].line, cf[1].message))
    return findings
