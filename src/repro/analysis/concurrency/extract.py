"""AST extraction for the concurrency-soundness pass.

Two phases over the analyzed source set:

* **Phase A (indexing)** — every module is parsed once and scanned for
  classes, their base classes, the types their attributes are assigned
  (``self.reservations = ReservationTable(...)`` or parameter/field
  annotations), lock declarations (``self._lock = threading.RLock()``,
  module globals, dataclass ``field(default_factory=threading.Lock)``),
  and the return annotations of every function.  The result is a
  :class:`ProgramIndex` that later phases use as a nominal type oracle.

* **Phase B (function walk)** — each function body is walked in
  statement order tracking (a) the stack of locks held lexically via
  ``with`` statements and (b) a flow-insensitive local-variable type
  environment seeded from parameter annotations and updated by
  assignments.  The walk emits :class:`Acquisition`, :class:`CallSite`
  and :class:`AttrAccess` events annotated with the held-lock context;
  :mod:`repro.analysis.concurrency.lockgraph` and ``guarded`` assemble
  them into the whole-program lock-order graph and the guarded-state
  report.

Approximations (documented in ``docs/STATIC_ANALYSIS.md``): nominal
types only (no flow-sensitivity, no unions — the first resolvable name
in an annotation wins); calls through unresolvable receivers are
dropped; lock acquisition is recognized on ``with`` statements only
(the repo bans bare ``.acquire()`` on its own locks); nested function
bodies are walked with an empty held-lock stack since their execution
point is unknown.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.concurrency.model import (
    KIND_LOCK,
    KIND_PARAM,
    KIND_RLOCK,
    LockNode,
)
from repro.errors import AnalysisError

__all__ = [
    "LockDecl",
    "Acquisition",
    "CallSite",
    "AttrAccess",
    "FunctionSummary",
    "ClassInfo",
    "ModuleInfo",
    "ProgramIndex",
    "index_modules",
    "index_sources",
]

#: Method names treated as in-place mutation of the container they are
#: called on (``self.audit_log.append(...)`` mutates ``audit_log``).
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
    "appendleft", "popleft", "move_to_end",
})

#: Access kinds (see :class:`AttrAccess`).
READ = "read"
MUTATE = "mutate"
REBIND = "rebind"


@dataclass(frozen=True)
class LockDecl:
    """One lock declaration discovered in phase A."""

    owner: str          # class key ("module.Class") or module name
    attr: str           # attribute / global name
    kind: str           # model.KIND_*
    path: str
    line: int
    #: For ``param`` locks: the ``__init__`` parameter the lock came
    #: from, so constructor calls can unify it with the caller's lock.
    source_param: str | None = None

    @property
    def key(self) -> str:
        return f"{self.owner}.{self.attr}"

    def node(self) -> LockNode:
        return LockNode(self.key, self.kind, self.path, self.line)


@dataclass(frozen=True)
class Acquisition:
    """A ``with <lock>:`` entry, with the locks already held there."""

    lock: str                      # node key
    held: tuple[str, ...]          # node keys held when acquiring
    line: int
    col: int


@dataclass(frozen=True)
class CallSite:
    """A call to a (possibly) program-local function or constructor."""

    target: str | None             # resolved summary key, None if opaque
    held: tuple[str, ...]
    line: int
    #: For constructor calls: (param_name, lock_key) pairs for every
    #: argument that is one of the caller's lock attributes — the alias
    #: unification input.
    lock_args: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class AttrAccess:
    """One attribute access on ``self`` or on a typed receiver."""

    owner: str                     # class key the attribute belongs to
    attr: str
    kind: str                      # READ | MUTATE | REBIND
    guarded_by: tuple[str, ...]    # held lock keys owned by *owner*
    line: int
    col: int
    function: str                  # accessing function (summary key)
    in_init: bool
    cross_class: bool              # receiver was not ``self``


@dataclass
class FunctionSummary:
    """Everything the global passes need to know about one function."""

    key: str                       # "module.func" or "module.Class.method"
    name: str
    cls: str | None                # owning class key
    path: str
    line: int
    acquisitions: list[Acquisition] = dc_field(default_factory=list)
    calls: list[CallSite] = dc_field(default_factory=list)
    accesses: list[AttrAccess] = dc_field(default_factory=list)


@dataclass
class ClassInfo:
    key: str                       # "module.Class"
    name: str
    module: str
    path: str
    line: int
    bases: tuple[str, ...] = ()    # raw base-class expressions
    lock_decls: dict[str, LockDecl] = dc_field(default_factory=dict)
    #: attr -> raw type expression string ("ReservationTable",
    #: "dict[str, _StatCell]", "MetricsRegistry | None").
    attr_types: dict[str, str] = dc_field(default_factory=dict)
    method_names: set[str] = dc_field(default_factory=set)


@dataclass
class ModuleInfo:
    module: str
    path: str
    tree: ast.Module
    #: local alias -> imported module ("obs_metrics" -> "repro.obs.metrics").
    import_modules: dict[str, str] = dc_field(default_factory=dict)
    #: local alias -> dotted member ("Lock" -> "threading.Lock").
    import_members: dict[str, str] = dc_field(default_factory=dict)
    classes: dict[str, ClassInfo] = dc_field(default_factory=dict)
    global_locks: dict[str, LockDecl] = dc_field(default_factory=dict)
    #: function key -> raw return annotation string.
    return_types: dict[str, str] = dc_field(default_factory=dict)


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


def _ann_to_str(node: ast.AST | None) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return ""


def _is_lock_factory(node: ast.AST, info: ModuleInfo) -> str | None:
    """``threading.Lock()`` / ``threading.RLock()`` (through import
    aliases) -> lock kind, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    dotted: str | None = None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        base = info.import_modules.get(func.value.id, func.value.id)
        dotted = f"{base}.{func.attr}"
    elif isinstance(func, ast.Name):
        dotted = info.import_members.get(func.id)
    if dotted == "threading.Lock":
        return KIND_LOCK
    if dotted == "threading.RLock":
        return KIND_RLOCK
    return None


def _annotation_is_lock(ann: str) -> str | None:
    if re.search(r"\bRLock\b", ann):
        return KIND_RLOCK
    if re.search(r"\bLock\b", ann):
        return KIND_LOCK
    return None


# ---------------------------------------------------------------------------
# Phase A — indexing
# ---------------------------------------------------------------------------


class ProgramIndex:
    """Nominal-type oracle over the analyzed source set."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {m.module: m for m in modules}
        self.classes: dict[str, ClassInfo] = {}
        #: bare class name -> class keys sharing it.
        self._by_name: dict[str, list[str]] = {}
        self.functions: dict[str, FunctionSummary] = {}
        self.return_types: dict[str, str] = {}
        for m in modules:
            for cls in m.classes.values():
                self.classes[cls.key] = cls
                self._by_name.setdefault(cls.name, []).append(cls.key)
            self.return_types.update(m.return_types)
        self.lock_decls: dict[str, LockDecl] = {}
        for m in modules:
            self.lock_decls.update(
                {d.key: d for d in m.global_locks.values()}
            )
            for cls in m.classes.values():
                self.lock_decls.update(
                    {d.key: d for d in cls.lock_decls.values()}
                )
        # Phase B fills self.functions.

    # -- name resolution -----------------------------------------------------------

    def resolve_class_name(self, raw: str, module: str) -> str | None:
        """Resolve a raw type/base name to a class key, preferring the
        naming module's own classes, then its imports, then a unique
        program-wide match."""
        if not raw:
            return None
        raw = raw.strip()
        info = self.modules.get(module)
        if info is not None:
            if f"{module}.{raw}" in self.classes:
                return f"{module}.{raw}"
            dotted = info.import_members.get(raw)
            if dotted is not None and dotted in self.classes:
                return dotted
            if "." in raw:
                head, _, tail = raw.partition(".")
                base = info.import_modules.get(head)
                if base is not None and f"{base}.{tail}" in self.classes:
                    return f"{base}.{tail}"
        candidates = self._by_name.get(raw.rsplit(".", 1)[-1], [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_annotation(self, ann: str, module: str) -> str | None:
        """First resolvable class named in an annotation expression
        (``MetricsRegistry | None`` -> the registry class).  Container
        annotations resolve to their *value* type so that subscripting
        a ``dict[str, _StatCell]`` yields ``_StatCell``."""
        if not ann:
            return None
        m = re.match(r"\s*(dict|Dict|defaultdict|OrderedDict)\s*\[(.*)\]", ann)
        if m:
            inner = m.group(2)
            depth = 0
            for i, ch in enumerate(inner):
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                elif ch == "," and depth == 0:
                    ann = inner[i + 1:]
                    break
        m = re.match(r"\s*(list|List|tuple|Tuple|set|Set|frozenset)\s*\[(.*)\]",
                     ann)
        if m:
            ann = m.group(2)
        for ident in _IDENT_RE.findall(ann):
            if ident in ("None", "Optional", "Union", "Any", "object",
                         "str", "int", "float", "bool", "bytes"):
                continue
            resolved = self.resolve_class_name(ident, module)
            if resolved is not None:
                return resolved
        return None

    def mro(self, class_key: str) -> list[str]:
        """Program-local linearization (BFS over resolvable bases)."""
        out: list[str] = []
        queue = [class_key]
        seen: set[str] = set()
        while queue:
            key = queue.pop(0)
            if key in seen:
                continue
            seen.add(key)
            cls = self.classes.get(key)
            if cls is None:
                continue
            out.append(key)
            for base in cls.bases:
                resolved = self.resolve_class_name(base, cls.module)
                if resolved is not None:
                    queue.append(resolved)
        return out

    def find_lock_decl(self, class_key: str, attr: str) -> LockDecl | None:
        for key in self.mro(class_key):
            cls = self.classes.get(key)
            if cls is not None and attr in cls.lock_decls:
                return cls.lock_decls[attr]
        return None

    def find_attr_type(self, class_key: str, attr: str) -> str | None:
        for key in self.mro(class_key):
            cls = self.classes.get(key)
            if cls is not None and attr in cls.attr_types:
                return cls.attr_types[attr]
        return None

    def find_method(self, class_key: str, name: str) -> str | None:
        """Summary key of *name* resolved through the MRO."""
        for key in self.mro(class_key):
            cls = self.classes.get(key)
            if cls is not None and name in cls.method_names:
                return f"{key}.{name}"
        return None

    def class_locks(self, class_key: str) -> dict[str, LockDecl]:
        """Every lock attr visible on *class_key* (inherited included)."""
        out: dict[str, LockDecl] = {}
        for key in reversed(self.mro(class_key)):
            cls = self.classes.get(key)
            if cls is not None:
                out.update(cls.lock_decls)
        return out


def _scan_imports(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.import_modules[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                info.import_members[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )


def _value_type_expr(node: ast.AST) -> str:
    """Raw type expression of an assigned value, best effort."""
    if isinstance(node, ast.Call):
        try:
            return ast.unparse(node.func)
        except Exception:  # pragma: no cover
            return ""
    if isinstance(node, ast.Dict) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Call):
            return f"dict[str, {_value_type_expr(first)}]"
    if isinstance(node, (ast.List, ast.Set)) and node.elts:
        first = node.elts[0]
        if isinstance(first, ast.Call):
            return f"list[{_value_type_expr(first)}]"
    return ""


def _scan_class(info: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
    cls = ClassInfo(
        key=f"{info.module}.{node.name}",
        name=node.name,
        module=info.module,
        path=info.path,
        line=node.lineno,
        bases=tuple(_ann_to_str(b) for b in node.bases),
    )

    def note_lock(attr: str, kind: str, line: int,
                  source_param: str | None = None) -> None:
        cls.lock_decls.setdefault(attr, LockDecl(
            owner=cls.key, attr=attr, kind=kind, path=info.path,
            line=line, source_param=source_param,
        ))

    for stmt in node.body:
        # Dataclass-style: ``lock: threading.Lock = field(default_factory=...)``
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = _ann_to_str(stmt.annotation)
            kind = _annotation_is_lock(ann)
            if kind is not None:
                note_lock(stmt.target.id, kind, stmt.lineno)
            elif ann:
                cls.attr_types.setdefault(stmt.target.id, ann)
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        cls.method_names.add(stmt.name)
        ret = _ann_to_str(stmt.returns)
        if ret:
            info.return_types[f"{cls.key}.{stmt.name}"] = ret
        # Parameter annotations, for ``self.x = param`` typing below.
        param_anns: dict[str, str] = {}
        args = stmt.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            ann = _ann_to_str(a.annotation)
            if ann:
                param_anns[a.arg] = ann
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                kind = _is_lock_factory(value, info)
                if kind is not None:
                    note_lock(attr, kind, value.lineno)
                    continue
                if isinstance(value, ast.Name):
                    ann = param_anns.get(value.id, "")
                    lock_kind = _annotation_is_lock(ann)
                    if lock_kind is not None:
                        # A lock received from outside: alias node.
                        note_lock(attr, KIND_PARAM, value.lineno,
                                  source_param=value.id)
                        continue
                    if ann:
                        cls.attr_types.setdefault(attr, ann)
                        continue
                if isinstance(sub, ast.AnnAssign):
                    ann = _ann_to_str(sub.annotation)
                    lock_kind = _annotation_is_lock(ann)
                    if lock_kind is not None:
                        note_lock(attr, lock_kind, sub.lineno)
                    elif ann:
                        cls.attr_types.setdefault(attr, ann)
                    continue
                expr = _value_type_expr(value)
                if expr:
                    cls.attr_types.setdefault(attr, expr)
    return cls


def _scan_module(module: str, path: str, source: str) -> ModuleInfo:
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise AnalysisError(f"{path}: cannot parse: {exc}") from exc
    info = ModuleInfo(module=module, path=path, tree=tree)
    _scan_imports(info)
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            cls = _scan_class(info, node)
            info.classes[cls.name] = cls
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ret = _ann_to_str(node.returns)
            if ret:
                info.return_types[f"{module}.{node.name}"] = ret
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                kind = _is_lock_factory(node.value, info)
                if kind is not None:
                    info.global_locks[target.id] = LockDecl(
                        owner=module, attr=target.id, kind=kind,
                        path=path, line=node.value.lineno,
                    )
    return info


# ---------------------------------------------------------------------------
# Phase B — function walk
# ---------------------------------------------------------------------------


class _FunctionWalker:
    """Walks one function body tracking held locks and local types."""

    def __init__(
        self,
        index: ProgramIndex,
        info: ModuleInfo,
        cls: ClassInfo | None,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        summary: FunctionSummary,
    ) -> None:
        self.index = index
        self.info = info
        self.cls = cls
        self.summary = summary
        self.held: list[str] = []
        self.locals: dict[str, str] = {}   # var -> class key
        self.in_init = summary.name == "__init__"
        args = node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            ann = _ann_to_str(a.annotation)
            resolved = index.resolve_annotation(ann, info.module)
            if resolved is not None:
                self.locals[a.arg] = resolved

    # -- type inference ------------------------------------------------------------

    def _type_of(self, node: ast.AST) -> str | None:
        """Class key of an expression, or None."""
        if isinstance(node, ast.Name):
            if node.id == "self" and self.cls is not None:
                return self.cls.key
            return self.locals.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._type_of(node.value)
            if base is None:
                return None
            raw = self.index.find_attr_type(base, node.attr)
            if raw is None:
                return None
            return self.index.resolve_annotation(raw, self.info.module)
        if isinstance(node, ast.Subscript):
            # Subscripting a typed container yields its value type
            # (resolve_annotation already unwrapped containers).
            return self._type_of(node.value)
        if isinstance(node, ast.Call):
            return self._call_result_type(node)
        return None

    def _call_result_type(self, node: ast.Call) -> str | None:
        target = self._resolve_call_target(node)
        if target is None:
            return None
        kind, key = target
        if kind == "ctor":
            return key
        ret = self.index.return_types.get(key)
        if ret:
            # Resolve the annotation in the module that *defines* the
            # callee, where its names are in scope.
            return self.index.resolve_annotation(
                ret, self._defining_module(key)
            )
        return None

    def _module_alias(self, name: str) -> str | None:
        """Resolve a local name to a module: plain ``import x as y`` or
        ``from pkg import submodule as y`` (detected against the set of
        analyzed modules)."""
        base = self.info.import_modules.get(name)
        if base is not None:
            return base
        member = self.info.import_members.get(name)
        if member is not None and member in self.index.modules:
            return member
        return None

    def _defining_module(self, key: str) -> str:
        """Module that defines a summary key, for annotation scoping."""
        owner = key.rsplit(".", 1)[0]
        cls = self.index.classes.get(owner)
        if cls is not None:
            return cls.module
        if owner in self.index.modules:
            return owner
        return self.info.module

    # -- call resolution -----------------------------------------------------------

    def _resolve_call_target(
        self, node: ast.Call
    ) -> tuple[str, str] | None:
        """-> ("ctor", class_key) | ("func", summary_key) | None."""
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            as_class = self.index.resolve_class_name(name, self.info.module)
            if as_class is not None and (
                name in self.info.classes
                or self.info.import_members.get(name, "").endswith(f".{name}")
                or as_class.rsplit(".", 1)[-1] == name
            ):
                # Distinguish classes from functions by registry lookup.
                if as_class in self.index.classes:
                    return ("ctor", as_class)
            dotted = self.info.import_members.get(name)
            if dotted is not None:
                return ("func", dotted)
            return ("func", f"{self.info.module}.{name}")
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                base_mod = self._module_alias(value.id)
                if base_mod is not None:
                    dotted = f"{base_mod}.{func.attr}"
                    as_class = (
                        dotted if dotted in self.index.classes else None
                    )
                    if as_class is not None:
                        return ("ctor", as_class)
                    return ("func", dotted)
            recv = self._type_of(value)
            if recv is not None:
                method = self.index.find_method(recv, func.attr)
                if method is not None:
                    return ("func", method)
        return None

    # -- lock-reference resolution ---------------------------------------------------

    def _lock_ref(self, node: ast.AST) -> str | None:
        """Node key if *node* denotes a known lock, else None."""
        if isinstance(node, ast.Name):
            decl = self.info.global_locks.get(node.id)
            if decl is not None:
                return decl.key
            member = self.info.import_members.get(node.id)
            if member is not None and member in self.index.lock_decls:
                return member
            return None
        if isinstance(node, ast.Attribute):
            base = self._type_of(node.value)
            if base is not None:
                decl = self.index.find_lock_decl(base, node.attr)
                if decl is not None:
                    return decl.key
            # Module-global lock through a module alias.
            if isinstance(node.value, ast.Name):
                base_mod = self._module_alias(node.value.id)
                if base_mod is not None:
                    key = f"{base_mod}.{node.attr}"
                    if key in self.index.lock_decls:
                        return key
        return None

    # -- the walk -----------------------------------------------------------------

    def walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            acquired: list[str] = []
            for item in stmt.items:
                self._expr(item.context_expr)
                ref = self._lock_ref(item.context_expr)
                if ref is not None:
                    self.summary.acquisitions.append(Acquisition(
                        lock=ref,
                        held=tuple(self.held),
                        line=item.context_expr.lineno,
                        col=item.context_expr.col_offset,
                    ))
                    self.held.append(ref)
                    acquired.append(ref)
                if item.optional_vars is not None:
                    self._expr(item.optional_vars)
            self.walk_body(stmt.body)
            for _ in acquired:
                self.held.pop()
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function runs at an unknown time: walk it with no
            # held locks so its acquisitions still reach the graph.
            saved_held, self.held = self.held, []
            self.walk_body(stmt.body)
            self.held = saved_held
            return
        if isinstance(stmt, ast.ClassDef):
            return
        # Record assignments for local type inference, then walk
        # expressions generically.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                inferred = self._type_of(stmt.value)
                if inferred is not None:
                    self.locals[target.id] = inferred
                else:
                    self.locals.pop(target.id, None)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            resolved = self.index.resolve_annotation(
                _ann_to_str(stmt.annotation), self.info.module
            )
            if resolved is not None:
                self.locals[stmt.target.id] = resolved
        # Child statements & expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self._expr(child, store=_is_store_ctx(stmt, child))
            elif isinstance(child, (ast.excepthandler,)):
                for sub in child.body:
                    self._stmt(sub)
            elif isinstance(child, ast.withitem):  # pragma: no cover
                self._expr(child.context_expr)

    def _expr(self, node: ast.AST, *, store: bool = False) -> None:
        if isinstance(node, ast.Call):
            self._record_call(node)
            func = node.func
            if isinstance(func, ast.Attribute):
                # ``x.attr.mutator(...)`` mutates ``x.attr``.
                if (isinstance(func.value, ast.Attribute)
                        and func.attr in MUTATOR_METHODS):
                    self._record_access(func.value, MUTATE)
                    self._expr(func.value.value)
                else:
                    self._expr(func.value)
            else:
                self._expr(func)
            for arg in node.args:
                self._expr(arg)
            for kw in node.keywords:
                self._expr(kw.value)
            return
        if isinstance(node, ast.Subscript):
            # ``x.attr[k] = v`` / ``del x.attr[k]`` / ``x.attr[k] += v``
            # mutate ``x.attr``.
            if isinstance(node.value, ast.Attribute) and (
                store or isinstance(node.ctx, (ast.Store, ast.Del))
            ):
                self._record_access(node.value, MUTATE)
                self._expr(node.value.value)
            else:
                self._expr(node.value)
            self._expr(node.slice)
            return
        if isinstance(node, ast.Attribute):
            kind = REBIND if (
                store or isinstance(node.ctx, (ast.Store, ast.Del))
            ) else READ
            self._record_access(node, kind)
            self._expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, store=store and isinstance(
                    node, (ast.Tuple, ast.List, ast.Starred)
                ))
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter)
                for cond in child.ifs:
                    self._expr(cond)

    def _record_call(self, node: ast.Call) -> None:
        target = self._resolve_call_target(node)
        if target is None:
            return
        kind, key = target
        lock_args: list[tuple[str, str]] = []
        if kind == "ctor":
            init_key = self.index.find_method(key, "__init__")
            params = _init_params(self.index, init_key) if init_key else []
            for i, arg in enumerate(node.args):
                ref = self._lock_ref(arg)
                if ref is not None and i < len(params):
                    lock_args.append((params[i], ref))
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                ref = self._lock_ref(kw.value)
                if ref is not None:
                    lock_args.append((kw.arg, ref))
            callee = init_key or f"{key}.__init__"
        else:
            callee = key
        self.summary.calls.append(CallSite(
            target=callee,
            held=tuple(self.held),
            line=node.lineno,
            lock_args=tuple(lock_args),
        ))

    def _record_access(self, node: ast.Attribute, kind: str) -> None:
        if node.attr.startswith("__") and node.attr.endswith("__"):
            return
        owner = self._type_of(node.value)
        if owner is None or owner not in self.index.classes:
            return
        cross = not (
            isinstance(node.value, ast.Name) and node.value.id == "self"
        )
        # Locks themselves are not guarded state.
        if self.index.find_lock_decl(owner, node.attr) is not None:
            return
        owner_locks = set(self.index.class_locks(owner))
        guarded = tuple(
            held for held in self.held
            if held.rsplit(".", 1)[0] == owner
            and held.rsplit(".", 1)[-1] in owner_locks
        )
        self.summary.accesses.append(AttrAccess(
            owner=owner,
            attr=node.attr,
            kind=kind,
            guarded_by=guarded,
            line=node.lineno,
            col=node.col_offset,
            function=self.summary.key,
            in_init=self.in_init and not cross,
            cross_class=cross,
        ))


def _is_store_ctx(stmt: ast.stmt, child: ast.expr) -> bool:
    if isinstance(stmt, ast.Assign):
        return child in stmt.targets
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return child is stmt.target
    if isinstance(stmt, ast.Delete):
        return child in stmt.targets
    return False


def _init_params(index: ProgramIndex, init_key: str) -> list[str]:
    """Positional parameter names of a known ``__init__`` (self dropped)."""
    cls_key = init_key.rsplit(".", 1)[0]
    cls = index.classes.get(cls_key)
    if cls is None:
        return []
    info = index.modules.get(cls.module)
    if info is None:
        return []
    for node in info.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls.name:
            for stmt in node.body:
                if (isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt.name == "__init__"):
                    args = stmt.args
                    names = [a.arg for a in (*args.posonlyargs, *args.args)]
                    return names[1:] if names and names[0] == "self" else names
    return []


def _walk_functions(index: ProgramIndex, info: ModuleInfo) -> None:
    def do(node: ast.AST, cls: ClassInfo | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                do(child, info.classes.get(child.name))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = (
                    f"{cls.key}.{child.name}" if cls is not None
                    else f"{info.module}.{child.name}"
                )
                summary = FunctionSummary(
                    key=key, name=child.name,
                    cls=cls.key if cls is not None else None,
                    path=info.path, line=child.lineno,
                )
                walker = _FunctionWalker(index, info, cls, child, summary)
                walker.walk_body(child.body)
                index.functions[key] = summary

    do(info.tree, None)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def index_sources(
    sources: Iterable[tuple[str, str, str]]
) -> ProgramIndex:
    """Build a :class:`ProgramIndex` from ``(module, path, source)``
    triples: phase A over every module, then phase B."""
    modules = [
        _scan_module(module, path, source)
        for module, path, source in sources
    ]
    index = ProgramIndex(modules)
    for info in modules:
        _walk_functions(index, info)
    return index


def index_modules(paths: Sequence[tuple[Path, str]]) -> ProgramIndex:
    """Index ``(file, dotted-module)`` pairs from disk."""
    triples = []
    for file, module in paths:
        triples.append((module, str(file), file.read_text(encoding="utf-8")))
    return index_sources(triples)
