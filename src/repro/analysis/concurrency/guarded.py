"""Guarded-state inference (rule ``REP121``).

For every class that owns a lock, infer which of its attributes the
code treats as *lock-guarded state*, then flag accesses that bypass the
guard.  The inference is deliberately evidence-driven rather than
annotation-driven:

* an attribute is a **candidate** when it is rebound or mutated in
  place somewhere outside ``__init__`` (an attribute only ever read
  after construction cannot race with itself);
* a candidate is **guarded state** when at least
  :data:`MIN_GUARDED_ACCESSES` of its accesses happen under one of the
  owner's locks and guarded accesses form a strict majority
  ("predominantly accessed under that lock");
* every remaining unguarded access to guarded state — reads included,
  and accesses from *other* classes reaching in (``registry`` code
  poking a channel's counters) — is a ``REP121`` finding.

Two escape hatches, both requiring an explicit artifact in the tree:
``# repro: noqa[REP121] why`` on the access line, or an entry in the
committed baseline file for intentional lock-free reads
(``src/repro/analysis/concurrency/baseline.json``).  Baseline entries
are keyed by ``class.attr`` + accessing function, not line numbers, so
unrelated edits do not churn the file.

Accesses inside ``__init__`` are exempt (the object is not shared yet),
as are accesses in underscore-private methods whose *every* intra-class
call site holds the lock — the broker's ``_audit`` pattern, propagated
to a fixpoint over the call summaries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.concurrency.extract import AttrAccess, ProgramIndex
from repro.analysis.framework import Finding, Severity
from repro.errors import AnalysisError

__all__ = [
    "GuardedAttr",
    "infer_guarded_state",
    "guarded_state_findings",
    "finding_fingerprint",
    "Baseline",
    "default_baseline_path",
]

#: Minimum locked accesses before an attribute counts as guarded state.
MIN_GUARDED_ACCESSES = 2


@dataclass(frozen=True)
class GuardedAttr:
    """One inferred guarded attribute of one class."""

    owner: str            # class key
    attr: str
    lock: str             # the guarding lock's node key
    guarded: int          # accesses under the lock
    unguarded: int        # accesses outside it (pre-exemptions)


def _guarded_context_methods(index: ProgramIndex) -> dict[str, frozenset[str]]:
    """Method key -> locks that are *always* held when it runs.

    Seeds with nothing and iterates: an underscore-private method whose
    every intra-program call site either holds lock L or is itself a
    method always-under-L is treated as running under L.  Methods that
    are never called, or are called from another class, or are public,
    get no context (a public method must guard for itself).
    """
    # Collect call sites per callee: (caller_key, held_locks).
    sites: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
    for summary in index.functions.values():
        for call in summary.calls:
            if call.target is not None:
                sites.setdefault(call.target, []).append(
                    (summary.key, call.held)
                )

    context: dict[str, frozenset[str]] = {}
    for _ in range(8):  # fixpoint; tiny graphs converge in 2-3 rounds
        changed = False
        for key, summary in index.functions.items():
            if summary.cls is None:
                continue
            name = summary.name
            if not name.startswith("_") or name.startswith("__"):
                continue
            callers = sites.get(key)
            if not callers:
                continue
            held_sets: list[set[str]] = []
            ok = True
            for caller_key, held in callers:
                caller = index.functions.get(caller_key)
                if caller is None or caller.cls != summary.cls:
                    ok = False
                    break
                effective = set(held) | set(context.get(caller_key, frozenset()))
                held_sets.append(effective)
            if not ok or not held_sets:
                continue
            common = frozenset(set.intersection(*held_sets))
            if common and context.get(key, frozenset()) != common:
                context[key] = common
                changed = True
        if not changed:
            break
    return context


def infer_guarded_state(
    index: ProgramIndex,
) -> tuple[dict[tuple[str, str], GuardedAttr], list[AttrAccess]]:
    """-> (guarded attrs by (owner, attr), all relevant accesses)."""
    context = _guarded_context_methods(index)

    accesses: list[AttrAccess] = []
    for summary in index.functions.values():
        extra = context.get(summary.key, frozenset())
        for access in summary.accesses:
            if extra and not access.guarded_by:
                # Running in an always-under-lock private method: count
                # the context locks owned by the accessed class.
                inherited = tuple(
                    lock for lock in sorted(extra)
                    if lock.rsplit(".", 1)[0] == access.owner
                )
                if inherited:
                    access = AttrAccess(
                        owner=access.owner, attr=access.attr,
                        kind=access.kind, guarded_by=inherited,
                        line=access.line, col=access.col,
                        function=access.function, in_init=access.in_init,
                        cross_class=access.cross_class,
                    )
            accesses.append(access)

    per_attr: dict[tuple[str, str], list[AttrAccess]] = {}
    for access in accesses:
        if access.in_init:
            continue
        per_attr.setdefault((access.owner, access.attr), []).append(access)

    guarded_attrs: dict[tuple[str, str], GuardedAttr] = {}
    for (owner, attr), attr_accesses in per_attr.items():
        if not any(a.kind in ("rebind", "mutate") for a in attr_accesses):
            continue  # read-only after construction: cannot race
        by_lock: dict[str, int] = {}
        unguarded = 0
        for a in attr_accesses:
            if a.guarded_by:
                for lock in a.guarded_by:
                    by_lock[lock] = by_lock.get(lock, 0) + 1
            else:
                unguarded += 1
        if not by_lock:
            continue
        lock, guarded = max(by_lock.items(), key=lambda kv: (kv[1], kv[0]))
        if guarded < MIN_GUARDED_ACCESSES or guarded <= unguarded:
            continue
        guarded_attrs[(owner, attr)] = GuardedAttr(
            owner=owner, attr=attr, lock=lock,
            guarded=guarded, unguarded=unguarded,
        )
    return guarded_attrs, accesses


def finding_fingerprint(access: AttrAccess) -> str:
    """Line-independent identity of one unguarded access, for baselines."""
    return f"{access.owner}.{access.attr}:{access.function}:{access.kind}"


def guarded_state_findings(
    index: ProgramIndex,
) -> tuple[list[Finding], list[str]]:
    """-> (REP121 findings, their fingerprints, aligned by position)."""
    guarded_attrs, accesses = infer_guarded_state(index)
    findings: list[Finding] = []
    fingerprints: list[str] = []
    for access in accesses:
        if access.in_init or access.guarded_by:
            continue
        info = guarded_attrs.get((access.owner, access.attr))
        if info is None:
            continue
        owner_short = access.owner.removeprefix("repro.")
        lock_short = info.lock.removeprefix("repro.")
        verb = {
            "read": "read", "rebind": "written", "mutate": "mutated",
        }[access.kind]
        where = (
            f"from {access.function.removeprefix('repro.')} "
            if access.cross_class else ""
        )
        findings.append(Finding(
            path=_function_path(index, access.function),
            line=access.line,
            column=access.col,
            rule="REP121",
            severity=Severity.WARNING,
            message=(
                f"{owner_short}.{access.attr} is guarded state "
                f"({info.guarded} of {info.guarded + info.unguarded} "
                f"accesses hold {lock_short}) but is {verb} here "
                f"{where}without the lock; guard it, or suppress with "
                f"noqa[REP121] / the concurrency baseline if the "
                f"lock-free access is intentional"
            ),
        ))
        fingerprints.append(finding_fingerprint(access))
    order = sorted(
        range(len(findings)),
        key=lambda i: (findings[i].path, findings[i].line, findings[i].column),
    )
    return [findings[i] for i in order], [fingerprints[i] for i in order]


def _function_path(index: ProgramIndex, function_key: str) -> str:
    summary = index.functions.get(function_key)
    return summary.path if summary is not None else "<unknown>"


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / "baseline.json"


class Baseline:
    """The committed set of accepted concurrency findings.

    ``REP121`` entries are access fingerprints; ``REP120`` entries are
    cycle keys (sorted node keys joined with ``|``) — expected to stay
    empty, but the mechanism is uniform so a temporarily-accepted cycle
    is an explicit, reviewable artifact rather than a skipped CI job.
    """

    def __init__(
        self, entries: Mapping[str, Sequence[str]] | None = None
    ) -> None:
        entries = entries or {}
        self.rep121: frozenset[str] = frozenset(entries.get("REP121", ()))
        self.rep120: frozenset[str] = frozenset(entries.get("REP120", ()))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(f"{path}: unreadable baseline: {exc}") from exc
        if not isinstance(raw, dict) or "baselines" not in raw:
            raise AnalysisError(
                f"{path}: expected a JSON object with a 'baselines' key"
            )
        return cls(raw["baselines"])

    def to_json(self) -> str:
        return json.dumps(
            {
                "comment": (
                    "Accepted concurrency-soundness findings "
                    "(repro lint --concurrency).  REP121 keys are "
                    "class.attr:function:kind fingerprints of "
                    "intentional lock-free accesses; keep each one "
                    "justified in docs/STATIC_ANALYSIS.md."
                ),
                "baselines": {
                    "REP120": sorted(self.rep120),
                    "REP121": sorted(self.rep121),
                },
            },
            indent=2,
        ) + "\n"

    def save(self, path: Path) -> None:
        path.write_text(self.to_json(), encoding="utf-8")

    def allows_access(self, fingerprint: str) -> bool:
        return fingerprint in self.rep121

    def allows_cycle(self, cycle: Sequence[str]) -> bool:
        return "|".join(sorted(cycle)) in self.rep120
