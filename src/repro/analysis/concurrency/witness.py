"""Runtime lock witness: ThreadSanitizer-lite for the test suites.

The static pass (:mod:`~repro.analysis.concurrency.lockgraph`) proves an
*approximation*; this module checks the approximation against reality.
While installed, it monkeypatches :func:`threading.Lock` and
:func:`threading.RLock` so every lock created afterwards is wrapped in a
recorder that notes, per thread, the stack of witness-wrapped locks held
at every acquisition.  That yields the **observed** acquired-while-
holding graph, keyed by lock *creation site* ``(path, line)`` — the same
site the static :class:`~repro.analysis.concurrency.model.LockNode`
carries, so the two graphs can be joined.

Three checks come out of one recording:

* :meth:`LockWitness.inversions` — cycles in the observed graph itself:
  two threads really did acquire the same two locks in opposite orders
  (a deadlock that did not happen only by scheduling luck);
* :meth:`LockWitness.check_against` — observed edges between locks the
  static graph knows must be a subset of the static edges.  An
  unexpected edge means the static call-graph approximation missed an
  acquisition path and the REP120 verdict is weaker than claimed;
* re-entrant acquisition of a wrapped non-reentrant ``Lock`` raises
  immediately instead of deadlocking the suite.

Activation is always opt-in: ``pytest --lock-witness`` (fixture in
``tests/conftest.py``) or ``repro chaos --witness``.  Locks created
*before* :meth:`~LockWitness.install` (module-global locks of already-
imported modules, locks inside the stdlib) are not wrapped and therefore
not observed; the suites create their brokers/registries per test, so
everything the static graph tracks is covered in practice.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.concurrency.model import LockOrderGraph

__all__ = ["Site", "LockWitness", "WitnessViolation", "current_witness"]

# The real factories, captured at import so wrappers and the witness's
# own bookkeeping never recurse through the patch.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_STDLIB_DIR = threading.__file__.rsplit("/", 1)[0] + "/"


def _is_stdlib(path: str) -> bool:
    return path.startswith(_STDLIB_DIR) or path.startswith("<")


@dataclass(frozen=True)
class Site:
    """A lock creation site — the join key with static lock nodes."""

    path: str
    line: int

    def short(self) -> str:
        return f"{self.path.rsplit('/', 1)[-1]}:{self.line}"


class WitnessViolation(AnalysisError):
    """A non-reentrant lock was re-acquired by its holding thread.

    Raised *instead of* deadlocking the test that did it."""


def _creation_site() -> Site:
    """First stack frame outside this module and :mod:`threading`."""
    import sys

    frame = sys._getframe(2)
    skip = (__file__, threading.__file__)
    while frame is not None and frame.f_code.co_filename in skip:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - only with exotic embedding
        return Site(path="<unknown>", line=0)
    return Site(path=frame.f_code.co_filename, line=frame.f_lineno)


class _WitnessLock:
    """Wrapper recording acquisition order against the witness."""

    __slots__ = ("_inner", "_witness", "site", "reentrant", "_owner", "_depth")

    def __init__(
        self, witness: "LockWitness", site: Site, *, reentrant: bool
    ) -> None:
        self._inner = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._witness = witness
        self.site = site
        self.reentrant = reentrant
        self._owner: int | None = None
        self._depth = 0

    # The stdlib lock API surface the codebase uses.

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            if not self.reentrant:
                raise WitnessViolation(
                    f"non-reentrant lock created at {self.site.short()} "
                    "re-acquired by its holding thread (guaranteed "
                    "self-deadlock)"
                )
            got = self._inner.acquire(blocking, timeout)
            if got:
                self._depth += 1
            return got
        self._witness._before_acquire(self.site)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._owner = me
            self._depth = 1
            self._witness._did_acquire(self.site)
        return got

    def release(self) -> None:
        me = threading.get_ident()
        outermost = self._owner == me and self._depth == 1
        if outermost:
            # Clear ownership before the real release: the instant the
            # inner lock is free another thread may acquire.
            self._owner = None
            self._depth = 0
        elif self._owner == me:
            self._depth -= 1
        self._inner.release()
        if outermost:
            self._witness._did_release(self.site)

    def locked(self) -> bool:
        return self._inner.locked()

    def _at_fork_reinit(self) -> None:
        # The stdlib re-initialises its module locks after fork.
        self._inner._at_fork_reinit()
        self._owner = None
        self._depth = 0

    # ``threading.Condition`` drives its lock through this private
    # trio; without them it falls back to a try-acquire probe that is
    # wrong for reentrant locks.

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def _release_save(self):
        # Full release regardless of recursion depth (Condition.wait).
        depth = self._depth
        self._owner = None
        self._depth = 0
        if hasattr(self._inner, "_release_save"):
            inner_state = self._inner._release_save()
        else:
            self._inner.release()
            inner_state = None
        self._witness._did_release(self.site)
        return (depth, inner_state)

    def _acquire_restore(self, saved) -> None:
        depth, inner_state = saved
        self._witness._before_acquire(self.site)
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(inner_state)
        else:
            self._inner.acquire()
        self._owner = threading.get_ident()
        self._depth = depth
        self._witness._did_acquire(self.site)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "RLock" if self.reentrant else "Lock"
        return f"<witnessed {kind} from {self.site.short()}>"


class LockWitness:
    """Records real acquisition orders; one instance per installation.

    Use as a context manager (``with LockWitness() as w:``) or via
    explicit :meth:`install` / :meth:`uninstall`.
    """

    def __init__(self) -> None:
        self._mu = _REAL_LOCK()  # guards the observed-edge map
        #: (held_site, acquired_site) -> occurrence count.
        self._edges: dict[tuple[Site, Site], int] = {}
        self._held = threading.local()
        self._installed = False
        self.locks_created = 0

    # -- installation ------------------------------------------------------------

    def install(self) -> "LockWitness":
        global _ACTIVE
        if self._installed:
            return self
        if _ACTIVE is not None:
            raise AnalysisError("another LockWitness is already installed")
        threading.Lock = self._make_lock          # type: ignore[misc]
        threading.RLock = self._make_rlock        # type: ignore[misc]
        self._installed = True
        _ACTIVE = self
        return self

    def uninstall(self) -> None:
        global _ACTIVE
        if not self._installed:
            return
        threading.Lock = _REAL_LOCK               # type: ignore[misc]
        threading.RLock = _REAL_RLOCK             # type: ignore[misc]
        self._installed = False
        if _ACTIVE is self:
            _ACTIVE = None

    def __enter__(self) -> "LockWitness":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    def _make_lock(self):
        site = _creation_site()
        if _is_stdlib(site.path):
            # Library-internal locks (thread pools, loggers) are outside
            # the model; wrapping them only risks tripping on private
            # stdlib lock API and drowning reports in noise.
            return _REAL_LOCK()
        self.locks_created += 1
        return _WitnessLock(self, site, reentrant=False)

    def _make_rlock(self):
        site = _creation_site()
        if _is_stdlib(site.path):
            return _REAL_RLOCK()
        self.locks_created += 1
        return _WitnessLock(self, site, reentrant=True)

    # -- recording ---------------------------------------------------------------

    def _stack(self) -> list[Site]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _before_acquire(self, site: Site) -> None:
        stack = self._stack()
        if not stack:
            return
        with self._mu:
            for held in stack:
                if held == site:
                    # Another *instance* from the same declaration site:
                    # same static node, not an ordering edge.
                    continue
                pair = (held, site)
                self._edges[pair] = self._edges.get(pair, 0) + 1

    def _did_acquire(self, site: Site) -> None:
        self._stack().append(site)

    def _did_release(self, site: Site) -> None:
        stack = self._stack()
        # Out-of-order releases are legal (if unusual); remove the
        # innermost matching entry.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == site:
                del stack[i]
                return

    # -- queries -----------------------------------------------------------------

    def observed_edges(self) -> Mapping[tuple[Site, Site], int]:
        with self._mu:
            return dict(self._edges)

    def inversions(self) -> list[tuple[Site, ...]]:
        """Cycles actually observed: real opposite-order acquisitions."""
        from repro.analysis.concurrency.model import _tarjan_sccs

        edges = self.observed_edges()
        adj: dict[str, list[str]] = {}
        sites: dict[str, Site] = {}

        def key(s: Site) -> str:
            sites.setdefault(f"{s.path}:{s.line}", s)
            return f"{s.path}:{s.line}"

        nodes: set[str] = set()
        for (src, dst) in edges:
            nodes.add(key(src))
            nodes.add(key(dst))
            adj.setdefault(key(src), []).append(key(dst))
        out: list[tuple[Site, ...]] = []
        for scc in _tarjan_sccs(sorted(nodes), adj):
            if len(scc) > 1:
                out.append(tuple(sites[k] for k in scc))
            elif scc[0] in adj.get(scc[0], ()):
                out.append((sites[scc[0]],))
        return out

    def map_to_static(
        self, graph: "LockOrderGraph"
    ) -> dict[Site, str]:
        """Creation site -> static node key, joining on (path, line)."""
        by_site = {
            (node.path, node.line): node.key for node in graph.nodes()
        }
        mapping: dict[Site, str] = {}
        for (src, dst) in self.observed_edges():
            for site in (src, dst):
                node_key = by_site.get((site.path, site.line))
                if node_key is not None:
                    mapping[site] = node_key
        return mapping

    def check_against(
        self, graph: "LockOrderGraph"
    ) -> list[str]:
        """Discrepancy report (empty == observed behaviour is within the
        static model).

        Every observed edge whose endpoints both map to static nodes
        must exist in the static graph (after alias canonicalization);
        and any observed inversion must correspond to a static cycle —
        if the static pass said "no cycles" and the witness saw one,
        that is the loudest possible finding.
        """
        problems: list[str] = []
        mapping = self.map_to_static(graph)
        canon = graph.aliases.find
        for (src, dst), count in sorted(
            self.observed_edges().items(),
            key=lambda kv: (kv[0][0].path, kv[0][0].line,
                            kv[0][1].path, kv[0][1].line),
        ):
            src_key, dst_key = mapping.get(src), mapping.get(dst)
            if src_key is None or dst_key is None:
                continue  # a lock the static pass does not model
            a, b = canon(src_key), canon(dst_key)
            if a == b:
                continue  # aliases of one runtime lock
            if not graph.has_edge(a, b):
                problems.append(
                    f"observed acquisition order {a} -> {b} "
                    f"({count}x, e.g. {src.short()} held while taking "
                    f"{dst.short()}) is missing from the static "
                    "lock-order graph"
                )
        if self.inversions() and not graph.cycles():
            pretty = "; ".join(
                " -> ".join(s.short() for s in cycle)
                for cycle in self.inversions()
            )
            problems.append(
                f"witness observed opposite-order acquisitions ({pretty}) "
                "but the static graph is acyclic"
            )
        return problems

    def summary(self) -> str:
        edges = self.observed_edges()
        return (
            f"lock witness: {self.locks_created} lock(s) wrapped, "
            f"{len(edges)} observed order edge(s), "
            f"{len(self.inversions())} inversion(s)"
        )


#: The installed witness, if any (pytest fixture / chaos CLI hook).
_ACTIVE: LockWitness | None = None


def current_witness() -> LockWitness | None:
    return _ACTIVE


def iter_observed_pairs(
    witness: LockWitness,
) -> Iterator[tuple[Site, Site, int]]:
    """Convenience for reports: sorted (held, acquired, count)."""
    for (src, dst), count in sorted(
        witness.observed_edges().items(),
        key=lambda kv: (kv[0][0].path, kv[0][0].line,
                        kv[0][1].path, kv[0][1].line),
    ):
        yield src, dst, count
