"""File discovery and reporting for ``repro lint``.

The runner maps files on disk to dotted module names (rule scoping works
on module paths, not filesystem paths, so results do not depend on where
the repo is checked out), runs every registered rule, and renders the
findings for humans or machines.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

import repro
from repro.analysis import rules as _rules  # noqa: F401  (populates the registry)
from repro.analysis.framework import (
    Finding,
    Rule,
    check_source,
    findings_to_json,
    registered_rules,
)
from repro.errors import AnalysisError

__all__ = ["default_root", "iter_sources", "lint_paths", "render_findings"]


def default_root() -> Path:
    """The installed ``repro`` package directory — the default lint target."""
    return Path(repro.__file__).resolve().parent


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name of *path*, assuming *root* is the ``repro``
    package directory (or a directory containing it)."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if root.resolve().name == "repro":
        parts = ["repro", *parts]
    return ".".join(parts)


def iter_sources(paths: Sequence[Path]) -> Iterator[tuple[Path, str]]:
    """Yield (file, module-name) pairs for every ``.py`` under *paths*."""
    for target in paths:
        if target.is_file():
            root = target.parent
            while root.name and root.name != "repro":
                root = root.parent
            yield target, _module_name(target, root if root.name else target.parent)
        elif target.is_dir():
            root = target
            for file in sorted(target.rglob("*.py")):
                yield file, _module_name(file, root)
        else:
            raise AnalysisError(f"no such file or directory: {target}")


def lint_paths(
    paths: Sequence[Path] | None = None,
    *,
    rules: Iterable[type[Rule]] | None = None,
) -> list[Finding]:
    """Lint every Python file under *paths* (default: the repro package)."""
    targets = list(paths) if paths else [default_root()]
    findings: list[Finding] = []
    for file, module in iter_sources(targets):
        source = file.read_text(encoding="utf-8")
        findings.extend(
            check_source(source, path=str(file), module=module, rules=rules)
        )
    return findings


def render_findings(
    findings: Sequence[Finding], *, output_format: str = "human"
) -> str:
    """Render findings as a human report or a JSON document."""
    if output_format == "json":
        return findings_to_json(findings)
    if not findings:
        return "repro lint: no findings"
    lines = [f.format() for f in findings]
    errors = sum(1 for f in findings if f.severity.value == "error")
    warnings = len(findings) - errors
    lines.append(
        f"repro lint: {len(findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s))"
    )
    return "\n".join(lines)


def describe_rules() -> str:
    """One line per registered rule, for ``repro lint --list-rules``."""
    lines = []
    for rule_id, rule_cls in sorted(registered_rules().items()):
        scope = (
            ", ".join(rule_cls.packages) if rule_cls.packages else "all modules"
        )
        lines.append(
            f"{rule_id}  [{rule_cls.severity.value:<7s}] {rule_cls.title} "
            f"(scope: {scope})"
        )
    return "\n".join(lines)
