"""Analytic companions to the workload sweeps.

The offered-load experiment is, to first order, an Erlang loss system:
requests arrive Poisson at rate λ, hold for exponential time 1/μ, and a
request needs one "circuit" of ``mean_rate`` on a bottleneck of capacity
``C`` (≈ ``m = C / mean_rate`` circuits).  The blocking probability is
then Erlang B:

    B(E, m) = (E^m / m!) / Σ_{k=0..m} E^k / k!,   E = λ/μ.

These helpers compute the formula with the numerically stable recurrence
and predict the acceptance curve, so the measured sweep can be validated
against theory (within the slack introduced by heterogeneous rates and
advance-reservation time structure).
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["erlang_b", "predicted_acceptance", "offered_erlangs"]


def erlang_b(offered_erlangs_: float, servers: int) -> float:
    """Erlang B blocking probability, stable iterative form.

    ``B(E, 0) = 1``; ``B(E, m) = E·B(E, m-1) / (m + E·B(E, m-1))``.
    """
    if offered_erlangs_ < 0:
        raise SimulationError("offered load must be non-negative")
    if servers < 0:
        raise SimulationError("server count must be non-negative")
    if offered_erlangs_ == 0:
        return 0.0
    b = 1.0
    for m in range(1, servers + 1):
        b = offered_erlangs_ * b / (m + offered_erlangs_ * b)
    return b


def offered_erlangs(arrival_rate_per_s: float, mean_duration_s: float) -> float:
    """λ/μ for the loss-system analogy."""
    return arrival_rate_per_s * mean_duration_s


def predicted_acceptance(
    *,
    arrival_rate_per_s: float,
    mean_duration_s: float,
    mean_rate_mbps: float,
    bottleneck_mbps: float,
) -> float:
    """Erlang-B prediction of the acceptance ratio for a workload sweep
    point: ``1 - B(E, m)`` with ``m = bottleneck / mean_rate`` circuits."""
    if mean_rate_mbps <= 0 or bottleneck_mbps <= 0:
        raise SimulationError("rates must be positive")
    servers = max(1, int(bottleneck_mbps / mean_rate_mbps))
    energy = offered_erlangs(arrival_rate_per_s, mean_duration_s)
    return 1.0 - erlang_b(energy, servers)
