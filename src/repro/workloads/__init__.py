"""Synthetic reservation workloads: offered-load sweeps over a testbed
(the quantitative admission-control evaluation the paper leaves open)."""

from repro.workloads.analysis import (
    erlang_b,
    offered_erlangs,
    predicted_acceptance,
)
from repro.workloads.generator import (
    ReservationWorkload,
    WorkloadResult,
    WorkloadSpec,
)

__all__ = [
    "WorkloadSpec",
    "WorkloadResult",
    "ReservationWorkload",
    "erlang_b",
    "offered_erlangs",
    "predicted_acceptance",
]
