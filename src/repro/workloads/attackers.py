"""Attack workloads: adversary personas for the survivability harness.

The paper's Figure 4 demonstrates *one* misreservation; a broker fleet
that provisions policy information end to end must also survive
*sustained, adaptive* abuse.  Each persona here models one adversary
from the threat model (docs/ROBUSTNESS.md):

* :class:`FloodAttacker` — reservation flooding: a single well-formed
  user saturates the victim domain's interdomain capacity with large,
  long-lived reservations it never intends to use;
* :class:`RevocationStormAttacker` — revoke/re-issue churn against the
  verification caches: every cycle logs in for a fresh community
  credential, reserves through the victim (filling its caches), then
  revokes — forcing the reverse-index purge and cold re-verification;
* :class:`ByzantineBrokerAttacker` — a compromised hop spraying
  malformed (truncated payload, corrupted field tag, junk object) and
  *replayed* signed envelopes at the victim's ingress;
* :class:`TunnelSquatter` — claims flow slices of a tunnel it never
  reserved, hammering the end-domain claim path with unauthorized
  allocation attempts.

Personas are deterministic under an injected seeded RNG (REP102: no
global randomness) and composable with the honest generator at any
attack fraction — :mod:`repro.workloads.survivability` interleaves one
persona's ``fire`` calls with honest Poisson arrivals on the shared
simulation clock.  ``fire`` returns the *work units* the victim broker
actually spent on the attack signal (multiples of one full envelope
verification, see :data:`repro.core.hopbyhop.WORK_VERIFY`); the harness
integrates these into the victim's modelled work queue, which is how
attack processing delays honest traffic.

Personas detect defense-gate rejections by watching the armed
:class:`~repro.bb.defense.DomainDefense` counters move, never by
parsing denial strings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.codec import to_wire
from repro.core.hopbyhop import WORK_GATE, WORK_VERIFY
from repro.core.messages import make_user_rar
from repro.core.testbed import Testbed
from repro.errors import SimulationError, TunnelError

__all__ = [
    "AttackerStats",
    "AttackPersona",
    "FloodAttacker",
    "RevocationStormAttacker",
    "ByzantineBrokerAttacker",
    "TunnelSquatter",
    "PERSONAS",
    "make_persona",
]


@dataclass
class AttackerStats:
    """What one persona did and what happened to it."""

    fired: int = 0
    #: Rejected by the pre-verification defense gate (cheap for the victim).
    gate_rejected: int = 0
    #: Attack signals that were granted capacity / accepted as valid.
    admitted: int = 0
    #: Denied after full processing (policy, quota, capacity, trust).
    denied: int = 0
    #: Replayed envelope copies sent (byzantine persona).
    replays_sent: int = 0
    #: Replays rejected without any signature verification running.
    replays_rejected_before_verification: int = 0
    #: Unauthorized tunnel-slice claims attempted / succeeded (squatter).
    squats_attempted: int = 0
    squats_succeeded: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "fired": self.fired,
            "gate_rejected": self.gate_rejected,
            "admitted": self.admitted,
            "denied": self.denied,
            "replays_sent": self.replays_sent,
            "replays_rejected_before_verification":
                self.replays_rejected_before_verification,
            "squats_attempted": self.squats_attempted,
            "squats_succeeded": self.squats_succeeded,
        }


class AttackPersona:
    """Base persona: one adversary aimed at one victim domain.

    ``prepare`` runs once before the mixed load starts (stand up users,
    credentials, captured envelopes); ``fire`` launches one attack
    signal at modelled time *now* and returns the work units the victim
    spent on it.
    """

    name = ""
    #: The attack fraction the survivability harness uses by default —
    #: each persona needs a different intensity to express its harm
    #: (capacity theft needs few signals, queue drain needs many).
    default_attack_fraction = 0.6

    def __init__(
        self, testbed: Testbed, *, victim: str, source: str,
        rng: random.Random,
    ) -> None:
        if victim not in testbed.brokers:
            raise SimulationError(f"unknown victim domain {victim!r}")
        self.testbed = testbed
        self.victim = victim
        self.source = source
        self.rng = rng
        self.stats = AttackerStats()

    # -- defense-gate observation --------------------------------------------------

    def _gate_total(self) -> int:
        return sum(
            b.defense.stats.total
            for b in self.testbed.brokers.values()
            if b.defense is not None
        )

    def prepare(self, now: float = 0.0) -> None:  # pragma: no cover - trivial
        pass

    def fire(self, now: float) -> float:
        raise NotImplementedError


class FloodAttacker(AttackPersona):
    """Reservation flooding: grab the victim's capacity and sit on it.

    One attacker identity issues large, long-lived, perfectly well-formed
    reservations toward the victim domain and never claims or releases
    them.  The attacker is *adaptive*: it starts with big grabs and,
    each time capacity denies it, halves its ask — filling the crumbs
    until the interdomain link has nothing left for anyone.  Undefended,
    every honest request afterwards dies on ``CAPACITY_EXCEEDED``.  The
    per-user reservation quota is the counter-knob: the flooder plateaus
    at ``per_user_quota`` live grants (a bounded slice of the link) and
    the rest is denied cheaply at admission.
    """

    name = "flood"
    default_attack_fraction = 0.6

    def __init__(
        self, testbed: Testbed, *, victim: str, source: str,
        rng: random.Random, rate_mbps: float = 32.0,
        duration_s: float = 600.0,
    ) -> None:
        super().__init__(testbed, victim=victim, source=source, rng=rng)
        self.rate_mbps = rate_mbps
        self.duration_s = duration_s
        self._ask_mbps = rate_mbps
        self._user = None

    def prepare(self, now: float = 0.0) -> None:
        self._user = self.testbed.add_user(self.source, "flood-attacker")

    def fire(self, now: float) -> float:
        assert self._user is not None
        self.stats.fired += 1
        before = self._gate_total()
        outcome = self.testbed.reserve(
            self._user,
            source=self.source,
            destination=self.victim,
            bandwidth_mbps=self._ask_mbps,
            start=now,
            duration=self.duration_s,
        )
        if self._gate_total() > before:
            self.stats.gate_rejected += 1
            return WORK_GATE
        if outcome.granted:
            self.stats.admitted += 1
        else:
            self.stats.denied += 1
            # Adapt: whatever was left is smaller than the ask, so halve
            # it and come back for the crumbs.
            self._ask_mbps = max(1.0, self._ask_mbps / 2.0)
        # The victim ran a full verification either way (quota and
        # capacity denials happen after the signature walk).
        return WORK_VERIFY


class RevocationStormAttacker(AttackPersona):
    """Revoke/re-issue churn against the PR-5 verification caches.

    Each cycle: grid-login for a fresh proxy credential, reserve a tiny
    flow through the victim (every hop verifies and caches the new
    chain), then revoke the credential — triggering the caches'
    reverse-index purge — and cancel the reservation.  The harm is not
    capacity but *work*: every cycle forces cold verification plus an
    invalidation cascade over the entries the purge evicted.  The
    per-peer signalling rate limit at the source hop is the
    counter-knob: one identity cannot churn faster than its bucket.
    """

    name = "revocation-storm"
    default_attack_fraction = 0.91
    #: Extra work (in WORK_VERIFY multiples) one revocation costs the
    #: victim: the reverse-index purge plus the cold re-verification of
    #: the collateral entries that shared the purged fingerprints.
    cascade_work = 3.0

    def __init__(
        self, testbed: Testbed, *, victim: str, source: str,
        rng: random.Random,
    ) -> None:
        super().__init__(testbed, victim=victim, source=source, rng=rng)
        self._user = None
        self._cas = None

    def prepare(self, now: float = 0.0) -> None:
        self._user = self.testbed.add_user(self.source, "storm-attacker")
        cas = self.testbed.cas_servers.get("storm-community")
        if cas is None:
            cas = self.testbed.add_cas("storm-community")
        self._cas = cas
        cas.grant(self._user.dn, ["reserve"])

    def fire(self, now: float) -> float:
        assert self._user is not None and self._cas is not None
        self.stats.fired += 1
        credential = self._user.grid_login(self._cas, at_time=now)
        before = self._gate_total()
        outcome = self.testbed.reserve(
            self._user,
            source=self.source,
            destination=self.victim,
            bandwidth_mbps=1.0,
            start=now,
            duration=60.0,
        )
        gate_rejected = self._gate_total() > before
        # The churn itself: revoke the credential just used (purging the
        # victim's cache entries) and drop it locally so the next cycle
        # logs in cold.
        self._cas.revoke_credential(credential.certificate)
        self._user.credentials.pop(self._cas.community, None)
        if gate_rejected:
            self.stats.gate_rejected += 1
            return WORK_GATE
        if outcome.granted:
            self.stats.admitted += 1
            # Free the (tiny) capacity immediately: this persona attacks
            # the verification plane, not admission.
            self.testbed.hop_by_hop.cancel(outcome)
            # Verified, cached, then revoked: full walk plus the purge
            # cascade the revocation forces on the victim's caches.
            return WORK_VERIFY * (1.0 + self.cascade_work)
        self.stats.denied += 1
        return WORK_VERIFY


class ByzantineBrokerAttacker(AttackPersona):
    """A compromised hop spraying malformed and replayed envelopes.

    Five payload modes rotate deterministically: a truncated wire image,
    a corrupted leading field tag, random junk bytes, a non-envelope
    object, and a byte-identical *replay* of a previously sent signed
    envelope.  Undefended, every junk delivery costs the victim a decode
    attempt and every replay a full signature walk; with the gate armed,
    the token bucket clamps the spray and the replay guard rejects every
    repeated digest before verification spends anything.
    """

    name = "byzantine-broker"
    default_attack_fraction = 0.98
    _MODES = ("replay", "truncated", "replay", "badtag",
              "replay", "garbage", "junk-object")

    def __init__(
        self, testbed: Testbed, *, victim: str, source: str,
        rng: random.Random,
    ) -> None:
        super().__init__(testbed, victim=victim, source=source, rng=rng)
        self.peer = "CN=BB-evil,O=Grid"
        self._wire: bytes = b""
        self._replay_seeded = False
        self._cycle = 0

    def prepare(self, now: float = 0.0) -> None:
        # Capture one well-formed signed envelope to replay and mutate:
        # a compromised hop has plenty of legitimate traffic to record.
        user = self.testbed.add_user(self.source, "byz-capture")
        victim_bb = self.testbed.brokers[self.victim]
        request = self.testbed.make_request(
            source=self.source, destination=self.victim,
            bandwidth_mbps=5.0, start=now, duration=60.0,
        )
        envelope = make_user_rar(
            request=request,
            source_bb=victim_bb.dn,
            user=user.dn,
            user_key=user.keypair.private,
        )
        self._wire = to_wire(envelope)

    def fire(self, now: float) -> float:
        self.stats.fired += 1
        mode = self._MODES[self._cycle % len(self._MODES)]
        self._cycle += 1
        if mode == "replay":
            payload: object = self._wire
        elif mode == "truncated":
            cut = self.rng.randrange(8, max(9, len(self._wire) // 3))
            payload = self._wire[:cut]
        elif mode == "badtag":
            payload = bytes([self._wire[0] ^ 0xFF]) + self._wire[1:]
        elif mode == "garbage":
            payload = bytes(
                self.rng.getrandbits(8) for _ in range(64)
            )
        else:  # junk-object
            payload = {"not": "an envelope", "n": self._cycle}
        peer_cert = self.testbed.brokers[self.source].certificate
        protocol = self.testbed.hop_by_hop
        is_replay = mode == "replay" and self._replay_seeded
        if mode == "replay":
            self._replay_seeded = True
        before = self._gate_total()
        report = protocol.process_ingress(
            self.victim, payload, peer=self.peer, peer_kind="user",
            peer_certificate=peer_cert, at_time=now,
        )
        if is_replay:
            self.stats.replays_sent += 1
            if not report.accepted and not report.verified:
                self.stats.replays_rejected_before_verification += 1
        if not report.accepted and self._gate_total() > before:
            self.stats.gate_rejected += 1
        elif report.accepted:
            self.stats.admitted += 1
        else:
            self.stats.denied += 1
        return report.work_units


class TunnelSquatter(AttackPersona):
    """Claims flow slices of a tunnel it never reserved.

    ``prepare`` lets a legitimate owner establish an aggregate tunnel
    from the source to the victim domain; the squatter then hammers the
    victim's end-domain claim path with signed-but-unauthorized slice
    claims.  Ownership checking (:meth:`Tunnel.may_allocate`) already
    guarantees no squat ever *succeeds*; the survivable part is the
    processing cost — with defenses on, the per-peer bucket clamps the
    claim spray before verification (claims are shed-exempt but not
    rate-limit-exempt).
    """

    name = "tunnel-squatter"
    default_attack_fraction = 0.94

    def __init__(
        self, testbed: Testbed, *, victim: str, source: str,
        rng: random.Random, tunnel_mbps: float = 20.0,
    ) -> None:
        super().__init__(testbed, victim=victim, source=source, rng=rng)
        self.tunnel_mbps = tunnel_mbps
        self.tunnel = None
        self._user = None
        self._claim_wire: bytes = b""

    def prepare(self, now: float = 0.0) -> None:
        owner = self.testbed.add_user(self.source, "tunnel-owner")
        request = self.testbed.make_request(
            source=self.source, destination=self.victim,
            bandwidth_mbps=self.tunnel_mbps,
            start=now, duration=7200.0,
        )
        tunnel, outcome = self.testbed.tunnels.establish(owner, request)
        if tunnel is None:
            raise SimulationError(
                f"squatter setup: tunnel denied: {outcome.denial_reason}"
            )
        self.tunnel = tunnel
        self._user = self.testbed.add_user(self.source, "squatter")
        claim_request = self.testbed.make_request(
            source=self.source, destination=self.victim,
            bandwidth_mbps=1.0, start=now, duration=30.0,
        )
        self._claim_wire = to_wire(make_user_rar(
            request=claim_request,
            source_bb=self.testbed.brokers[self.victim].dn,
            user=self._user.dn,
            user_key=self._user.keypair.private,
        ))

    def fire(self, now: float) -> float:
        assert self.tunnel is not None and self._user is not None
        self.stats.fired += 1
        before = self._gate_total()
        report = self.testbed.hop_by_hop.process_ingress(
            self.victim, self._claim_wire, peer=str(self._user.dn),
            peer_kind="user",
            peer_certificate=self._user.certificate,
            at_time=now, operation="claim",
        )
        if not report.accepted and self._gate_total() > before:
            self.stats.gate_rejected += 1
            return report.work_units
        # The claim got past the cheap gate: the end domain spends the
        # verification, then the ownership check throws the squat out.
        self.stats.squats_attempted += 1
        try:
            end = min(now + 30.0, self.tunnel.end)
            self.testbed.tunnels.allocate_flow(
                self.tunnel.tunnel_id, self._user, 1.0,
                start=now, end=end,
            )
        except TunnelError:
            self.stats.denied += 1
        else:  # pragma: no cover - must never happen
            self.stats.squats_succeeded += 1
            self.stats.admitted += 1
        return report.work_units


#: Persona registry for the harness and the CLI.
PERSONAS: dict[str, type[AttackPersona]] = {
    cls.name: cls
    for cls in (
        FloodAttacker,
        RevocationStormAttacker,
        ByzantineBrokerAttacker,
        TunnelSquatter,
    )
}


def make_persona(
    name: str, testbed: Testbed, *, victim: str, source: str,
    rng: random.Random,
) -> AttackPersona:
    """Instantiate a persona by registry name."""
    try:
        cls = PERSONAS[name]
    except KeyError:
        raise SimulationError(
            f"unknown attack persona {name!r} "
            f"(expected one of {', '.join(sorted(PERSONAS))})"
        ) from None
    return cls(testbed, victim=victim, source=source, rng=rng)
