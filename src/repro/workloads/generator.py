"""Synthetic reservation workloads.

The paper evaluates its architecture qualitatively; the natural
*quantitative* follow-up (and the standard bandwidth-broker evaluation in
the literature it cites, e.g. the advance-reservation scheduling work
[21, 22]) is an offered-load sweep: Poisson arrivals of reservation
requests with random rates, durations, and endpoints, measuring the
acceptance ratio and link utilization as load grows.  This module
generates such workloads deterministically and drives a testbed through
them on the simulation clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bb.reservations import ReservationRequest
from repro.core.testbed import Testbed
from repro.errors import SimulationError

__all__ = ["WorkloadSpec", "WorkloadResult", "ReservationWorkload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical description of an arrival process of reservations.

    ``arrival_rate_per_s`` — Poisson arrival intensity;
    ``mean_duration_s`` — exponential holding time;
    ``rate_choices_mbps`` — requested bandwidths, drawn uniformly;
    ``pairs`` — (source, destination) domain pairs, drawn uniformly.
    """

    arrival_rate_per_s: float
    mean_duration_s: float
    rate_choices_mbps: tuple[float, ...]
    pairs: tuple[tuple[str, str], ...]
    horizon_s: float = 3600.0
    advance_notice_s: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0 or self.mean_duration_s <= 0:
            raise SimulationError("arrival rate and duration must be positive")
        if not self.rate_choices_mbps or not self.pairs:
            raise SimulationError("need at least one rate and one pair")

    def offered_load_mbps(self) -> float:
        """Mean offered load in Mb/s (arrival rate x mean rate x mean hold
        time gives Mb/s-seconds per second)."""
        mean_rate = sum(self.rate_choices_mbps) / len(self.rate_choices_mbps)
        return self.arrival_rate_per_s * self.mean_duration_s * mean_rate


@dataclass
class WorkloadResult:
    """Aggregate outcome of one workload run."""

    offered: int = 0
    accepted: int = 0
    rejected: int = 0
    rejected_by_domain: dict[str, int] = field(default_factory=dict)
    accepted_mbps_s: float = 0.0
    offered_mbps_s: float = 0.0

    @property
    def acceptance_ratio(self) -> float:
        return self.accepted / self.offered if self.offered else 0.0

    @property
    def carried_fraction(self) -> float:
        """Accepted bandwidth-time over offered bandwidth-time."""
        return (
            self.accepted_mbps_s / self.offered_mbps_s
            if self.offered_mbps_s
            else 0.0
        )


class ReservationWorkload:
    """Drives a testbed through a :class:`WorkloadSpec`."""

    def __init__(self, testbed: Testbed, spec: WorkloadSpec,
                 *, rng: random.Random | None = None):
        self.testbed = testbed
        self.spec = spec
        self.rng = rng if rng is not None else random.Random(0xB0B)
        self.result = WorkloadResult()
        self._users: dict[str, object] = {}

    def _user_for(self, domain: str):
        user = self._users.get(domain)
        if user is None:
            user = self.testbed.add_user(domain, f"load-{domain}")
            self._users[domain] = user
        return user

    def _next_request(self, now: float) -> ReservationRequest:
        source, destination = self.rng.choice(self.spec.pairs)
        rate = self.rng.choice(self.spec.rate_choices_mbps)
        duration = self.rng.expovariate(1.0 / self.spec.mean_duration_s)
        duration = max(duration, 1.0)
        start = now + self.spec.advance_notice_s
        return self.testbed.make_request(
            source=source,
            destination=destination,
            bandwidth_mbps=rate,
            start=start,
            duration=duration,
        )

    def _arrival(self) -> None:
        now = self.testbed.sim.now
        if now >= self.spec.horizon_s:
            return
        request = self._next_request(now)
        user = self._user_for(request.source_domain)
        outcome = self.testbed.hop_by_hop.reserve(user, request)
        self.result.offered += 1
        volume = request.rate_mbps * request.duration
        self.result.offered_mbps_s += volume
        if outcome.granted:
            self.result.accepted += 1
            self.result.accepted_mbps_s += volume
            self.testbed.schedule_activation(outcome)
        else:
            self.result.rejected += 1
            domain = outcome.denial_domain or "?"
            self.result.rejected_by_domain[domain] = (
                self.result.rejected_by_domain.get(domain, 0) + 1
            )
        gap = self.rng.expovariate(self.spec.arrival_rate_per_s)
        if now + gap < self.spec.horizon_s:
            self.testbed.sim.schedule(gap, self._arrival)

    def run(self) -> WorkloadResult:
        """Generate arrivals until the horizon; returns the aggregate."""
        first = self.rng.expovariate(self.spec.arrival_rate_per_s)
        self.testbed.sim.schedule(first, self._arrival)
        self.testbed.sim.run()
        return self.result
