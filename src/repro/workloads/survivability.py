"""Survivability harness: honest traffic under attack, defenses off vs on.

The question this module answers is the one the admission-plane
defenses exist for: **when an adversary runs one of the attack personas
at a given attack fraction, how much of the honest workload survives?**
One run interleaves, on the shared simulation clock:

* an honest Poisson workload (several users, small short reservations
  from the source to the destination domain), and
* one :mod:`~repro.workloads.attackers` persona aimed at a victim
  domain on the honest path, firing at
  ``attack_fraction / (1 - attack_fraction)`` times the honest rate.

The victim's *processing* is modelled as a fluid work queue: every
attack signal charges the work units the victim actually spent on it
(:class:`~repro.core.hopbyhop.IngressReport` work accounting — a full
signature walk with defenses off, a dict lookup when the gate rejects),
scaled by ``work_unit_s`` seconds per unit, and the queue drains in
real (modelled) time.  An honest request arriving to a backlog longer
than its signalling deadline times out — which is exactly how
queue-drain attacks kill honest traffic without ever being *granted*
anything.

The report carries the three survivability signals the SLO gate
evaluates — honest admission rate, honest p99 signalling latency, and
breaker-open rate — plus the persona's own counters (including the
replay-guard proof: with defenses on, 100% of replayed envelopes must
be rejected *before* signature verification).  ``repro attack
--persona <p>`` prints the off/on pair;
``benchmarks/bench_attack_survivability.py`` lands the numbers in the
BENCH trajectory.

Everything is deterministic under ``spec.seed`` (REP102/REP108): the
testbed, the honest arrivals, and the persona each derive an
independent ``random.Random`` from it via crc32.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import AlertEngine, FlightRecorder

from repro.bb.defense import DefensePolicy
from repro.core.testbed import build_linear_testbed
from repro.errors import SimulationError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.audit import ledger as obs_audit
from repro.obs.events import EventKind, EventLog, ReasonCode
from repro.obs.slo import SLO, SLOReport, evaluate_slos
from repro.workloads.attackers import AttackPersona, PERSONAS, make_persona

__all__ = [
    "SurvivabilitySpec",
    "SurvivabilityReport",
    "harness_defense_policy",
    "honest_slos",
    "run_survivability",
    "run_survivability_pair",
]

#: Histogram the harness observes honest end-to-end latency into
#: (queueing wait at the victim + protocol signalling latency).
HONEST_LATENCY_METRIC = "honest_signalling_latency_seconds"


@dataclass(frozen=True)
class SurvivabilitySpec:
    """One mixed honest+attack scenario."""

    persona: str
    seed: int = 2001
    #: Attack signals as a fraction of all signals; ``None`` uses the
    #: persona's :attr:`~repro.workloads.attackers.AttackPersona.
    #: default_attack_fraction` (each persona needs a different
    #: intensity to express its harm).
    attack_fraction: float | None = None
    horizon_s: float = 120.0
    #: Honest Poisson arrival intensity (requests per modelled second).
    honest_rate_per_s: float = 0.4
    #: Honest requests arriving to a victim backlog beyond this time
    #: out (and count as denied).
    honest_deadline_s: float = 2.5
    #: Modelled seconds one unit of victim work (= one full envelope
    #: verification) takes; scales attack work into queueing delay.
    work_unit_s: float = 0.25
    domains: tuple[str, ...] = ("A", "B", "C")
    victim: str = "B"
    honest_users: int = 8
    honest_rate_choices_mbps: tuple[float, ...] = (2.0, 3.0)
    honest_mean_duration_s: float = 10.0

    def __post_init__(self) -> None:
        if self.persona not in PERSONAS:
            raise SimulationError(
                f"unknown persona {self.persona!r} "
                f"(expected one of {', '.join(sorted(PERSONAS))})"
            )
        if self.attack_fraction is not None and not (
            0.0 < self.attack_fraction < 1.0
        ):
            raise SimulationError("attack_fraction must be in (0, 1)")
        if self.victim not in self.domains:
            raise SimulationError(
                f"victim {self.victim!r} not on the honest path"
            )
        if self.victim == self.domains[0]:
            raise SimulationError(
                "the victim must be downstream of the honest source"
            )

    @property
    def fraction(self) -> float:
        if self.attack_fraction is not None:
            return self.attack_fraction
        return PERSONAS[self.persona].default_attack_fraction

    @property
    def attack_rate_per_s(self) -> float:
        f = self.fraction
        return self.honest_rate_per_s * f / (1.0 - f)


@dataclass
class SurvivabilityReport:
    """What honest traffic retained under one attack run."""

    persona: str
    seed: int
    attack_fraction: float
    defenses_on: bool
    honest_offered: int = 0
    honest_admitted: int = 0
    honest_timed_out: int = 0
    honest_denied: int = 0
    honest_p99_latency_s: float = 0.0
    breaker_opens: int = 0
    max_backlog_s: float = 0.0
    attacker: dict[str, int] = field(default_factory=dict)
    defense_rejections: dict[str, int] = field(default_factory=dict)
    slo_report: SLOReport | None = None
    #: The run's decision-provenance ledger (for audit reconciliation).
    ledger: object | None = None
    #: Modelled time of the first attack signal (None: attack never
    #: started inside the horizon).
    attack_onset_s: float | None = None
    #: When the first CRITICAL alert fired, and the detection latency
    #: relative to the onset — the telemetry plane's headline number.
    first_critical_alert_s: float | None = None
    time_to_detect_s: float | None = None
    alert_transitions: int = 0

    @property
    def honest_admission_rate(self) -> float:
        return (
            self.honest_admitted / self.honest_offered
            if self.honest_offered else 0.0
        )

    @property
    def breaker_open_rate(self) -> float:
        return (
            self.breaker_opens / self.honest_offered
            if self.honest_offered else 0.0
        )

    def to_dict(self) -> dict[str, object]:
        slos: dict[str, object] = {}
        if self.slo_report is not None:
            slos = {
                r.slo.name: {
                    "actual": round(r.actual, 6),
                    "threshold": r.slo.threshold,
                    "ok": r.ok,
                    "burn_rate": round(r.burn_rate, 4),
                }
                for r in self.slo_report.results
            }
        return {
            "persona": self.persona,
            "seed": self.seed,
            "attack_fraction": round(self.attack_fraction, 4),
            "defenses_on": self.defenses_on,
            "honest_offered": self.honest_offered,
            "honest_admitted": self.honest_admitted,
            "honest_timed_out": self.honest_timed_out,
            "honest_denied": self.honest_denied,
            "honest_admission_rate": round(self.honest_admission_rate, 4),
            "honest_p99_latency_s": round(self.honest_p99_latency_s, 4),
            "breaker_opens": self.breaker_opens,
            "max_backlog_s": round(self.max_backlog_s, 4),
            "attacker": dict(self.attacker),
            "defense_rejections": dict(self.defense_rejections),
            "slos": slos,
            "attack_onset_s": self.attack_onset_s,
            "first_critical_alert_s": self.first_critical_alert_s,
            "time_to_detect_s": self.time_to_detect_s,
            "alert_transitions": self.alert_transitions,
        }


def harness_defense_policy() -> DefensePolicy:
    """The defense knobs the survivability harness arms.

    Tighter than the :class:`DefensePolicy` defaults: user-class peers
    get a small bucket (one identity cannot spray), domain-class peers
    a loose one (the honest aggregate through a contracted neighbour
    must never throttle), and the per-user quota clamps flooding well
    below the interdomain capacity while staying above any honest
    user's worst-case concurrency.
    """
    return DefensePolicy(
        peer_burst=4.0,
        peer_rate_per_s=0.5,
        domain_peer_burst=16.0,
        domain_peer_rate_per_s=4.0,
        per_user_quota=3,
        per_ingress_quota=64,
        replay_window_s=300.0,
        replay_capacity=8192,
        pending_watermark=32,
        shed_window_s=1.0,
    )


def honest_slos(spec: SurvivabilitySpec) -> tuple[SLO, ...]:
    """The survivability objectives for *honest* traffic.

    Evaluated against honest-only telemetry (the harness keeps a
    separate event log for honest admit/deny), so attack denials —
    which defenses-on produces by the hundreds, correctly — never burn
    the honest error budget.
    """
    return (
        SLO(
            name="honest-latency-p99",
            kind="latency_quantile",
            metric=HONEST_LATENCY_METRIC,
            quantile=0.99,
            threshold=spec.honest_deadline_s,
        ),
        SLO(name="honest-denial-rate", kind="denial_rate", threshold=0.10),
        SLO(
            name="honest-breaker-open-rate",
            kind="breaker_open_rate",
            threshold=0.25,
        ),
    )


class _WorkQueue:
    """Fluid model of the victim's signalling work backlog."""

    def __init__(self) -> None:
        self.backlog_s = 0.0
        self.max_backlog_s = 0.0
        self._at = 0.0

    def drain(self, now: float) -> float:
        if now > self._at:
            self.backlog_s = max(0.0, self.backlog_s - (now - self._at))
            self._at = now
        return self.backlog_s

    def charge(self, now: float, seconds: float) -> None:
        self.drain(now)
        self.backlog_s += seconds
        self.max_backlog_s = max(self.max_backlog_s, self.backlog_s)


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


def run_survivability(
    spec: SurvivabilitySpec,
    *,
    defenses_on: bool,
    policy: DefensePolicy | None = None,
    slos: tuple[SLO, ...] | None = None,
    recorder: "FlightRecorder | None" = None,
    alert_engine: "AlertEngine | None" = None,
    sample_interval_s: float = 1.0,
) -> SurvivabilityReport:
    """Run one mixed honest+attack scenario and measure what survived.

    With a *recorder*, the run becomes a monitored incident: the flight
    recorder samples registry + fabric probes every
    ``sample_interval_s`` of modelled time, the alert engine (defaulting
    to the fleet profile) steps after each frame, and the report gains
    the attack onset, the first CRITICAL firing, and their difference —
    **time-to-detect**, the number the ISSUE's acceptance gate reads.
    """
    report = SurvivabilityReport(
        persona=spec.persona,
        seed=spec.seed,
        attack_fraction=spec.fraction,
        defenses_on=defenses_on,
    )
    honest_rng = random.Random(
        zlib.crc32(f"honest-{spec.seed}".encode())
    )
    attack_rng = random.Random(
        zlib.crc32(f"attack-{spec.persona}-{spec.seed}".encode())
    )
    #: Honest-only lifecycle events, so the SLO denominator is honest
    #: decisions and not the attack storm.
    honest_log = EventLog()
    queue = _WorkQueue()
    honest_latencies: list[float] = []

    with obs_metrics.use_registry() as registry, \
            obs_events.use_event_log() as event_log, \
            obs_audit.use_ledger() as ledger:
        testbed = build_linear_testbed(list(spec.domains))
        if defenses_on:
            testbed.arm_defenses(
                policy if policy is not None else harness_defense_policy()
            )
        source, destination = spec.domains[0], spec.domains[-1]
        users = [
            testbed.add_user(source, f"honest-{i}")
            for i in range(spec.honest_users)
        ]
        persona: AttackPersona = make_persona(
            spec.persona, testbed,
            victim=spec.victim, source=source, rng=attack_rng,
        )
        persona.prepare(testbed.sim.now)
        sim = testbed.sim

        def honest_arrival() -> None:
            now = sim.now
            if now < spec.horizon_s:
                gap = honest_rng.expovariate(spec.honest_rate_per_s)
                if now + gap < spec.horizon_s:
                    sim.schedule(gap, honest_arrival)
                wait = queue.drain(now)
                report.honest_offered += 1
                user = honest_rng.choice(users)
                rate = honest_rng.choice(spec.honest_rate_choices_mbps)
                duration = max(
                    1.0,
                    honest_rng.expovariate(
                        1.0 / spec.honest_mean_duration_s
                    ),
                )
                if wait > spec.honest_deadline_s:
                    # The victim's work queue is longer than the
                    # signalling deadline: the request dies waiting.
                    report.honest_timed_out += 1
                    honest_latencies.append(wait)
                    registry.histogram(
                        HONEST_LATENCY_METRIC,
                        "Honest end-to-end signalling latency (victim "
                        "queueing + protocol)",
                    ).observe(wait)
                    honest_log.emit(
                        EventKind.DENY, at_time=now, domain=spec.victim,
                        user=str(user.dn), reason="signalling timed out "
                        "behind the victim's work queue",
                        reason_code=ReasonCode.DEADLINE_EXCEEDED,
                    )
                    return
                outcome = testbed.reserve(
                    user, source=source, destination=destination,
                    bandwidth_mbps=rate, start=now, duration=duration,
                )
                latency = wait + outcome.latency_s
                honest_latencies.append(latency)
                registry.histogram(
                    HONEST_LATENCY_METRIC,
                    "Honest end-to-end signalling latency (victim "
                    "queueing + protocol)",
                ).observe(latency)
                if outcome.granted and latency <= spec.honest_deadline_s:
                    report.honest_admitted += 1
                    honest_log.emit(
                        EventKind.ADMIT, at_time=now, domain=destination,
                        user=str(user.dn),
                    )
                    testbed.schedule_activation(outcome)
                else:
                    report.honest_denied += 1
                    honest_log.emit(
                        EventKind.DENY, at_time=now,
                        domain=outcome.denial_domain or spec.victim,
                        user=str(user.dn), reason=outcome.denial_reason,
                    )

        def attack_arrival() -> None:
            now = sim.now
            if now < spec.horizon_s:
                gap = attack_rng.expovariate(spec.attack_rate_per_s)
                if now + gap < spec.horizon_s:
                    sim.schedule(gap, attack_arrival)
                if report.attack_onset_s is None:
                    report.attack_onset_s = now
                    if recorder is not None:
                        recorder.record_meta(attack_onset_s=now)
                work_units = persona.fire(now)
                queue.charge(now, work_units * spec.work_unit_s)

        engine = alert_engine
        if recorder is not None:
            from repro.obs.telemetry import (
                AlertEngine, SeriesKey, default_rules, testbed_probes,
            )
            if engine is None:
                engine = AlertEngine(default_rules())
            for probe in testbed_probes(testbed):
                recorder.add_probe(probe)
            backlog_key = SeriesKey.make(
                "work_queue_backlog_s", {"domain": spec.victim}
            )
            recorder.add_probe(
                lambda now: {backlog_key: queue.drain(now)}
            )
            recorder.record_meta(
                persona=spec.persona, seed=spec.seed,
                defenses_on=defenses_on, victim=spec.victim,
                horizon_s=spec.horizon_s,
            )

            def telemetry_tick() -> None:
                now = sim.now
                recorder.sample(now, registry=registry)
                engine.step(
                    recorder.store, now,
                    event_log=event_log, recorder=recorder,
                )
                if now + sample_interval_s <= spec.horizon_s:
                    sim.schedule(sample_interval_s, telemetry_tick)

            sim.schedule(sample_interval_s, telemetry_tick)

        sim.schedule(
            honest_rng.expovariate(spec.honest_rate_per_s), honest_arrival
        )
        sim.schedule(
            attack_rng.expovariate(spec.attack_rate_per_s), attack_arrival
        )
        sim.run()

        if recorder is not None and engine is not None:
            from repro.obs.telemetry import AlertSeverity
            report.alert_transitions = len(engine.transitions)
            first = engine.first_firing(AlertSeverity.CRITICAL)
            if first is not None:
                report.first_critical_alert_s = first.at_time
                if report.attack_onset_s is not None:
                    report.time_to_detect_s = (
                        first.at_time - report.attack_onset_s
                    )
            # Persist the run's obs events so `repro timeline --replay`
            # can merge them with the recorded alert transitions.
            for event in event_log:
                recorder.record_event(event)

        # Breaker opens affect honest traffic no matter who tripped
        # them: fold them into the honest event log for the SLO.
        for breaker_event in event_log.events(EventKind.BREAKER):
            if breaker_event.reason.endswith("-> open"):
                report.breaker_opens += 1
                honest_log.emit(
                    EventKind.BREAKER,
                    at_time=breaker_event.at_time,
                    domain=breaker_event.domain,
                    reason=breaker_event.reason,
                )
        report.honest_p99_latency_s = _percentile(honest_latencies, 0.99)
        report.max_backlog_s = queue.max_backlog_s
        report.attacker = persona.stats.to_dict()
        for domain_defense in (
            b.defense for b in testbed.brokers.values()
            if b.defense is not None
        ):
            stats = domain_defense.stats
            for kind, count in (
                ("rate_limited", stats.rate_limited),
                ("quota_exceeded", stats.quota_exceeded),
                ("replay_rejected", stats.replay_rejected),
                ("shed_overload", stats.shed_overload),
            ):
                if count:
                    report.defense_rejections[kind] = (
                        report.defense_rejections.get(kind, 0) + count
                    )
        report.slo_report = evaluate_slos(
            slos if slos is not None else honest_slos(spec),
            registry=registry,
            event_log=honest_log,
        )
    report.ledger = ledger
    return report


def run_survivability_pair(
    spec: SurvivabilitySpec,
    *,
    policy: DefensePolicy | None = None,
    slos: tuple[SLO, ...] | None = None,
) -> tuple[SurvivabilityReport, SurvivabilityReport]:
    """The headline experiment: the same seeded scenario with the
    admission-plane defenses off, then on."""
    off = run_survivability(
        spec, defenses_on=False, policy=policy, slos=slos
    )
    on = run_survivability(
        spec, defenses_on=True, policy=policy, slos=slos
    )
    return off, on
