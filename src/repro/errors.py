"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can install a single ``except ReproError`` guard around
protocol operations.  Subsystems raise the most specific subclass that
applies; the hierarchy mirrors the package layout (crypto, policy,
admission, signalling, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CryptoError",
    "SignatureError",
    "CertificateError",
    "CertificateExpiredError",
    "CertificateRevokedError",
    "UntrustedIssuerError",
    "DelegationError",
    "EncodingError",
    "PolicyError",
    "PolicySyntaxError",
    "PolicyEvaluationError",
    "AdmissionError",
    "CapacityExceededError",
    "UnknownReservationError",
    "ReservationStateError",
    "SLAError",
    "SLAViolationError",
    "SignallingError",
    "ChannelError",
    "HandshakeError",
    "MessageDroppedError",
    "ChannelTimeoutError",
    "TamperedMessageError",
    "MalformedMessageError",
    "DefenseError",
    "RateLimitedError",
    "QuotaExceededError",
    "ReplayRejectedError",
    "OverloadShedError",
    "BrokerUnavailableError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "RetryExhaustedError",
    "PolicyUnavailableError",
    "RepositoryUnavailableError",
    "FaultPlanError",
    "RoutingError",
    "NoRouteError",
    "TrustError",
    "ChainTooDeepError",
    "IntroductionError",
    "TunnelError",
    "GaraError",
    "CoReservationError",
    "SimulationError",
    "AccountingError",
    "ObservabilityError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# crypto
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SignatureError(CryptoError):
    """A digital signature failed to verify."""


class CertificateError(CryptoError):
    """A certificate is malformed or fails validation."""


class CertificateExpiredError(CertificateError):
    """A certificate is outside its validity interval."""


class CertificateRevokedError(CertificateError):
    """A certificate appears on the issuer's revocation list."""


class UntrustedIssuerError(CertificateError):
    """No chain to a trust anchor could be built for a certificate."""


class RepositoryUnavailableError(CertificateError):
    """The certificate repository timed out or is unreachable (transient)."""


class DelegationError(CryptoError):
    """A capability delegation step is invalid (wrong key, widened rights, ...)."""


class EncodingError(CryptoError):
    """Canonical encoding failed (unsupported type, non-canonical input)."""


# ---------------------------------------------------------------------------
# policy
# ---------------------------------------------------------------------------

class PolicyError(ReproError):
    """Base class for policy subsystem failures."""


class PolicySyntaxError(PolicyError):
    """The policy-file language parser rejected its input."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class PolicyEvaluationError(PolicyError):
    """A rule raised during evaluation (missing attribute, bad predicate, ...)."""


class PolicyUnavailableError(PolicyError):
    """The policy server timed out or is unreachable (transient)."""


# ---------------------------------------------------------------------------
# admission / reservations / SLA
# ---------------------------------------------------------------------------

class AdmissionError(ReproError):
    """Base class for admission-control failures."""


class CapacityExceededError(AdmissionError):
    """Admitting the request would exceed capacity in some time slot."""


class UnknownReservationError(AdmissionError):
    """No reservation with the given handle exists."""


class ReservationStateError(AdmissionError):
    """The operation is invalid for the reservation's current state."""


class SLAError(ReproError):
    """Base class for service-level-agreement failures."""


class SLAViolationError(SLAError):
    """A request does not conform to the SLA with the peered domain."""


# ---------------------------------------------------------------------------
# signalling
# ---------------------------------------------------------------------------

class SignallingError(ReproError):
    """Base class for inter-BB signalling failures."""


class ChannelError(SignallingError):
    """A secure channel could not be used (not open, unknown peer, ...)."""


class HandshakeError(ChannelError):
    """Mutual authentication failed while opening a channel."""


class MessageDroppedError(ChannelError):
    """A transmitted message was lost on the wire (never delivered)."""


class ChannelTimeoutError(ChannelError):
    """A channel crossing exceeded the sender's per-hop timeout."""


class TamperedMessageError(SignallingError):
    """A received message failed integrity verification."""


class MalformedMessageError(SignallingError):
    """A received message could not be decoded into a signed envelope
    (truncated payload, unknown field tag, wrong object kind).

    Unlike :class:`TamperedMessageError` — a well-formed envelope whose
    signature does not verify — this is a *structural* failure detected
    before any cryptographic work, so it is denied upstream rather than
    retransmitted."""


# ---------------------------------------------------------------------------
# admission-plane defenses (rate limits, quotas, replay, shedding)
# ---------------------------------------------------------------------------

class DefenseError(SignallingError):
    """Base class for admission-plane defense rejections.

    Raised *before* the expensive parts of per-hop processing (signature
    verification, policy evaluation, capacity search), so a flood of
    abusive signalling costs the victim broker almost nothing."""


class RateLimitedError(DefenseError):
    """The per-peer signalling token bucket is empty (rate limit)."""


class QuotaExceededError(DefenseError):
    """Admitting would exceed the per-user or per-ingress reservation quota."""


class ReplayRejectedError(DefenseError):
    """An envelope with this digest was already processed inside the
    replay window (rejected before signature verification)."""


class OverloadShedError(DefenseError):
    """The broker shed a new admission to protect refresh/teardown work
    while its pending queue is past the overload watermark."""


class BrokerUnavailableError(SignallingError):
    """A bandwidth broker crashed or is not answering."""


class DeadlineExceededError(SignallingError):
    """The request's end-to-end signalling deadline passed."""


class CircuitOpenError(SignallingError):
    """The circuit breaker for a peer link is open (failing fast)."""


class RetryExhaustedError(SignallingError):
    """A bounded retry loop used up its attempt budget."""


class TrustError(SignallingError):
    """Base class for transitive-trust failures."""


class ChainTooDeepError(TrustError):
    """The introduction chain exceeds the verifier's depth policy."""


class IntroductionError(TrustError):
    """A key introduction could not be validated."""


class TunnelError(SignallingError):
    """Tunnel establishment or intra-tunnel allocation failed."""


# ---------------------------------------------------------------------------
# network / routing / simulation
# ---------------------------------------------------------------------------

class RoutingError(ReproError):
    """Base class for routing failures."""


class NoRouteError(RoutingError):
    """No path exists between the requested endpoints."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


# ---------------------------------------------------------------------------
# GARA / co-reservation / accounting
# ---------------------------------------------------------------------------

class GaraError(ReproError):
    """Base class for GARA-style uniform reservation API failures."""


class CoReservationError(GaraError):
    """An all-or-nothing co-reservation could not be completed."""


class AccountingError(ReproError):
    """Billing/mediation failures."""


# ---------------------------------------------------------------------------
# observability / static analysis
# ---------------------------------------------------------------------------

class ObservabilityError(ReproError):
    """The metrics/tracing substrate was used incorrectly."""


class AnalysisError(ReproError):
    """The static-analysis tooling was misconfigured or fed bad input."""


# ---------------------------------------------------------------------------
# fault injection
# ---------------------------------------------------------------------------

class FaultPlanError(ReproError):
    """A fault plan is malformed (unknown target kind, bad window, ...)."""
