"""Comparison baselines: the RSVP/IntServ per-flow signalling model whose
scaling problems motivated Differentiated Services (paper §2)."""

from repro.baselines.rsvp import RSVPRouterState, RSVPSimulator

__all__ = ["RSVPSimulator", "RSVPRouterState"]
