"""An RSVP/IntServ per-flow signalling baseline (paper §2).

"The first approach, as exemplified by the RSVP protocol and Integrated
Services model, requires that a reservation request be propagated through
each router that will handle the traffic for a reservation.  There are
some scaling problems with this approach, including the fact that each
router normally has to recognize each packet belonging to a reserved flow
and treat it specially."

This module implements the relevant slice of RSVP v1 semantics so the
scaling comparison (benchmark C3) is measured, not asserted:

* **PATH** messages travel sender→receiver installing per-flow path state
  (previous-hop) in *every router* on the route;
* **RESV** messages travel receiver→sender along the reverse path,
  performing per-link admission control and installing per-flow
  reservation state in every router;
* state is **soft**: it must be refreshed every ``refresh_interval`` or it
  times out after ``lifetime`` (cleanup also releases link bandwidth);
* explicit **PATH_TEAR/RESV_TEAR** removes state immediately.

Metrics exposed: per-router state entry counts, total messages (including
refreshes over time), and per-link admitted bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityExceededError, SignallingError
from repro.net.topology import Topology

__all__ = ["RSVPRouterState", "RSVPSimulator"]


@dataclass
class _PathState:
    flow_id: str
    prev_hop: str
    expires: float


@dataclass
class _ResvState:
    flow_id: str
    rate_mbps: float
    expires: float


@dataclass
class RSVPRouterState:
    """Per-router soft state tables."""

    path: dict[str, _PathState] = field(default_factory=dict)
    resv: dict[str, _ResvState] = field(default_factory=dict)

    @property
    def entries(self) -> int:
        return len(self.path) + len(self.resv)


@dataclass
class _FlowRecord:
    flow_id: str
    route: list[str]
    rate_mbps: float
    reserved: bool = False


class RSVPSimulator:
    """Per-flow PATH/RESV signalling over a topology."""

    def __init__(
        self,
        topology: Topology,
        *,
        refresh_interval_s: float = 30.0,
        lifetime_s: float = 90.0,
    ):
        self.topology = topology
        self.refresh_interval_s = refresh_interval_s
        self.lifetime_s = lifetime_s
        self.routers: dict[str, RSVPRouterState] = {
            info.name: RSVPRouterState()
            for info in topology.nodes
            if info.is_router
        }
        #: Admitted bandwidth per directed link.
        self._link_load: dict[tuple[str, str], float] = {}
        self._flows: dict[str, _FlowRecord] = {}
        self.now = 0.0
        self.messages = 0

    # -- helpers ---------------------------------------------------------------------

    def _route(self, src: str, dst: str) -> list[str]:
        return self.topology.shortest_path(src, dst)

    def _router_hops(self, route: list[str]) -> list[str]:
        return [n for n in route if self.topology.node(n).is_router]

    def _link_capacity(self, a: str, b: str) -> float:
        return self.topology.link_attrs(a, b)["capacity_mbps"]

    def link_load(self, a: str, b: str) -> float:
        return self._link_load.get((a, b), 0.0)

    # -- PATH ------------------------------------------------------------------------

    def path(self, flow_id: str, src: str, dst: str, rate_mbps: float) -> list[str]:
        """Send a PATH message: installs path state in every router."""
        if flow_id in self._flows:
            raise SignallingError(f"flow {flow_id!r} already has path state")
        if rate_mbps <= 0:
            raise SignallingError("rate must be positive")
        route = self._route(src, dst)
        prev = src
        for node in route[1:]:
            self.messages += 1  # one PATH hop
            if self.topology.node(node).is_router:
                self.routers[node].path[flow_id] = _PathState(
                    flow_id, prev, self.now + self.lifetime_s
                )
                prev = node
        self._flows[flow_id] = _FlowRecord(flow_id, route, rate_mbps)
        return route

    # -- RESV ------------------------------------------------------------------------

    def resv(self, flow_id: str) -> None:
        """Send a RESV message along the reverse path: per-link admission +
        per-router reservation state.  Raises
        :class:`~repro.errors.CapacityExceededError` and leaves no partial
        reservation on failure."""
        record = self._flows.get(flow_id)
        if record is None:
            raise SignallingError(f"no path state for flow {flow_id!r}")
        if record.reserved:
            raise SignallingError(f"flow {flow_id!r} already reserved")
        route = record.route
        # Admission check on every link first (receiver-driven, hop by hop;
        # a failure sends a ResvErr and installs nothing upstream of it).
        links = list(zip(route, route[1:]))
        admitted: list[tuple[str, str]] = []
        try:
            for a, b in reversed(links):
                self.messages += 1  # one RESV hop
                load = self._link_load.get((a, b), 0.0)
                if load + record.rate_mbps > self._link_capacity(a, b) + 1e-9:
                    raise CapacityExceededError(
                        f"link {a}->{b}: {load} + {record.rate_mbps} exceeds "
                        f"{self._link_capacity(a, b)} Mb/s"
                    )
                self._link_load[(a, b)] = load + record.rate_mbps
                admitted.append((a, b))
        except CapacityExceededError:
            for a, b in admitted:
                self._link_load[(a, b)] -= record.rate_mbps
            raise
        for node in self._router_hops(route):
            self.routers[node].resv[flow_id] = _ResvState(
                flow_id, record.rate_mbps, self.now + self.lifetime_s
            )
        record.reserved = True

    def reserve(self, flow_id: str, src: str, dst: str, rate_mbps: float) -> None:
        """Convenience: PATH then RESV (one full reservation)."""
        self.path(flow_id, src, dst, rate_mbps)
        try:
            self.resv(flow_id)
        except CapacityExceededError:
            self.teardown(flow_id)
            raise

    # -- soft state --------------------------------------------------------------------

    def advance(self, dt: float, *, refresh: bool = True) -> None:
        """Advance time; optionally send refreshes for all live flows, then
        expire anything unrefreshed."""
        steps = int(dt // self.refresh_interval_s) if refresh else 0
        self.now += dt
        if refresh:
            for record in self._flows.values():
                hops = len(self._router_hops(record.route))
                per_refresh = hops * (2 if record.reserved else 1)
                self.messages += per_refresh * steps
                for node in self._router_hops(record.route):
                    state = self.routers[node]
                    if record.flow_id in state.path:
                        state.path[record.flow_id].expires = self.now + self.lifetime_s
                    if record.flow_id in state.resv:
                        state.resv[record.flow_id].expires = self.now + self.lifetime_s
        self._expire()

    def _expire(self) -> None:
        for name, state in self.routers.items():
            for flow_id in [f for f, s in state.path.items() if s.expires <= self.now]:
                del state.path[flow_id]
            for flow_id in [f for f, s in state.resv.items() if s.expires <= self.now]:
                self._release_links(flow_id, only_if_gone=name)
                del state.resv[flow_id]
        # Flows whose state is gone everywhere are forgotten.
        for flow_id in list(self._flows):
            if not any(
                flow_id in s.path or flow_id in s.resv
                for s in self.routers.values()
            ):
                self._flows.pop(flow_id)

    def _release_links(self, flow_id: str, *, only_if_gone: str) -> None:
        """Release this flow's link bandwidth once (keyed to the first
        router that expires it)."""
        record = self._flows.get(flow_id)
        if record is None or not record.reserved:
            return
        first_router = self._router_hops(record.route)[0]
        if only_if_gone != first_router:
            return
        for a, b in zip(record.route, record.route[1:]):
            self._link_load[(a, b)] = max(
                0.0, self._link_load.get((a, b), 0.0) - record.rate_mbps
            )
        record.reserved = False

    # -- teardown ---------------------------------------------------------------------

    def teardown(self, flow_id: str) -> None:
        """PATH_TEAR + RESV_TEAR: remove all state immediately."""
        record = self._flows.pop(flow_id, None)
        if record is None:
            raise SignallingError(f"unknown flow {flow_id!r}")
        hops = self._router_hops(record.route)
        self.messages += len(hops)
        for node in hops:
            self.routers[node].path.pop(flow_id, None)
            self.routers[node].resv.pop(flow_id, None)
        if record.reserved:
            for a, b in zip(record.route, record.route[1:]):
                self._link_load[(a, b)] = max(
                    0.0, self._link_load.get((a, b), 0.0) - record.rate_mbps
                )

    # -- metrics -----------------------------------------------------------------------

    def state_at(self, router: str) -> int:
        return self.routers[router].entries

    def total_state(self) -> int:
        return sum(s.entries for s in self.routers.values())

    def max_router_state(self) -> int:
        return max((s.entries for s in self.routers.values()), default=0)
