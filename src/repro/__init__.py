"""repro — reproduction of *End-to-End Provision of Policy Information for
Network QoS* (Sander, Adamson, Foster, Roy; HPDC 2001).

The package implements the paper's co-reservation architecture end to end:

* :mod:`repro.crypto` — PKI substrate (RSA, X.509-style certificates,
  capability certificates with proxy-key delegation, trust stores).
* :mod:`repro.net` — a discrete-event Differentiated-Services network
  simulator (token buckets, EF/AF/BE per-hop behaviours, edge policing).
* :mod:`repro.policy` — policy decision points: a rule engine, a parser
  for the paper's policy-file syntax, group servers, a CAS, and an
  Akenti-style engine.
* :mod:`repro.bb` — bandwidth brokers: SLAs/SLSs, time-slotted advance
  admission control, reservations, the policy-server entity.
* :mod:`repro.core` — the paper's contribution: signed RAR envelopes,
  mutually authenticated channels, hop-by-hop signalling with transitive
  trust, capability delegation flow, tunnels, and the source-domain
  baselines (GARA end-to-end agent, STARS coordinator).
* :mod:`repro.gara` — uniform reservation API over network/CPU/disk with
  all-or-nothing co-reservation.
* :mod:`repro.accounting` — transitive billing along the SLA chain.
* :mod:`repro.baselines` — an RSVP/IntServ per-flow signalling baseline.

Quickstart::

    from repro import build_linear_testbed

    testbed = build_linear_testbed(["A", "B", "C"])
    alice = testbed.add_user("A", "Alice")
    outcome = testbed.reserve(alice, source="A", destination="C",
                              bandwidth_mbps=10.0, start=0.0, duration=3600.0)
    assert outcome.granted
"""

from repro._version import __version__
from repro.errors import ReproError

__all__ = [
    "__version__",
    "ReproError",
    "build_linear_testbed",
    "build_star_testbed",
    "build_mesh_testbed",
]


def build_linear_testbed(*args, **kwargs):
    """Convenience re-export of :func:`repro.core.testbed.build_linear_testbed`.

    Imported lazily so that ``import repro`` stays cheap.
    """
    from repro.core.testbed import build_linear_testbed as _impl

    return _impl(*args, **kwargs)


def build_star_testbed(*args, **kwargs):
    """Convenience re-export of :func:`repro.core.testbed.build_star_testbed`."""
    from repro.core.testbed import build_star_testbed as _impl

    return _impl(*args, **kwargs)


def build_mesh_testbed(*args, **kwargs):
    """Convenience re-export of :func:`repro.core.testbed.build_mesh_testbed`."""
    from repro.core.testbed import build_mesh_testbed as _impl

    return _impl(*args, **kwargs)
