"""Mutually authenticated channels between principals.

"The direct signalling between peer BBs used in the above description can
easily be secured using SSLv3/TLS" (§6.4).  A :class:`SecureChannel`
models exactly the properties the protocol relies on:

* **mutual authentication at establishment** — each endpoint verifies the
  other's certificate against its trust store (the SLA supplies the peer
  certificate and its issuing CA, so the check is direct trust); failure
  raises :class:`~repro.errors.HandshakeError`;
* **certificate exchange** — after the handshake, each side can ask for
  the peer's certificate (this is how a BB knows the upstream BB's
  certificate to introduce downstream, and how the user's certificate
  becomes available to the source BB);
* **integrity** — messages pass through unmodified unless a test installs
  a tamper hook, in which case downstream signature verification must
  catch the modification;
* **accounting** — message and byte counters plus a configurable one-way
  latency, which the signalling engines aggregate into end-to-end
  signalling latency (benchmark C1).

Endpoints are duck-typed: anything with ``dn``, ``certificate`` and
``truststore`` attributes (brokers, user agents, coordinators) qualifies.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Protocol

from repro.crypto.dn import DistinguishedName
from repro.crypto.truststore import TrustStore
from repro.crypto.x509 import Certificate
from repro.errors import ChannelError, HandshakeError, MessageDroppedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector

__all__ = ["ChannelEndpoint", "SecureChannel", "ChannelRegistry", "link_label"]


def _endpoint_label(endpoint: Any) -> str:
    """A short, stable label for one channel endpoint.

    Brokers (anything with a reservation table) are labelled by domain —
    that is how operators and fault plans name peer links; other
    principals (user agents, coordinators) by certificate common name,
    which the testbed keeps unique.
    """
    if hasattr(endpoint, "reservations"):
        return str(getattr(endpoint, "domain", endpoint.dn))
    cn = endpoint.dn.common_name
    return cn if cn else str(endpoint.dn)


def link_label(a: Any, b: Any) -> str:
    """The canonical (order-independent) label of the a<->b link."""
    return "|".join(sorted((_endpoint_label(a), _endpoint_label(b))))


class ChannelEndpoint(Protocol):  # pragma: no cover - typing only
    dn: DistinguishedName
    certificate: Certificate

    @property
    def truststore(self) -> TrustStore: ...


class SecureChannel:
    """A bidirectional authenticated channel between two principals."""

    def __init__(
        self,
        a: Any,
        b: Any,
        *,
        latency_s: float = 0.005,
        at_time: float = 0.0,
    ) -> None:
        if a.certificate is None or b.certificate is None:
            raise HandshakeError("both endpoints need certificates")
        for us, them in ((a, b), (b, a)):
            if not us.truststore.accepts_directly(them.certificate, at_time=at_time):
                raise HandshakeError(
                    f"{us.dn} does not trust the certificate presented by "
                    f"{them.dn} (issuer {them.certificate.issuer})"
                )
        self._ends = {a.dn: a, b.dn: b}
        self._certs = {a.dn: a.certificate, b.dn: b.certificate}
        self.latency_s = latency_s
        #: Stable operator-facing name of this link (fault plans and the
        #: per-link circuit breakers key on it).
        self.link = link_label(a, b)
        self.messages = 0
        self.bytes = 0
        #: Messages lost on the wire (tamper hooks or injected faults).
        self.drops = 0
        #: Extra one-way delay the most recent delivery suffered from an
        #: injected DELAY fault; senders compare it to their hop timeout.
        self.last_delay_s = 0.0
        #: Optional message transformer simulating an on-path attacker.
        self.tamper_hook: Callable[[Any], Any] | None = None
        #: Optional deterministic fault injector (set registry-wide).
        self.injector: FaultInjector | None = None
        # Guards the accounting counters: two concurrent senders of the
        # same link must not tear messages/bytes read-modify-writes.
        self._lock = threading.Lock()

    @property
    def endpoints(self) -> tuple[DistinguishedName, ...]:
        return tuple(self._ends)

    def peer_certificate(self, me: DistinguishedName) -> Certificate:
        """The certificate presented by the *other* endpoint — what the SSL
        handshake makes available."""
        others = [dn for dn in self._ends if dn != me]
        if me not in self._ends or not others:
            raise ChannelError(f"{me} is not an endpoint of this channel")
        return self._certs[others[0]]

    def peer_of(self, me: DistinguishedName) -> Any:
        others = [dn for dn in self._ends if dn != me]
        if me not in self._ends or not others:
            raise ChannelError(f"{me} is not an endpoint of this channel")
        return self._ends[others[0]]

    def transmit(self, sender: DistinguishedName, message: Any) -> Any:
        """One message crossing the channel; returns what the receiver
        sees (possibly tampered or delayed).

        A dropped message (a tamper hook returning ``None``, or an
        injected DROP fault) never reaches the receiver: it is NOT
        counted in ``messages``/``bytes`` and raises
        :class:`~repro.errors.MessageDroppedError` so the sender's
        timeout/retry machinery sees the loss instead of a silent
        ``None`` flowing downstream.
        """
        return self.transmit_timed(sender, message)[0]

    def transmit_timed(
        self, sender: DistinguishedName, message: Any
    ) -> tuple[Any, float]:
        """:meth:`transmit`, also returning the injected extra delay of
        *this* delivery.

        The returned delay is the race-free way to read it: with two
        concurrent senders on one link, ``last_delay_s`` may already
        belong to the other sender's delivery by the time it is read.
        """
        if sender not in self._ends:
            raise ChannelError(f"{sender} is not an endpoint of this channel")
        delay_s = 0.0
        if self.tamper_hook is not None:
            message = self.tamper_hook(message)
            if message is None:
                with self._lock:
                    self.drops += 1
                    self.last_delay_s = delay_s
                raise MessageDroppedError(
                    f"message from {sender} dropped on link {self.link} "
                    "by the tamper hook"
                )
        if self.injector is not None:
            try:
                message, delay_s = self.injector.channel_transmit(
                    self.link, message
                )
            except MessageDroppedError:
                with self._lock:
                    self.drops += 1
                    self.last_delay_s = delay_s
                raise
        size = getattr(message, "wire_size", None)
        with self._lock:
            self.messages += 1
            self.bytes += size() if callable(size) else 0
            self.last_delay_s = delay_s
        return message, delay_s

    def counter_snapshot(self) -> tuple[int, int, int]:
        """A consistent ``(messages, bytes, drops)`` snapshot."""
        with self._lock:
            return self.messages, self.bytes, self.drops

    def reset_counters(self) -> None:
        with self._lock:
            self.messages = 0
            self.bytes = 0
            self.drops = 0
            self.last_delay_s = 0.0


class ChannelRegistry:
    """All channels of a testbed, keyed by unordered endpoint-DN pairs."""

    def __init__(self) -> None:
        self._channels: dict[frozenset[DistinguishedName], SecureChannel] = {}
        #: Registry-wide fault injector; seeded into every channel (also
        #: channels opened after it is set).
        self.injector: FaultInjector | None = None
        self._lock = threading.RLock()

    def set_injector(self, injector: FaultInjector | None) -> None:
        """Attach (or with ``None`` detach) a fault injector to every
        channel, present and future."""
        with self._lock:
            self.injector = injector
            for channel in self._channels.values():
                channel.injector = injector

    def add(self, channel: SecureChannel) -> None:
        key = frozenset(channel.endpoints)
        with self._lock:
            channel.injector = self.injector
            self._channels[key] = channel

    def connect(self, a: Any, b: Any, *, latency_s: float = 0.005,
                at_time: float = 0.0) -> SecureChannel:
        """Open (or return the existing) channel between *a* and *b*."""
        key = frozenset({a.dn, b.dn})
        with self._lock:
            existing = self._channels.get(key)
            if existing is not None:
                return existing
            channel = SecureChannel(a, b, latency_s=latency_s, at_time=at_time)
            channel.injector = self.injector
            self._channels[key] = channel
            return channel

    def between(
        self, a: DistinguishedName, b: DistinguishedName
    ) -> SecureChannel:
        with self._lock:
            try:
                return self._channels[frozenset({a, b})]
            except KeyError:
                raise ChannelError(
                    f"no channel between {a} and {b}"
                ) from None

    def has(self, a: DistinguishedName, b: DistinguishedName) -> bool:
        with self._lock:
            return frozenset({a, b}) in self._channels

    def all(self) -> tuple[SecureChannel, ...]:
        with self._lock:
            return tuple(self._channels.values())

    def total_messages(self) -> int:
        return sum(c.counter_snapshot()[0] for c in self.all())

    def total_bytes(self) -> int:
        return sum(c.counter_snapshot()[1] for c in self.all())

    def reset_counters(self) -> None:
        for c in self.all():
            c.reset_counters()
