"""RAR message construction — the exact composition rules of paper §6.4.

The notation from the paper, and its realization here:

* ``RAR_U = sign_pkeyU({res_spec, DN_BBA, Capability_Cert'_CAS,
  Capability_Cert'_U})`` — :func:`make_user_rar`.
* ``RAR_A = sign_pkeyBBA({RAR_U, cert_U, DN_BBB, Capability_Cert'_A})``
  and the general step ``RAR_{N+1} = sign_pkeyBB_{N+1}({RAR_N, cert_N,
  DN_BB_{N+2}, Capability_Cert'_{N+1}})`` — :func:`make_bb_rar`.
* the approval that "propagates back to the source domain, with each
  intermediate domain referring to local SLA and SLS information",
  each BB "adds its own signed policy information" — :func:`make_approval`.
* denial propagation upstream "to inform the user of the reason for the
  denial" (§6.1) — :func:`make_denial`.

Payload field names are constants so the trust-verification code and the
tests share one vocabulary.
"""

from __future__ import annotations

from typing import Sequence

from repro.bb.reservations import ReservationRequest
from repro.crypto.dn import DistinguishedName
from repro.crypto.keys import PrivateKey
from repro.crypto.x509 import Certificate
from repro.core.envelope import (
    LINK_DIGEST_FIELD,
    SignedEnvelope,
    chain_link_digest,
    seal,
)
from repro.errors import SignallingError, TamperedMessageError
from repro.policy.attributes import SignedAssertion

__all__ = [
    "F_TYPE",
    "F_RES_SPEC",
    "F_DOWNSTREAM",
    "F_CAPABILITY_CERTS",
    "F_ASSERTIONS",
    "F_INNER",
    "F_INNER_DIGEST",
    "F_INTRODUCED_CERT",
    "F_HANDLE",
    "F_HANDLES",
    "F_REASON",
    "F_DOMAIN",
    "F_POLICY_INFO",
    "F_DEADLINE",
    "F_TRACEPARENT",
    "MSG_RAR",
    "MSG_APPROVAL",
    "MSG_DENIAL",
    "make_user_rar",
    "make_bb_rar",
    "make_approval",
    "make_denial",
    "unwrap_rar_layers",
]

# Payload field names.
F_TYPE = "type"
F_RES_SPEC = "res_spec"
F_DOWNSTREAM = "downstream_dn"
F_CAPABILITY_CERTS = "capability_certs"
F_ASSERTIONS = "assertions"
F_INNER = "inner_rar"
#: Append-only chain link (:data:`repro.core.envelope.LINK_DIGEST_FIELD`):
#: SHA-256 of the inner envelope's canonical bytes.  Present iff the
#: wrapping BB forwarded in append mode; the wrapper's signature then
#: covers this digest instead of the re-encoded inner chain.
#: :func:`unwrap_rar_layers` re-derives and checks the link on every
#: unwrap, so tampering any inner byte still voids the chain.
F_INNER_DIGEST = LINK_DIGEST_FIELD
F_INTRODUCED_CERT = "introduced_cert"
F_HANDLE = "handle"
F_HANDLES = "handles"
F_REASON = "reason"
F_DOMAIN = "domain"
F_POLICY_INFO = "policy_info"
#: Absolute end-to-end signalling deadline (modelled seconds).  Set by
#: the user in ``RAR_U`` and copied outward by every BB wrapper, so each
#: hop can bound its own retries by the remaining end-to-end budget.
F_DEADLINE = "deadline"
#: W3C-style trace context (``00-<trace>-<span>-01``, see
#: :mod:`repro.obs.propagation`).  Unlike :data:`F_DEADLINE` it is NOT
#: copied verbatim: each wrapping BB writes its *own* hop span id, so the
#: downstream hop's spans parent under this hop — the trace tree nests
#: exactly like the signature envelopes.  Signed like every other field,
#: so tampering with the trace context voids the envelope.
F_TRACEPARENT = "traceparent"

# Message types.
MSG_RAR = "rar"
MSG_APPROVAL = "approval"
MSG_DENIAL = "denial"


def make_user_rar(
    *,
    request: ReservationRequest,
    source_bb: DistinguishedName,
    capability_certs: Sequence[Certificate] = (),
    assertions: Sequence[SignedAssertion] = (),
    user: DistinguishedName,
    user_key: PrivateKey,
    deadline: float | None = None,
    traceparent: str | None = None,
) -> SignedEnvelope:
    """``RAR_U``: the user's signed request, naming the source-domain BB.

    ``capability_certs`` normally holds the CAS-issued capability
    certificate plus the user's delegation of it to the source BB
    (``Capability_Cert'_CAS`` and ``Capability_Cert'_U``).  ``deadline``
    (absolute, modelled seconds) bounds the whole signalling attempt;
    every wrapping BB propagates it outward.  ``traceparent`` carries
    the root span's trace context so the source BB's spans stitch into
    the user agent's trace (:data:`F_TRACEPARENT`).
    """
    payload = {
        F_TYPE: MSG_RAR,
        F_RES_SPEC: request,
        F_DOWNSTREAM: source_bb,
        F_CAPABILITY_CERTS: tuple(capability_certs),
        F_ASSERTIONS: tuple(assertions),
    }
    if deadline is not None:
        payload[F_DEADLINE] = deadline
    if traceparent is not None:
        payload[F_TRACEPARENT] = traceparent
    return seal(payload, signer=user, key=user_key)


def make_bb_rar(
    *,
    inner: SignedEnvelope,
    introduced_cert: Certificate | None,
    downstream: DistinguishedName,
    capability_certs: Sequence[Certificate] = (),
    assertions: Sequence[SignedAssertion] = (),
    bb: DistinguishedName,
    bb_key: PrivateKey,
    traceparent: str | None = None,
    append: bool = False,
) -> SignedEnvelope:
    """``RAR_{N+1}``: a BB wraps the received RAR, introduces the upstream
    signer's certificate (learned in the SSL handshake), names the next
    downstream BB, and adds its own capability delegation / policy info.

    ``introduced_cert=None`` builds the certificate-free variant used under
    repository-based key distribution (§6.4 alternative 2) — verifiers then
    resolve inner-signer keys by DN instead.

    ``traceparent`` names *this* hop's span (not the upstream one — the
    trace context is rewritten at every hop, unlike the deadline, which
    is copied verbatim from the inner layer).

    ``append=True`` forwards as an append-only chain layer: the payload
    additionally carries :data:`F_INNER_DIGEST` and this BB's signature
    covers that digest *instead of* the inner envelope, so wrapping costs
    O(this layer) signature work rather than O(chain).  Verification
    semantics are unchanged — :func:`unwrap_rar_layers` checks the link
    digest, and each layer's own signature is still checked as before.
    """
    if inner.get(F_TYPE) != MSG_RAR:
        raise SignallingError("inner message is not a RAR")
    if introduced_cert is not None and introduced_cert.subject != inner.signer:
        raise SignallingError(
            f"introduced certificate names {introduced_cert.subject}, but the "
            f"inner RAR was signed by {inner.signer}"
        )
    payload = {
        F_TYPE: MSG_RAR,
        F_INNER: inner,
        F_DOWNSTREAM: downstream,
        F_CAPABILITY_CERTS: tuple(capability_certs),
        F_ASSERTIONS: tuple(assertions),
    }
    if append:
        payload[F_INNER_DIGEST] = chain_link_digest(inner)
    deadline = inner.get(F_DEADLINE)
    if deadline is not None:
        payload[F_DEADLINE] = deadline
    if traceparent is not None:
        payload[F_TRACEPARENT] = traceparent
    if introduced_cert is not None:
        payload[F_INTRODUCED_CERT] = introduced_cert
    return seal(payload, signer=bb, key=bb_key)


def make_approval(
    *,
    handle: str,
    domain: str,
    policy_info: Sequence[SignedAssertion] = (),
    inner: SignedEnvelope | None = None,
    bb: DistinguishedName,
    bb_key: PrivateKey,
) -> SignedEnvelope:
    """An approval propagating back upstream.  ``inner`` is the downstream
    approval this BB is endorsing; the destination's approval has none."""
    payload = {
        F_TYPE: MSG_APPROVAL,
        F_HANDLE: handle,
        F_DOMAIN: domain,
        F_POLICY_INFO: tuple(policy_info),
    }
    if inner is not None:
        if inner.get(F_TYPE) != MSG_APPROVAL:
            raise SignallingError("inner message is not an approval")
        payload[F_INNER] = inner
    return seal(payload, signer=bb, key=bb_key)


def make_denial(
    *,
    domain: str,
    reason: str,
    inner: SignedEnvelope | None = None,
    bb: DistinguishedName,
    bb_key: PrivateKey,
) -> SignedEnvelope:
    """A denial propagating back upstream with its reason (§6.1)."""
    payload = {
        F_TYPE: MSG_DENIAL,
        F_DOMAIN: domain,
        F_REASON: reason,
    }
    if inner is not None:
        payload[F_INNER] = inner
    return seal(payload, signer=bb, key=bb_key)


def unwrap_rar_layers(rar: SignedEnvelope) -> list[SignedEnvelope]:
    """Return the layers of a nested RAR, outermost first (the user's
    original request last).

    Append-mode layers (:data:`F_INNER_DIGEST` present) additionally get
    their chain link verified here: the inner envelope's canonical bytes
    must hash to the signed digest.  This runs *before* any signature
    check in the trust verifiers, so a tampered inner layer fails the
    chain exactly as it would have failed the enclosing signature in
    nested mode.
    """
    layers = []
    current: SignedEnvelope | None = rar
    while current is not None:
        if current.get(F_TYPE) != MSG_RAR:
            raise SignallingError(
                f"layer signed by {current.signer} is not a RAR"
            )
        layers.append(current)
        inner = current.get(F_INNER)
        if inner is not None and not isinstance(inner, SignedEnvelope):
            raise SignallingError("inner RAR field holds a non-envelope")
        link = current.get(F_INNER_DIGEST)
        if link is not None:
            if not isinstance(inner, SignedEnvelope):
                raise TamperedMessageError(
                    f"append-chain layer signed by {current.signer} carries "
                    f"a link digest but no inner envelope"
                )
            if not isinstance(link, bytes) or link != chain_link_digest(inner):
                raise TamperedMessageError(
                    f"append-chain link broken below layer signed by "
                    f"{current.signer}: inner bytes do not match the "
                    f"signed digest"
                )
        current = inner
        if len(layers) > 64:
            raise SignallingError("RAR nesting exceeds maximum depth 64")
    return layers
