"""Approach 1: source-domain-based signalling (the paper's baseline).

"Alice, or an agent working on her behalf, can contact each BB
individually.  A positive response from every BB indicates that Alice has
an end-to-end reservation.  However, there are two serious flaws with
this methodology.  First, it is difficult to scale since each BB must
know about (and be able to authenticate) Alice [...].  Furthermore, if
another user, Bob, makes an incomplete reservation, either maliciously or
accidentally, he can interfere with Alice's reservation." (§3)

This module implements that baseline faithfully, flaws included:

* the agent needs a direct trust relationship (an open channel) with
  *every* BB on the path — reservation fails with ``no trust
  relationship`` where the paper's hop-by-hop approach would proceed;
* ``skip_domains`` reproduces the Figure 4 misreservation: nothing in the
  protocol forces the agent to contact every domain;
* ``concurrent=True`` models the paper's §3 observation that
  "source-domain-based signalling may be faster than hop-by-hop based
  signalling, because the reservations for each domain can be made in
  parallel": latency is the *maximum* instead of the *sum* of per-domain
  round trips.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.bb.broker import BandwidthBroker
from repro.bb.reservations import ReservationRequest
from repro.core.agent import UserAgent
from repro.core.channel import ChannelRegistry
from repro.core.messages import make_user_rar
from repro.core.trust import verify_rar
from repro.crypto import batch as batch_verification
from repro.errors import HandshakeError, SignallingError, TrustError, TamperedMessageError
from repro.policy.attributes import SignedAssertion

__all__ = ["SourceDomainOutcome", "EndToEndAgent"]


@dataclass
class SourceDomainOutcome:
    """Result of a source-domain-based (Approach 1) reservation attempt."""

    granted: bool
    #: True only when every domain on the path holds a reservation — a
    #: malicious/accidental caller may be 'granted' on a subset (Figure 4).
    complete: bool
    handles: dict[str, str] = field(default_factory=dict)
    failures: dict[str, str] = field(default_factory=dict)
    skipped: tuple[str, ...] = ()
    latency_s: float = 0.0
    messages: int = 0
    bytes: int = 0
    path: tuple[str, ...] = ()


class EndToEndAgent:
    """The GARA end-to-end reservation library: contacts every BB itself."""

    def __init__(
        self,
        brokers: Mapping[str, BandwidthBroker],
        channels: ChannelRegistry,
        domain_path: Callable[[str, str], list[str]],
        *,
        processing_delay_s: float = 0.001,
        clock: Callable[[], float] = lambda: 0.0,
    ) -> None:
        self.brokers = dict(brokers)
        self.channels = channels
        self.domain_path = domain_path
        self.processing_delay_s = processing_delay_s
        self.clock = clock

    def _contact(
        self,
        user: UserAgent,
        bb: BandwidthBroker,
        request: ReservationRequest,
        *,
        upstream: str | None,
        downstream: str | None,
        assertions: Sequence[SignedAssertion],
        at_time: float,
    ) -> tuple[bool, str, float, int, int]:
        """One direct user→BB exchange.  Returns (granted, handle-or-reason,
        round-trip latency, messages, bytes)."""
        try:
            channel = self.channels.connect(user, bb, at_time=at_time)
        except HandshakeError as exc:
            # The scaling flaw: this BB has no trust relationship with the
            # user, so it cannot even authenticate the request.
            return False, f"no trust relationship: {exc}", 0.0, 0, 0

        capability_certs = user.delegate_capabilities_to(
            bb.dn, channel.peer_certificate(user.dn).public_key
        )
        rar = make_user_rar(
            request=request,
            source_bb=bb.dn,
            capability_certs=capability_certs,
            assertions=tuple(assertions) + tuple(user.assertions),
            user=user.dn,
            user_key=user.keypair.private,
        )
        rar = channel.transmit(user.dn, rar)
        nbytes = rar.wire_size()
        try:
            verified = verify_rar(
                rar,
                verifier=bb.dn,
                peer_certificate=channel.peer_certificate(bb.dn),
                truststore=bb.truststore,
                at_time=at_time,
            )
        except (TrustError, TamperedMessageError, SignallingError) as exc:
            return False, f"verification failed: {exc}", 2 * channel.latency_s, 2, nbytes

        info = bb.policy_server.verify_credentials(
            user=verified.user,
            assertions=verified.assertions,
            capability_chains=(
                [verified.capability_chain] if verified.capability_chain else []
            ),
            at_time=at_time,
        )
        outcome = bb.admit(
            verified.request, info, at_time=at_time,
            upstream=upstream, downstream=downstream,
        )
        # Reply message (grant or denial) crosses the channel back.
        channel.transmit(bb.dn, outcome.reservation.handle)
        rtt = 2 * channel.latency_s + self.processing_delay_s
        if outcome.granted:
            return True, outcome.reservation.handle, rtt, 2, nbytes
        return False, outcome.reason, rtt, 2, nbytes

    def reserve(
        self,
        user: UserAgent,
        request: ReservationRequest,
        *,
        assertions: Sequence[SignedAssertion] = (),
        concurrent: bool = False,
        skip_domains: Iterable[str] = (),
        rollback_on_failure: bool = True,
    ) -> SourceDomainOutcome:
        """Contact every BB on the path (except ``skip_domains``) directly."""
        at_time = self.clock()
        path = self.domain_path(request.source_domain, request.destination_domain)
        skipped = tuple(d for d in path if d in set(skip_domains))
        outcome = SourceDomainOutcome(
            granted=False, complete=False, path=tuple(path), skipped=skipped
        )
        latencies: list[float] = []

        # A concurrent agent issues its per-domain RARs as one burst;
        # the verifications share one cache scope so the user signature,
        # capability chain and assertion checks repeated at every BB are
        # done once (no-op scope unless fastpath batch verification is
        # on; per-domain outcomes are unchanged either way).
        scope = (
            batch_verification.use_batch_caches()
            if concurrent else nullcontext()
        )
        with scope:
            for index, domain in enumerate(path):
                if domain in skipped:
                    continue
                bb = self.brokers.get(domain)
                if bb is None:
                    outcome.failures[domain] = "no bandwidth broker"
                    continue
                upstream = path[index - 1] if index > 0 else None
                downstream = (
                    path[index + 1] if index + 1 < len(path) else None
                )
                granted, result, rtt, msgs, nbytes = self._contact(
                    user, bb, request,
                    upstream=upstream, downstream=downstream,
                    assertions=assertions, at_time=at_time,
                )
                latencies.append(rtt)
                outcome.messages += msgs
                outcome.bytes += nbytes
                if granted:
                    outcome.handles[domain] = result
                else:
                    outcome.failures[domain] = result
                    if not concurrent:
                        # A sequential agent stops at the first failure.
                        break

        outcome.latency_s = (
            max(latencies, default=0.0) if concurrent else sum(latencies)
        )
        contacted = [d for d in path if d not in skipped]
        outcome.granted = bool(outcome.handles) and not outcome.failures
        outcome.complete = (
            outcome.granted and all(d in outcome.handles for d in path)
        )
        if outcome.failures and rollback_on_failure:
            self.release(outcome)
        return outcome

    # -- lifecycle --------------------------------------------------------------------

    def claim(self, outcome: SourceDomainOutcome) -> None:
        """Claim whatever reservations the agent holds.

        Deliberately does *not* require ``complete`` — the data plane
        cannot tell (that is the Figure 4 attack surface).
        """
        for domain, handle in outcome.handles.items():
            self.brokers[domain].claim(handle)

    def release(self, outcome: SourceDomainOutcome) -> None:
        for domain, handle in list(outcome.handles.items()):
            self.brokers[domain].cancel(handle)
            del outcome.handles[domain]
