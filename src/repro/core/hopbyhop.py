"""Approach 2: hop-by-hop inter-BB signalling (the paper's contribution).

"Alice only contacts BB_A, which then propagates the reservation request
to BB_B only if the reservation was accepted by BB_A.  Similarly, BB_B
contacts BB_C.  With this solution, each BB only needs to know about its
neighboring BBs, and all BBs are always contacted." (§3)

The engine drives each broker through the source / intermediate /
destination behaviours of §§6.1–6.3:

1. the user's agent signs ``RAR_U`` (delegating its capabilities to the
   source BB) and submits it over the mutually authenticated user↔BB
   channel;
2. every BB verifies the nested envelope with transitive trust
   (:func:`repro.core.trust.verify_rar`), runs its policy server and
   admission control, and — if it grants and is not the destination —
   re-delegates the capability, introduces the upstream certificate, and
   forwards ``RAR_{N+1}`` downstream;
3. a denial anywhere propagates back upstream with its reason; already
   granted reservations along the partial path are released;
4. the destination runs the full §6.5 capability-chain verification
   (including its own proof of possession) and, on success, the approval
   propagates back with each BB adding its signed policy information.

Failure recovery (the part the paper leaves implicit): every channel
crossing runs under a per-hop timeout with bounded retries, exponential
backoff + seeded jitter, and a per-peer-link circuit breaker
(:mod:`repro.core.recovery`); an optional end-to-end deadline travels in
the RAR itself (``F_DEADLINE``) so retries at an early hop shrink every
later hop's budget; a hop whose broker, policy server, or repository
stays down after retries turns into an upstream-signed denial; and
partial-path admissions are *always* released — explicitly where
reachable, tolerantly skipped (``UNWIND_FAILED``) where not, with the
brokers' soft-state expiry as the backstop.

Latency accounting (benchmark C1): every channel crossing contributes its
one-way latency, every BB decision contributes ``processing_delay_s``,
and every timeout/backoff contributes its modelled wait; the engine sums
these along the actual message trajectory.
"""

from __future__ import annotations

import logging
import threading
import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence, TypeVar

from repro.bb.broker import BandwidthBroker
from repro.bb.reservations import ReservationRequest
from repro.core.agent import UserAgent
from repro.core.channel import ChannelRegistry, SecureChannel
from repro.core import fastpath
from repro.core.codec import WireView, from_wire
from repro.crypto.dn import DistinguishedName
from repro.core.envelope import SignedEnvelope
from repro.core.messages import (
    F_DEADLINE,
    F_DOMAIN,
    F_REASON,
    F_TRACEPARENT,
    make_approval,
    make_bb_rar,
    make_denial,
    make_user_rar,
    unwrap_rar_layers,
)
from repro.core.recovery import (
    BreakerPolicy,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)
from repro.core.trust import (
    VerifiedRAR,
    verify_rar,
    verify_rar_with_repository,
)
from repro.crypto.capability import (
    ProxyCredential,
    delegate,
    prove_possession,
    split_capability_chains,
    verify_delegation_chain,
)
from repro.crypto.repository import CertificateRepository
from repro.crypto.x509 import Certificate
from repro.crypto import batch as batch_verification
from repro.crypto.cache import digest as _envelope_digest
from repro.errors import (
    BrokerUnavailableError,
    CertificateError,
    ChannelTimeoutError,
    CircuitOpenError,
    DeadlineExceededError,
    DefenseError,
    DelegationError,
    EncodingError,
    MalformedMessageError,
    MessageDroppedError,
    ObservabilityError,
    PolicyUnavailableError,
    RepositoryUnavailableError,
    ReproError,
    RetryExhaustedError,
    SignallingError,
    TrustError,
    TamperedMessageError,
)
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.audit import ledger as obs_audit
from repro.obs.events import EventKind, ReasonCode, reason_code_for
from repro.obs.propagation import (
    TraceContext,
    format_traceparent,
    parse_traceparent,
)
from repro.policy.attributes import SignedAssertion, make_assertion

__all__ = ["SignallingOutcome", "IngressReport", "HopByHopProtocol"]

logger = logging.getLogger(__name__)

_T = TypeVar("_T")

#: Transient faults a hop may retry through (a crashed-and-restarting
#: broker, a policy server or repository that times out).
_TRANSIENT_ERRORS = (
    BrokerUnavailableError,
    PolicyUnavailableError,
    RepositoryUnavailableError,
)

#: Delivery failures that end a leg after the retry budget is spent.
_DELIVERY_FAILURES = (
    RetryExhaustedError,
    CircuitOpenError,
    DeadlineExceededError,
)

#: Relative processing cost (in multiples of one full per-hop
#: verification) that each stage of ingress handling charges the
#: receiving broker.  The whole point of the pre-verification defense
#: gate is the two-orders-of-magnitude gap between the first row and the
#: last: a rejected abuse signal costs the victim a dict lookup, an
#: accepted one costs the full nested-envelope signature walk.
WORK_GATE = 0.02
WORK_DECODE = 0.15
WORK_VERIFY = 1.0


def _carried_parent_span_id(rar: SignedEnvelope) -> int | None:
    """The parent span id named by the received envelope's trace context
    (:data:`~repro.core.messages.F_TRACEPARENT`), or ``None`` when the
    field is absent or malformed — the hop then parents under the local
    in-process chain instead of guessing."""
    carried = rar.get(F_TRACEPARENT)
    if not isinstance(carried, str):
        return None
    try:
        return parse_traceparent(carried).span_id
    except ObservabilityError:
        return None


@dataclass
class SignallingOutcome:
    """Result of one end-to-end signalling attempt."""

    granted: bool
    #: Per-domain reservation handles (complete on success; the domains
    #: granted before a denial are released and still listed for tracing).
    handles: dict[str, str] = field(default_factory=dict)
    denial_domain: str | None = None
    denial_reason: str = ""
    #: End-to-end signalling latency (request leg + reply leg, including
    #: modelled timeouts and retry backoff).
    latency_s: float = 0.0
    #: Messages exchanged during this attempt.
    messages: int = 0
    bytes: int = 0
    #: Transient-failure retries performed while signalling.
    retries: int = 0
    #: The RAR as received by the destination (None when denied earlier).
    final_rar: SignedEnvelope | None = None
    #: Transitive-trust verification result at the destination.
    verified: VerifiedRAR | None = None
    #: §6.5 delegation-chain result at the destination (None if no
    #: capabilities travelled); first of ``delegations`` when several
    #: community chains travelled.
    delegation: object | None = None
    #: All verified delegation chains (one per community credential).
    delegations: tuple = ()
    #: The approval envelope as received back by the user.
    approval: SignedEnvelope | None = None
    #: Domain sequence the request traversed.
    path: tuple[str, ...] = ()
    #: Accumulated transit cost of the granted path (SLA tariffs x usage);
    #: always within the user's ``cost_ceiling`` on success.
    cost: float = 0.0
    #: Certificate-repository lookups performed (repository mode only).
    repository_lookups: int = 0
    #: Correlation ID minted when the user agent signed ``RAR_U``; ties
    #: this outcome to its spans and structured events.
    correlation_id: str = ""


@dataclass(frozen=True)
class IngressReport:
    """What one inbound signalling message cost the receiving broker.

    ``work_units`` is the processing the broker actually spent, in
    multiples of one full verification (:data:`WORK_VERIFY`); the
    survivability harness integrates it into the victim's modelled work
    queue.  ``verified`` is True only when signature verification ran —
    the replay-guard acceptance test asserts it stays False for every
    replayed envelope.
    """

    accepted: bool
    work_units: float
    verified: bool = False
    reason: str = ""
    reason_code: str = ""
    #: Trace context of the outermost decoded layer (scalar string only),
    #: for stitching ingress decisions into distributed traces.  ``None``
    #: when the message never decoded or carried none.
    traceparent: str | None = None
    #: End-to-end signalling deadline claimed by the message (scalar
    #: numeric only); ``None`` when absent or undecoded.
    deadline: float | None = None


class HopByHopProtocol:
    """Drives hop-by-hop signalling across a set of peered brokers."""

    def __init__(
        self,
        brokers: Mapping[str, BandwidthBroker],
        channels: ChannelRegistry,
        domain_path: Callable[[str, str], list[str]],
        *,
        processing_delay_s: float = 0.001,
        clock: Callable[[], float] = lambda: 0.0,
        repository: CertificateRepository | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        hop_timeout_s: float = 0.25,
        rng: random.Random | None = None,
        envelope_mode: str | None = None,
    ) -> None:
        self.brokers = dict(brokers)
        self.channels = channels
        self.domain_path = domain_path
        self.processing_delay_s = processing_delay_s
        self.clock = clock
        #: ``"append"`` (default via :mod:`repro.core.fastpath`) — BBs
        #: forward append-only chain layers whose signatures cover a
        #: digest link to the received bytes; ``"nested"`` — the original
        #: re-sign-the-whole-chain shape.  The differential harness runs
        #: every scenario both ways and asserts identical decisions.
        self.envelope_mode = (
            envelope_mode
            if envelope_mode is not None
            else fastpath.get_config().envelope_mode
        )
        if self.envelope_mode not in ("append", "nested"):
            raise SignallingError(
                f"envelope_mode must be 'append' or 'nested', "
                f"got {self.envelope_mode!r}"
            )
        #: Optional trusted certificate repository (§6.4 alternative 2).
        #: When set, BBs do NOT carry introduced certificates in the RAR;
        #: every verifier resolves inner-signer keys by DN instead, paying
        #: one repository lookup per unknown signer.
        self.repository = repository
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.breaker_policy = (
            breaker_policy if breaker_policy is not None else BreakerPolicy()
        )
        #: How long a sender waits for a channel delivery before declaring
        #: the message lost and retrying (modelled seconds).
        self.hop_timeout_s = hop_timeout_s
        # crc32 seed, not hash(): deterministic across processes (REP108).
        self.rng = (
            rng if rng is not None
            else random.Random(zlib.crc32(b"hopbyhop-recovery"))
        )
        #: One circuit breaker per channel link, persisting across
        #: requests so a proven-dead link fails fast.
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        #: Signature-verification walks performed by :meth:`process_ingress`
        #: (the replay-guard acceptance test asserts replayed envelopes
        #: never move this counter).
        self.ingress_verifications = 0

    # -- helpers -----------------------------------------------------------------

    def _broker(self, domain: str) -> BandwidthBroker:
        try:
            return self.brokers[domain]
        except KeyError:
            raise SignallingError(f"no bandwidth broker for domain {domain!r}") from None

    def _breaker_for(self, link: str) -> CircuitBreaker:
        with self._breakers_lock:
            breaker = self._breakers.get(link)
            if breaker is None:
                breaker = CircuitBreaker(link, self.breaker_policy)
                self._breakers[link] = breaker
            return breaker

    def breaker_snapshot(self) -> dict[str, str]:
        """Current state of every per-link circuit breaker, keyed by
        the canonical ``a|b`` link label — the telemetry probe's view
        (the flight recorder samples it each frame)."""
        with self._breakers_lock:
            return {
                link: breaker.state
                for link, breaker in sorted(self._breakers.items())
            }

    def _note_retry(
        self, *, outcome: SignallingOutcome, what: str, target: str,
        attempt: int, at_time: float, reason: str,
    ) -> None:
        outcome.retries += 1
        obs_audit.note_retry(target=target, reason=reason)
        logger.info("retry %d of %s (%s): %s", attempt, what, target, reason)
        registry = obs_metrics.get_registry()
        if registry is not None:
            registry.counter(
                "signalling_retries_total",
                "Transient-failure retries during hop-by-hop signalling",
            ).inc(target=target)
        event_log = obs_events.get_event_log()
        if event_log is not None:
            event_log.emit(
                EventKind.RETRY, at_time=at_time, reason=reason,
                target=target, what=what, attempt=attempt,
            )

    @staticmethod
    def _decode_received(received: object, *, what: str) -> SignedEnvelope:
        """Structural validation of a delivered message.

        Wire bytes are decoded through the zero-copy codec
        (:class:`~repro.core.codec.WireView`, one fused pass) or — under
        ``envelope_mode``-independent :mod:`~repro.core.fastpath` config
        with ``zero_copy_ingress`` off — the eager two-pass codec.  Both
        decoders accept exactly the same byte strings (the differential
        suite's guarantee); anything that is not (or does not decode to)
        a :class:`SignedEnvelope` raises a typed
        :class:`MalformedMessageError`.  The catch is deliberately broad:
        the eager decoder leaks ``KeyError``/``ValueError``/
        ``AttributeError`` on exotic crafted inputs where the zero-copy
        decoder raises typed :class:`~repro.core.codec.WireCodecError`s,
        both decoders re-run protocol-object validators (a crafted
        ``res_spec`` raises :class:`ReservationStateError`, a
        :class:`~repro.errors.ReproError` outside the crypto branch —
        the fuzz sweep found exactly this escape), and all of it must
        classify as malformed, never crash the protocol.
        """
        if isinstance(received, (bytes, bytearray, memoryview)):
            try:
                if fastpath.get_config().zero_copy_ingress:
                    received = WireView.parse(received).materialize()
                else:
                    received = from_wire(bytes(received))
            except (ReproError, KeyError, ValueError, TypeError,
                    AttributeError, OverflowError) as exc:
                raise MalformedMessageError(
                    f"{what}: undecodable message: {exc}"
                ) from exc
        if not isinstance(received, SignedEnvelope):
            raise MalformedMessageError(
                f"{what}: expected a signed envelope, got "
                f"{type(received).__name__}"
            )
        return received

    def _deliver(
        self,
        channel: SecureChannel,
        sender: DistinguishedName,
        message: SignedEnvelope,
        *,
        outcome: SignallingOutcome,
        at_time: float,
        deadline: Deadline | None,
        what: str,
    ) -> SignedEnvelope:
        """One reliable-ish delivery: per-hop timeout, bounded retries
        with backoff + jitter, and the link's circuit breaker.

        Modelled latency for every attempt — successful crossing, timed
        out wait, and backoff alike — accrues to *outcome*; message and
        byte counters only count copies that actually arrived, matching
        the channel's own accounting.
        """
        breaker = self._breaker_for(channel.link)
        policy = self.retry_policy
        last_exc: ReproError | None = None
        for attempt in range(1, policy.max_attempts + 1):
            now = at_time + outcome.latency_s
            if deadline is not None:
                deadline.check(now, what=what)
            breaker.check(now)
            try:
                received, extra = channel.transmit_timed(sender, message)
            except MessageDroppedError as exc:
                last_exc = exc
            else:
                if extra > 0.0 and extra >= self.hop_timeout_s:
                    # Delivered, but after the sender's timeout fired; the
                    # receiver discards the stale copy as a duplicate.
                    last_exc = ChannelTimeoutError(
                        f"{what}: delivery on {channel.link} took "
                        f"{extra:.3f}s, over the {self.hop_timeout_s:.3f}s "
                        "hop timeout"
                    )
                else:
                    # Structural validation before anything touches the
                    # payload: a truncated or junk delivery becomes a
                    # typed MalformedMessageError, never a raw decode
                    # exception escaping the protocol.
                    received = self._decode_received(received, what=what)
                    outcome.latency_s += channel.latency_s + extra
                    outcome.messages += 1
                    outcome.bytes += received.wire_size()
                    breaker.record_success(at_time + outcome.latency_s)
                    return received
            # The sender waited out its timeout without an acknowledgement.
            outcome.latency_s += self.hop_timeout_s
            breaker.record_failure(at_time + outcome.latency_s)
            if attempt < policy.max_attempts:
                outcome.latency_s += policy.backoff_s(attempt, self.rng)
                self._note_retry(
                    outcome=outcome, what=what, target=channel.link,
                    attempt=attempt, at_time=at_time + outcome.latency_s,
                    reason=str(last_exc),
                )
        raise RetryExhaustedError(
            f"{what}: no delivery on link {channel.link} after "
            f"{policy.max_attempts} attempts: {last_exc}"
        ) from last_exc

    def _call_with_retries(
        self,
        op: Callable[[], _T],
        *,
        outcome: SignallingOutcome,
        at_time: float,
        deadline: Deadline | None,
        what: str,
        target: str,
    ) -> _T:
        """Run *op* with bounded retries over transient service outages
        (crashed broker, policy server / repository timeout)."""
        policy = self.retry_policy
        last_exc: ReproError | None = None
        for attempt in range(1, policy.max_attempts + 1):
            now = at_time + outcome.latency_s
            if deadline is not None:
                deadline.check(now, what=what)
            try:
                return op()
            except _TRANSIENT_ERRORS as exc:
                last_exc = exc
                if attempt < policy.max_attempts:
                    outcome.latency_s += policy.backoff_s(attempt, self.rng)
                    self._note_retry(
                        outcome=outcome, what=what, target=target,
                        attempt=attempt, at_time=at_time + outcome.latency_s,
                        reason=str(exc),
                    )
        raise RetryExhaustedError(
            f"{what} failed after {policy.max_attempts} attempts: {last_exc}"
        ) from last_exc

    def _release_granted(
        self,
        granted: list[tuple[BandwidthBroker, str]],
        *,
        at_time: float,
        reason: str,
    ) -> None:
        """Release partial-path admissions, tolerating broker failures.

        An unreachable broker cannot release explicitly; the failure is
        recorded (``UNWIND_FAILED``) and its soft-state lease — when the
        broker runs soft state — reclaims the capacity on expiry.
        Consumes *granted* so callers (and the enclosing ``finally``)
        never release twice.
        """
        registry = obs_metrics.get_registry()
        event_log = obs_events.get_event_log()
        while granted:
            bb, handle = granted.pop()
            try:
                bb.cancel(handle, reason=reason, reason_code=ReasonCode.UNWOUND)
            except ReproError as exc:
                logger.warning(
                    "%s: unwind of %s failed (%s); soft state must reclaim",
                    bb.domain, handle, exc,
                )
                if registry is not None:
                    registry.counter(
                        "unwind_failures_total",
                        "Partial-path releases that failed (left to "
                        "soft-state expiry)",
                    ).inc(domain=bb.domain)
                if event_log is not None:
                    event_log.emit(
                        EventKind.UNWIND_FAILED, at_time=at_time,
                        domain=bb.domain, handle=handle, reason=str(exc),
                        reason_code=ReasonCode.UNWIND_RELEASE_FAILED,
                    )
                obs_audit.record_decision(
                    obs_audit.RecordKind.UNWIND_FAILED,
                    at_time=at_time, domain=bb.domain, handle=handle,
                    reason=str(exc),
                    reason_code=ReasonCode.UNWIND_RELEASE_FAILED.value,
                )
                continue
            logger.info("%s: released %s (%s)", bb.domain, handle, reason)
            if registry is not None:
                registry.counter(
                    "releases_total",
                    "Partial-path reservations released after a "
                    "downstream denial",
                ).inc(domain=bb.domain)
            if event_log is not None:
                event_log.emit(
                    EventKind.RELEASE, at_time=at_time, domain=bb.domain,
                    handle=handle, reason=reason,
                    reason_code=ReasonCode.UNWOUND,
                )

    def _bb_credentials(
        self, bb: BandwidthBroker, chains: Sequence[Sequence[Certificate]]
    ) -> list[ProxyCredential]:
        """The broker's proxy credentials: one per delegation chain whose
        tip names this broker as subject (delegated by the upstream hop).
        A user with several community credentials yields several chains."""
        return [
            ProxyCredential(chain[-1], bb.keypair.private)
            for chain in chains
            if chain and chain[-1].subject == bb.dn
        ]

    def _verified_path_assertions(
        self, verified: VerifiedRAR, peer_certificate: Certificate,
        at_time: float,
    ) -> dict[str, object]:
        """Merge attributes from assertions whose issuer's signature checks
        out against a certificate we saw in the chain."""
        certs: dict = {}
        if verified.user_certificate is not None:
            certs[verified.user_certificate.subject] = verified.user_certificate
        for cert in verified.introduced:
            certs[cert.subject] = cert
        certs[peer_certificate.subject] = peer_certificate
        merged: dict[str, object] = {}
        for assertion in verified.assertions:
            cert = certs.get(assertion.issuer)
            if cert is None:
                continue
            if not assertion.verify(cert.public_key, at_time=at_time):
                continue
            for k, v in assertion.attributes:
                merged[k] = v
        return merged

    # -- the protocol ----------------------------------------------------------------

    def reserve(
        self,
        user: UserAgent,
        request: ReservationRequest,
        *,
        assertions: Sequence[SignedAssertion] = (),
        restrictions: tuple[str, ...] = (),
        deadline_s: float | None = None,
    ) -> SignallingOutcome:
        """Run the full hop-by-hop reservation for *request*.

        ``deadline_s`` bounds the whole signalling attempt in modelled
        seconds; the absolute deadline travels in the RAR so every hop
        bounds its retries by the remaining end-to-end budget.

        Observability: a per-request correlation ID is minted here (the
        moment the user agent signs ``RAR_U``), every event emitted while
        the request is in flight carries it, and — when tracing is
        enabled — a ``reserve`` root span plus one nested ``hop`` span
        per BB record the trajectory exactly as the signature envelopes
        nest it.
        """
        correlation_id = obs_spans.mint_correlation_id()
        # Worker threads are reused across requests: start the audit
        # pending-check buffer from a clean slate for this one.
        obs_audit.discard_pending()
        tracer = obs_spans.get_tracer()
        root = None
        if tracer is not None:
            root = tracer.begin(
                "reserve",
                trace_id=correlation_id,
                user=str(user.dn),
                source=request.source_domain,
                destination=request.destination_domain,
                rate_mbps=request.rate_mbps,
            )
        logger.info(
            "%s: reserve %s -> %s rate=%.1f Mb/s user=%s",
            correlation_id, request.source_domain,
            request.destination_domain, request.rate_mbps, user.dn,
        )
        registry = obs_metrics.get_registry()
        if registry is not None:
            registry.gauge(
                "signalling_inflight",
                "Reservations currently in hop-by-hop signalling",
            ).inc()
        try:
            with obs_events.correlation_scope(correlation_id):
                outcome = self._signal(
                    user, request, assertions=assertions,
                    restrictions=restrictions, tracer=tracer, root=root,
                    deadline_s=deadline_s,
                )
        finally:
            if registry is not None:
                registry.gauge("signalling_inflight").dec()
        outcome.correlation_id = correlation_id
        ledger = obs_audit.get_ledger()
        if ledger is not None:
            # The terminal record of the decision chain: what the source
            # domain told the user.  Drains any checks still pending
            # (e.g. the destination's §6.5 delegation verification).
            ledger.record(
                obs_audit.RecordKind.OUTCOME,
                at_time=self.clock(),
                domain=outcome.denial_domain or "",
                user=str(user.dn),
                correlation_id=correlation_id,
                granted=outcome.granted,
                reason=outcome.denial_reason or "",
                rate_mbps=request.rate_mbps,
                window=(request.start, request.end),
                path=">".join(outcome.path),
                messages=outcome.messages,
                latency_s=f"{outcome.latency_s:.6f}",
            )
        if tracer is not None and root is not None:
            tracer.end(
                root,
                status="ok" if outcome.granted else "denied",
                granted=outcome.granted,
                sim_latency_s=outcome.latency_s,
                messages=outcome.messages,
            )
        registry = obs_metrics.get_registry()
        if registry is not None:
            registry.counter(
                "reservations_total",
                "End-to-end hop-by-hop reservation attempts",
            ).inc(result="granted" if outcome.granted else "denied")
            registry.counter(
                "signalling_messages_total",
                "Signalling messages exchanged by the hop-by-hop protocol",
            ).inc(outcome.messages)
            registry.counter(
                "signalling_bytes_total",
                "Signalling bytes exchanged by the hop-by-hop protocol",
            ).inc(outcome.bytes)
            registry.histogram(
                "signalling_latency_seconds",
                "Modelled end-to-end signalling latency per reservation",
            ).observe(outcome.latency_s)
            if not outcome.granted:
                registry.counter(
                    "denials_total", "Reservations denied, by denying domain",
                ).inc(domain=outcome.denial_domain or "")
        if outcome.granted:
            logger.info(
                "%s: granted along %s (latency %.1f ms, %d messages)",
                correlation_id, " -> ".join(outcome.path),
                outcome.latency_s * 1e3, outcome.messages,
            )
        else:
            logger.warning(
                "%s: denied by %s: %s", correlation_id,
                outcome.denial_domain, outcome.denial_reason,
            )
        return outcome

    def _signal(
        self,
        user: UserAgent,
        request: ReservationRequest,
        *,
        assertions: Sequence[SignedAssertion],
        restrictions: tuple[str, ...],
        tracer: obs_spans.Tracer | None,
        root: obs_spans.Span | None,
        deadline_s: float | None,
    ) -> SignallingOutcome:
        """The protocol body (request leg, reply leg); see :meth:`reserve`."""
        route_t0 = obs_spans.phase_clock()
        at_time = self.clock()
        path = self.domain_path(request.source_domain, request.destination_domain)
        outcome = SignallingOutcome(granted=False, path=tuple(path))
        if tracer is not None and root is not None:
            tracer.record(
                "route", parent=root, start_wall=route_t0, hops=len(path),
            )

        # User-side preparation: channel setup, capability delegation to
        # the source BB, and the signing of RAR_U itself.
        prepare_t0 = obs_spans.phase_clock()
        source_bb = self._broker(path[0])
        user_channel = self.channels.connect(user, source_bb, at_time=at_time)
        bb_public = user_channel.peer_certificate(user.dn).public_key

        capability_certs = user.delegate_capabilities_to(
            source_bb.dn, bb_public, restrictions=restrictions
        )
        all_assertions = tuple(assertions) + tuple(user.assertions)
        deadline_at = (
            at_time + deadline_s if deadline_s is not None else None
        )
        deadline = Deadline(deadline_at) if deadline_at is not None else None
        traceparent = (
            format_traceparent(
                TraceContext(trace_id=root.trace_id, span_id=root.span_id)
            )
            if root is not None
            else None
        )
        rar = make_user_rar(
            request=request,
            source_bb=source_bb.dn,
            capability_certs=capability_certs,
            assertions=all_assertions,
            user=user.dn,
            user_key=user.keypair.private,
            deadline=deadline_at,
            traceparent=traceparent,
        )
        if tracer is not None and root is not None:
            tracer.record(
                "prepare", parent=root, start_wall=prepare_t0,
                delegations=len(capability_certs),
            )

        granted_so_far: list[tuple[BandwidthBroker, str]] = []
        try:
            return self._signal_inner(
                user=user, request=request, path=path, outcome=outcome,
                rar=rar, user_channel=user_channel, deadline=deadline,
                granted_so_far=granted_so_far, tracer=tracer, root=root,
                at_time=at_time,
            )
        finally:
            # Whatever aborted the legs above — an injected crash between
            # two admissions, an unexpected bug — admitted capacity on the
            # partial path must never leak.  The normal denial/approval
            # paths consume ``granted_so_far`` themselves, so this only
            # fires on abnormal exits.
            if granted_so_far:
                self._release_granted(
                    granted_so_far, at_time=at_time,
                    reason="signalling aborted",
                )

    def _signal_inner(
        self,
        *,
        user: UserAgent,
        request: ReservationRequest,
        path: list[str],
        outcome: SignallingOutcome,
        rar: SignedEnvelope,
        user_channel: SecureChannel,
        deadline: Deadline | None,
        granted_so_far: list[tuple[BandwidthBroker, str]],
        tracer: obs_spans.Tracer | None,
        root: obs_spans.Span | None,
        at_time: float,
    ) -> SignallingOutcome:
        registry = obs_metrics.get_registry()
        event_log = obs_events.get_event_log()
        source_bb = self._broker(path[0])

        # --- request leg: hop by hop downstream --------------------------------
        sent_rar = rar
        inbound_channel = user_channel
        inbound_sender: DistinguishedName = user.dn
        phase_t0 = obs_spans.phase_clock()
        try:
            rar = self._deliver(
                user_channel, user.dn, rar, outcome=outcome,
                at_time=at_time, deadline=deadline, what="submit RAR_U",
            )
        except _DELIVERY_FAILURES as exc:
            if tracer is not None and root is not None:
                tracer.record(
                    "submit", parent=root, start_wall=phase_t0,
                    status="error", error=str(exc),
                )
            outcome.denial_domain = path[0]
            outcome.denial_reason = f"source broker unreachable: {exc}"
            obs_audit.record_decision(
                obs_audit.RecordKind.DENY,
                at_time=at_time, domain=path[0], user=str(user.dn),
                reason=outcome.denial_reason,
                reason_code=reason_code_for(exc).value,
                rate_mbps=request.rate_mbps,
            )
            return outcome
        except MalformedMessageError as exc:
            # The copy that reached the source broker was structurally
            # broken (truncated payload, unknown field tag, junk bytes):
            # a typed denial, not a raw decode exception.
            if tracer is not None and root is not None:
                tracer.record(
                    "submit", parent=root, start_wall=phase_t0,
                    status="error", error=str(exc),
                )
            outcome.denial_domain = path[0]
            outcome.denial_reason = f"malformed envelope: {exc}"
            if event_log is not None:
                event_log.emit(
                    EventKind.TRUST_FAILURE, at_time=at_time,
                    domain=path[0], reason=str(exc),
                    reason_code=ReasonCode.TRUST_FAILURE,
                )
            obs_audit.record_decision(
                obs_audit.RecordKind.DENY,
                at_time=at_time, domain=path[0], user=str(user.dn),
                reason=outcome.denial_reason,
                reason_code=ReasonCode.TRUST_FAILURE.value,
                rate_mbps=request.rate_mbps,
            )
            return outcome
        if tracer is not None and root is not None:
            tracer.record(
                "submit", parent=root, start_wall=phase_t0,
                sim_latency_s=user_channel.latency_s,
            )
        #: Where the current hop's accounting starts: taken the moment the
        #: previous instrumented stretch ended, so channel/certificate
        #: bookkeeping between hops lands in a named segment instead of
        #: pooling as untracked self-time.
        hop_t0 = obs_spans.phase_clock()

        channels_walked: list[SecureChannel] = [user_channel]
        upstream_peer_cert = user_channel.peer_certificate(source_bb.dn)

        #: Open ``hop`` spans in travel order; each closes when the reply
        #: passes back through that hop (denials close them early).
        hop_spans: list = []
        span_parent = root
        #: Latency the request paid to reach the hop being processed.
        inbound_latency_s = user_channel.latency_s

        denial: SignedEnvelope | None = None
        #: Accumulated cost of the path so far (§6.1: the request carries
        #: "a cost that the user is willing to accept"; each domain's
        #: tariff is added as the request moves downstream).
        accumulated_cost = 0.0
        usage_mbps_hours = request.rate_mbps * request.duration / 3600.0

        for index, domain in enumerate(path):
            bb = self._broker(domain)
            # Honor the end-to-end deadline as *carried in the RAR* —
            # each hop bounds its work by the budget the envelope states,
            # not by out-of-band knowledge.
            carried_deadline = rar.get(F_DEADLINE)
            if carried_deadline is not None:
                deadline = Deadline(float(carried_deadline))
            if obs_audit.get_ledger() is not None:
                # Recovery context for this hop's decision record: the
                # inbound link's breaker state and the end-to-end budget
                # left when the hop started working.
                obs_audit.note_recovery(
                    breaker_state=self._breaker_for(inbound_channel.link).state,
                    deadline_remaining_s=(
                        deadline.expires_at - (at_time + outcome.latency_s)
                        if deadline is not None else None
                    ),
                )
            outcome.latency_s += self.processing_delay_s
            hop_sim_latency_s = inbound_latency_s + self.processing_delay_s
            upstream = path[index - 1] if index > 0 else None
            downstream = path[index + 1] if index + 1 < len(path) else None

            hop_span = None
            if tracer is not None:
                # Parent under the span id the *envelope* names (the
                # upstream hop's span, carried in F_TRACEPARENT), exactly
                # as each signature layer wraps the upstream RAR; the
                # in-process chain is only a fallback for envelopes built
                # while tracing was off.
                carried_parent = _carried_parent_span_id(rar)
                if carried_parent is not None:
                    hop_span = tracer.begin(
                        "hop",
                        trace_id=root.trace_id,
                        parent_span_id=carried_parent,
                        start_wall=hop_t0,
                        domain=domain,
                        bb=str(bb.dn),
                    )
                else:
                    hop_span = tracer.begin(
                        "hop",
                        trace_id=root.trace_id,
                        parent=span_parent,
                        start_wall=hop_t0,
                        domain=domain,
                        bb=str(bb.dn),
                    )
                hop_spans.append(hop_span)
                span_parent = hop_span

            # Admission-plane defense gate, BEFORE any signature work:
            # the per-peer token bucket, the replay guard (keyed on the
            # envelope's canonical-bytes digest), and the overload shed
            # all run for the cost of a few dict operations, so abusive
            # signalling never reaches the expensive verification below.
            if bb.defense is not None:
                try:
                    bb.defense.admit_signal(
                        peer=(upstream if upstream is not None
                              else str(user.dn)),
                        peer_kind=("domain" if upstream is not None
                                   else "user"),
                        now=at_time + outcome.latency_s,
                        operation="reserve",
                        envelope_digest=_envelope_digest(rar.cbe_bytes()),
                    )
                except DefenseError as exc:
                    reason = str(exc)
                    code = reason_code_for(exc)
                    logger.warning(
                        "%s: defense gate rejected signal: %s", domain, reason
                    )
                    if tracer is not None:
                        tracer.record(
                            "defense", parent=hop_span, start_wall=hop_t0,
                            status="rejected", error=reason,
                        )
                    if event_log is not None:
                        event_log.emit(
                            EventKind.DENY, at_time=at_time, domain=domain,
                            user=str(user.dn), reason=reason,
                            reason_code=code,
                        )
                    obs_audit.record_decision(
                        obs_audit.RecordKind.DENY,
                        at_time=at_time, domain=domain, user=str(user.dn),
                        reason=reason, reason_code=code.value,
                        rate_mbps=request.rate_mbps,
                    )
                    denial = make_denial(
                        domain=domain, reason=reason,
                        bb=bb.dn, bb_key=bb.keypair.private,
                    )
                    break

            # Verification, with recovery: a tampered copy triggers a
            # bounded retransmission request upstream; a repository
            # outage triggers backoff-and-retry; genuine trust failures
            # deny immediately.  The phase opens at ``hop_t0`` so it
            # also owns the channel/certificate bookkeeping since the
            # previous hop's ``forward``.
            phase_t0 = hop_t0
            verified: VerifiedRAR | None = None
            verify_exc: Exception | None = None
            for attempt in range(1, self.retry_policy.max_attempts + 1):
                try:
                    if deadline is not None:
                        deadline.check(
                            at_time + outcome.latency_s,
                            what=f"verification at {domain}",
                        )
                    if self.repository is not None:
                        verified, lookups = verify_rar_with_repository(
                            rar,
                            verifier=bb.dn,
                            peer_certificate=upstream_peer_cert,
                            truststore=bb.truststore,
                            repository=self.repository,
                            at_time=at_time,
                        )
                        outcome.repository_lookups += lookups
                        lookup_latency_s = (
                            lookups * self.repository.lookup_latency_s
                        )
                        outcome.latency_s += lookup_latency_s
                        hop_sim_latency_s += lookup_latency_s
                    else:
                        verified = verify_rar(
                            rar,
                            verifier=bb.dn,
                            peer_certificate=upstream_peer_cert,
                            truststore=bb.truststore,
                            at_time=at_time,
                        )
                    break
                except TamperedMessageError as exc:
                    # Integrity failure on the received copy: ask the
                    # upstream sender to retransmit the original.
                    verify_exc = exc
                    if attempt >= self.retry_policy.max_attempts:
                        break
                    outcome.latency_s += self.retry_policy.backoff_s(
                        attempt, self.rng
                    )
                    self._note_retry(
                        outcome=outcome, what=f"verification at {domain}",
                        target=inbound_channel.link, attempt=attempt,
                        at_time=at_time + outcome.latency_s, reason=str(exc),
                    )
                    try:
                        rar = self._deliver(
                            inbound_channel, inbound_sender, sent_rar,
                            outcome=outcome, at_time=at_time,
                            deadline=deadline,
                            what=f"retransmission to {domain}",
                        )
                    except (*_DELIVERY_FAILURES, MalformedMessageError) as exc2:
                        verify_exc = exc2
                        break
                except RepositoryUnavailableError as exc:
                    verify_exc = exc
                    if attempt >= self.retry_policy.max_attempts:
                        break
                    outcome.latency_s += self.retry_policy.backoff_s(
                        attempt, self.rng
                    )
                    self._note_retry(
                        outcome=outcome, what=f"verification at {domain}",
                        target=str(
                            self.repository.name if self.repository else ""
                        ),
                        attempt=attempt,
                        at_time=at_time + outcome.latency_s, reason=str(exc),
                    )
                except DeadlineExceededError as exc:
                    verify_exc = exc
                    break
                except (TrustError, SignallingError, CertificateError,
                        EncodingError) as exc:
                    # EncodingError: a malformed inner layer surfaced
                    # during verification — denied like any other trust
                    # failure instead of escaping as a raw decode error.
                    verify_exc = exc
                    break
            if verified is None:
                exc = verify_exc
                if isinstance(exc, (DeadlineExceededError, RetryExhaustedError,
                                    CircuitOpenError)):
                    reason = str(exc)
                else:
                    reason = f"trust verification failed: {exc}"
                logger.warning("%s: trust verification failed: %s", domain, exc)
                if tracer is not None:
                    tracer.record(
                        "verify", parent=hop_span, start_wall=phase_t0,
                        status="error", error=str(exc),
                    )
                if event_log is not None:
                    event_log.emit(
                        EventKind.TRUST_FAILURE, at_time=at_time,
                        domain=domain, reason=str(exc),
                    )
                obs_audit.record_decision(
                    obs_audit.RecordKind.DENY,
                    at_time=at_time, domain=domain, user=str(user.dn),
                    reason=reason,
                    reason_code=(
                        reason_code_for(exc) if exc is not None
                        else ReasonCode.TRUST_FAILURE
                    ).value,
                    rate_mbps=request.rate_mbps,
                )
                denial = make_denial(
                    domain=domain, reason=reason,
                    bb=bb.dn, bb_key=bb.keypair.private,
                )
                break
            if tracer is not None:
                tracer.record(
                    "verify", parent=hop_span, start_wall=phase_t0,
                    depth=verified.depth, signer=str(verified.user),
                )

            # Local decision pipeline, with recovery: the policy server
            # and this hop's own broker may be down transiently; a hop
            # whose broker stays down cannot even sign a denial, so the
            # upstream hop synthesizes one.
            try:
                phase_t0 = obs_spans.phase_clock()
                chains = split_capability_chains(verified.capability_chain)
                info = self._call_with_retries(
                    lambda: bb.policy_server.verify_credentials(
                        user=verified.user,
                        assertions=verified.assertions,
                        capability_chains=chains,
                        at_time=at_time,
                    ),
                    outcome=outcome, at_time=at_time, deadline=deadline,
                    what=f"credential verification at {domain}", target=domain,
                )
                path_attrs = self._verified_path_assertions(
                    verified, upstream_peer_cert, at_time
                )
                local_request = (
                    verified.request.with_attributes(**path_attrs)
                    if path_attrs
                    else verified.request
                )
                if tracer is not None:
                    tracer.record(
                        "policy", parent=hop_span, start_wall=phase_t0,
                        chains=len(chains), rejected=len(info.rejected),
                    )

                phase_t0 = obs_spans.phase_clock()
                admit = self._call_with_retries(
                    lambda: bb.admit(
                        local_request,
                        info,
                        at_time=at_time,
                        upstream=upstream,
                        downstream=downstream,
                    ),
                    outcome=outcome, at_time=at_time, deadline=deadline,
                    what=f"admission at {domain}", target=domain,
                )
            except _DELIVERY_FAILURES as exc:
                cause = exc.__cause__
                if isinstance(exc, RetryExhaustedError) and isinstance(
                    cause, BrokerUnavailableError
                ):
                    # This hop's BB is gone: it cannot sign anything.  The
                    # upstream hop detects the silence and synthesizes the
                    # denial (the user-facing report when it IS the source).
                    logger.warning(
                        "%s: broker unavailable, upstream reports: %s",
                        domain, exc,
                    )
                    if tracer is not None and hop_span is not None:
                        tracer.end(hop_span, status="failed", error=str(exc))
                    channels_walked.pop()
                    obs_audit.record_decision(
                        obs_audit.RecordKind.DENY,
                        at_time=at_time, domain=domain, user=str(user.dn),
                        reason=str(exc),
                        reason_code=ReasonCode.BROKER_UNREACHABLE.value,
                        rate_mbps=request.rate_mbps,
                    )
                    if index == 0:
                        outcome.denial_domain = domain
                        outcome.denial_reason = str(exc)
                        return outcome
                    prev_bb = self._broker(path[index - 1])
                    denial = make_denial(
                        domain=domain, reason=str(exc),
                        bb=prev_bb.dn, bb_key=prev_bb.keypair.private,
                    )
                else:
                    # Policy server / repository stayed down, or the
                    # deadline passed: this hop is alive and denies.
                    obs_audit.record_decision(
                        obs_audit.RecordKind.DENY,
                        at_time=at_time, domain=domain, user=str(user.dn),
                        reason=str(exc),
                        reason_code=reason_code_for(exc).value,
                        rate_mbps=request.rate_mbps,
                    )
                    denial = make_denial(
                        domain=domain, reason=str(exc),
                        bb=bb.dn, bb_key=bb.keypair.private,
                    )
                break
            if tracer is not None:
                tracer.record(
                    "admission", parent=hop_span, start_wall=phase_t0,
                    granted=admit.granted, handle=admit.reservation.handle,
                )
            # The next phase (delegation at the destination, forward
            # everywhere else) opens here so that metering and cost
            # negotiation are attributed to it.
            phase_t0 = obs_spans.phase_clock()
            outcome.handles[domain] = admit.reservation.handle
            if registry is not None:
                registry.histogram(
                    "hop_latency_seconds",
                    "Modelled per-hop signalling latency (inbound channel "
                    "crossing + processing + repository lookups)",
                ).observe(hop_sim_latency_s, domain=domain)
            if not admit.granted:
                denial = make_denial(
                    domain=domain, reason=admit.reason,
                    bb=bb.dn, bb_key=bb.keypair.private,
                )
                break
            granted_so_far.append((bb, admit.reservation.handle))

            # Cost negotiation: this domain's tariff (its ingress SLA price
            # for transit/destination domains) joins the running total; the
            # request dies where the user's ceiling is first exceeded.
            if upstream is not None:
                sla = bb.slas_in.get(upstream)
                if sla is not None:
                    accumulated_cost += sla.price_per_mbps_hour * usage_mbps_hours
            if accumulated_cost > request.cost_ceiling:
                bb.cancel(
                    admit.reservation.handle,
                    reason="cost ceiling exceeded",
                    reason_code=ReasonCode.UNWOUND,
                )
                granted_so_far.pop()
                reason = (
                    f"cost ceiling exceeded: path costs "
                    f"{accumulated_cost:.2f} so far, user accepts at most "
                    f"{request.cost_ceiling:.2f}"
                )
                obs_audit.record_decision(
                    obs_audit.RecordKind.DENY,
                    at_time=at_time, domain=domain, user=str(user.dn),
                    reason=reason,
                    reason_code=ReasonCode.COST_CEILING.value,
                    rate_mbps=request.rate_mbps,
                )
                denial = make_denial(
                    domain=domain, reason=reason,
                    bb=bb.dn, bb_key=bb.keypair.private,
                )
                break
            outcome.cost = accumulated_cost

            if downstream is None:
                # Destination domain: full §6.5 check — every chain, with
                # proof of possession by this BB.
                outcome.final_rar = rar
                outcome.verified = verified
                results = []
                for chain in chains:
                    try:
                        results.append(
                            verify_delegation_chain(
                                list(chain),
                                trusted_issuers=bb.policy_server._trusted_communities,
                                at_time=at_time,
                                possession_nonce=b"hop-by-hop-final",
                                possession_prover=lambda nonce: prove_possession(
                                    bb.keypair.private, nonce
                                ),
                                revocation_checker=(
                                    bb.policy_server.revocation_checker
                                ),
                            )
                        )
                    except DelegationError:
                        continue
                outcome.delegations = tuple(results)
                outcome.delegation = results[0] if results else None
                if tracer is not None:
                    tracer.record(
                        "delegation", parent=hop_span, start_wall=phase_t0,
                        chains=len(chains), verified=len(results),
                    )
                break

            # Forward downstream: delegate every capability chain this BB
            # holds, introduce the upstream certificate.
            next_bb = self._broker(downstream)
            channel = self.channels.connect(bb, next_bb, at_time=at_time)
            forwarded_caps: tuple[Certificate, ...] = tuple(
                delegate(
                    cred,
                    delegate_subject=next_bb.dn,
                    delegate_public_key=channel.peer_certificate(bb.dn).public_key,
                )
                for cred in self._bb_credentials(bb, chains)
            )
            added_assertions: tuple[SignedAssertion, ...] = ()
            if admit.decision is not None and admit.decision.modifications:
                added_assertions = (
                    make_assertion(
                        issuer=bb.dn,
                        issuer_key=bb.keypair.private,
                        subject=verified.user,
                        attributes=dict(admit.decision.modifications),
                    ),
                )
            forward_rar = make_bb_rar(
                inner=rar,
                introduced_cert=(
                    None if self.repository is not None else upstream_peer_cert
                ),
                downstream=next_bb.dn,
                capability_certs=forwarded_caps,
                assertions=added_assertions,
                bb=bb.dn,
                bb_key=bb.keypair.private,
                append=self.envelope_mode == "append",
                # Rewrite the trace context: the downstream hop's spans
                # hang under THIS hop's span, mirroring how this layer
                # wraps the upstream RAR.
                traceparent=(
                    format_traceparent(
                        TraceContext(
                            trace_id=hop_span.trace_id,
                            span_id=hop_span.span_id,
                        )
                    )
                    if hop_span is not None
                    else None
                ),
            )
            try:
                rar = self._deliver(
                    channel, bb.dn, forward_rar, outcome=outcome,
                    at_time=at_time, deadline=deadline,
                    what=f"forward to {downstream}",
                )
            except _DELIVERY_FAILURES as exc:
                obs_audit.record_decision(
                    obs_audit.RecordKind.DENY,
                    at_time=at_time, domain=downstream, user=str(user.dn),
                    reason=f"domain {downstream} unreachable: {exc}",
                    reason_code=reason_code_for(exc).value,
                    rate_mbps=request.rate_mbps,
                )
                denial = make_denial(
                    domain=downstream,
                    reason=f"domain {downstream} unreachable: {exc}",
                    bb=bb.dn, bb_key=bb.keypair.private,
                )
                break
            except MalformedMessageError as exc:
                # The forwarded copy arrived structurally broken at the
                # downstream hop: a typed denial from there, upstream.
                reason = f"malformed envelope at {downstream}: {exc}"
                if event_log is not None:
                    event_log.emit(
                        EventKind.TRUST_FAILURE, at_time=at_time,
                        domain=downstream, reason=str(exc),
                        reason_code=ReasonCode.TRUST_FAILURE,
                    )
                obs_audit.record_decision(
                    obs_audit.RecordKind.DENY,
                    at_time=at_time, domain=downstream, user=str(user.dn),
                    reason=reason,
                    reason_code=ReasonCode.TRUST_FAILURE.value,
                    rate_mbps=request.rate_mbps,
                )
                denial = make_denial(
                    domain=downstream, reason=reason,
                    bb=bb.dn, bb_key=bb.keypair.private,
                )
                break
            if tracer is not None:
                tracer.record(
                    "forward", parent=hop_span, start_wall=phase_t0,
                    downstream=downstream,
                    sim_latency_s=channel.latency_s,
                )
            hop_t0 = obs_spans.phase_clock()
            inbound_latency_s = channel.latency_s
            channels_walked.append(channel)
            sent_rar = forward_rar
            inbound_channel = channel
            inbound_sender = bb.dn
            upstream_peer_cert = channel.peer_certificate(next_bb.dn)

        # --- reply leg: approval or denial back upstream ------------------------
        if denial is not None:
            denial_domain = denial[F_DOMAIN]
            denial_reason = denial[F_REASON]
            # Release what was granted on the partial path.
            self._release_granted(
                granted_so_far, at_time=at_time,
                reason=f"denied by {denial_domain}",
            )
            reply = denial
            # The denial travels back over the channels already walked; on
            # each channel the downstream endpoint is the sender.  A reply
            # hop that stays unreachable after retries loses the denial —
            # capacity is already safe, the user sees a timeout.
            for index in range(len(channels_walked) - 1, -1, -1):
                channel = channels_walked[index]
                sender = self._broker(path[index]).dn
                phase_t0 = obs_spans.phase_clock()
                reply_parent = (
                    hop_spans[index] if index < len(hop_spans) else root
                )
                try:
                    reply = self._deliver(
                        channel, sender, reply, outcome=outcome,
                        at_time=at_time, deadline=None, what="denial reply",
                    )
                except SignallingError as exc:
                    logger.warning(
                        "denial by %s lost on link %s: %s",
                        denial_domain, channel.link, exc,
                    )
                    if tracer is not None:
                        if reply_parent is not None:
                            tracer.record(
                                "reply", parent=reply_parent,
                                start_wall=phase_t0, status="error",
                                error=str(exc),
                            )
                        for j in range(index, -1, -1):
                            if j < len(hop_spans):
                                tracer.end(hop_spans[j], status="released")
                    break
                if tracer is not None and reply_parent is not None:
                    tracer.record(
                        "reply", parent=reply_parent, start_wall=phase_t0,
                        sim_latency_s=channel.latency_s,
                    )
                if tracer is not None and index < len(hop_spans):
                    hop = hop_spans[index]
                    tracer.end(
                        hop,
                        status=(
                            "denied"
                            if hop.attributes.get("domain") == denial_domain
                            else "released"
                        ),
                    )
            outcome.denial_domain = denial_domain
            outcome.denial_reason = denial_reason
            outcome.approval = None
            return outcome

        # Approval chain: destination first, wrapped at each hop upstream.
        reply = None
        for index in range(len(path) - 1, -1, -1):
            domain = path[index]
            bb = self._broker(domain)
            phase_t0 = obs_spans.phase_clock()
            reply_parent = hop_spans[index] if index < len(hop_spans) else root
            policy_info: tuple[SignedAssertion, ...] = ()
            approval = make_approval(
                handle=outcome.handles[domain],
                domain=domain,
                policy_info=policy_info,
                inner=reply,
                bb=bb.dn,
                bb_key=bb.keypair.private,
            )
            channel = channels_walked[index]
            try:
                reply = self._deliver(
                    channel, bb.dn, approval, outcome=outcome,
                    at_time=at_time, deadline=deadline, what="approval reply",
                )
            except SignallingError as exc:
                # Without the approval the user holds no proof and no
                # handles: treat the reservation as failed, release every
                # admission (graceful degradation: deny, don't leak).
                self._release_granted(
                    granted_so_far, at_time=at_time,
                    reason=f"approval undeliverable at {domain}",
                )
                outcome.granted = False
                outcome.denial_domain = domain
                outcome.denial_reason = f"approval could not be delivered: {exc}"
                outcome.approval = None
                obs_audit.record_decision(
                    obs_audit.RecordKind.DENY,
                    at_time=at_time, domain=domain, user=str(user.dn),
                    reason=outcome.denial_reason,
                    reason_code=reason_code_for(exc).value,
                    rate_mbps=request.rate_mbps,
                )
                if tracer is not None:
                    if reply_parent is not None:
                        tracer.record(
                            "reply", parent=reply_parent, start_wall=phase_t0,
                            status="error", error=str(exc),
                        )
                    for j in range(index, -1, -1):
                        if j < len(hop_spans):
                            tracer.end(hop_spans[j], status="released")
                return outcome
            if tracer is not None and reply_parent is not None:
                tracer.record(
                    "reply", parent=reply_parent, start_wall=phase_t0,
                    sim_latency_s=channel.latency_s,
                )
            if tracer is not None and index < len(hop_spans):
                tracer.end(
                    hop_spans[index],
                    handle=outcome.handles[domain],
                )
        outcome.approval = reply
        outcome.granted = True
        granted_so_far.clear()
        return outcome

    # -- ingress processing (defense gate for unsolicited traffic) ----------------------

    def process_ingress(
        self,
        domain: str,
        message: object,
        *,
        peer: str,
        peer_certificate: Certificate | None = None,
        peer_kind: str = "user",
        at_time: float | None = None,
        operation: str = "reserve",
    ) -> IngressReport:
        """Process one unsolicited inbound signalling message at *domain*.

        The reservation path (:meth:`reserve`) drives brokers from the
        sender's side; a byzantine peer, by contrast, just *sends* — so
        the receiving side needs an explicit entry point that runs the
        same three stages the per-hop loop applies, cheapest first:

        1. the defense gate (per-peer token bucket, replay guard, shed) —
           cost :data:`WORK_GATE`;
        2. structural decode into a signed envelope — :data:`WORK_DECODE`;
        3. transitive-trust verification (when *peer_certificate* is
           supplied; plain nested-layer unwrapping otherwise) —
           :data:`WORK_VERIFY`.

        Returns an :class:`IngressReport`; never raises for a rejected
        message.  ``report.work_units`` is what the message actually cost
        this broker, which the survivability harness integrates into the
        victim's modelled work queue — with defenses off every junk or
        replayed envelope costs the full verification walk, with defenses
        on it costs a dict lookup.
        """
        now = at_time if at_time is not None else self.clock()
        bb = self._broker(domain)
        registry = obs_metrics.get_registry()
        event_log = obs_events.get_event_log()

        def reject(
            exc: Exception, work_units: float, *,
            verified: bool = False,
            traceparent: str | None = None,
            deadline: float | None = None,
        ) -> IngressReport:
            code = reason_code_for(exc)
            if registry is not None:
                registry.counter(
                    "ingress_messages_total",
                    "Unsolicited inbound signalling messages by domain "
                    "and outcome",
                ).inc(domain=domain, outcome="rejected")
            if event_log is not None:
                event_log.emit(
                    EventKind.DENY, at_time=now, domain=domain,
                    user=peer, reason=str(exc), reason_code=code,
                )
            obs_audit.record_decision(
                obs_audit.RecordKind.DENY,
                at_time=now, domain=domain, user=peer,
                reason=str(exc), reason_code=code.value,
            )
            return IngressReport(
                accepted=False, work_units=work_units, verified=verified,
                reason=str(exc), reason_code=code.value,
                traceparent=traceparent, deadline=deadline,
            )

        if isinstance(message, (bytes, bytearray, memoryview)):
            message_digest = _envelope_digest(bytes(message))
        elif isinstance(message, SignedEnvelope):
            message_digest = _envelope_digest(message.cbe_bytes())
        else:
            message_digest = None
        if bb.defense is not None:
            try:
                bb.defense.admit_signal(
                    peer=peer, peer_kind=peer_kind, now=now,
                    operation=operation, envelope_digest=message_digest,
                )
            except DefenseError as exc:
                return reject(exc, WORK_GATE)
        try:
            envelope = self._decode_received(
                message, what=f"ingress at {domain}"
            )
        except MalformedMessageError as exc:
            return reject(exc, WORK_DECODE)
        # Trace/deadline metadata of the outer layer, for the report.
        # Scalar-filtered so both codecs (and crafted non-scalar fields)
        # report identically; no re-parse — the envelope is materialized.
        raw_tp = envelope.get(F_TRACEPARENT)
        traceparent = raw_tp if isinstance(raw_tp, str) else None
        raw_dl = envelope.get(F_DEADLINE)
        deadline = (
            float(raw_dl)
            if isinstance(raw_dl, (int, float))
            and not isinstance(raw_dl, bool)
            else None
        )
        if peer_certificate is None:
            try:
                unwrap_rar_layers(envelope)
            except SignallingError as exc:
                return reject(
                    exc, WORK_DECODE,
                    traceparent=traceparent, deadline=deadline,
                )
            work_units = WORK_DECODE
            verified = False
        else:
            self.ingress_verifications += 1
            try:
                verify_rar(
                    envelope,
                    verifier=bb.dn,
                    peer_certificate=peer_certificate,
                    truststore=bb.truststore,
                    at_time=now,
                )
            except (TrustError, SignallingError, CertificateError,
                    EncodingError) as exc:
                return reject(
                    exc, WORK_VERIFY, verified=True,
                    traceparent=traceparent, deadline=deadline,
                )
            work_units = WORK_VERIFY
            verified = True
        if registry is not None:
            registry.counter(
                "ingress_messages_total",
                "Unsolicited inbound signalling messages by domain "
                "and outcome",
            ).inc(domain=domain, outcome="accepted")
        return IngressReport(
            accepted=True, work_units=work_units, verified=verified,
            traceparent=traceparent, deadline=deadline,
        )

    def process_ingress_batch(
        self,
        domain: str,
        messages: Sequence[object],
        *,
        peer: str,
        peer_certificate: Certificate | None = None,
        peer_kind: str = "user",
        at_time: float | None = None,
        operation: str = "reserve",
    ) -> list[IngressReport]:
        """Process a burst of inbound messages at *domain*, amortized.

        Per-message semantics are *identical* to calling
        :meth:`process_ingress` in a loop — same gate decisions, same
        reports, same ledger records, in order — but all verifications
        run under one shared verification-cache scope
        (:func:`repro.crypto.batch.use_batch_caches`): signatures, trust
        chains and delegation links repeated across the burst are checked
        once and reused, with the PR-5 hit-time guards re-validating
        every reuse, so a revocation landing mid-burst still rejects
        exactly as it would sequentially.  A no-op scope (and therefore
        literally the sequential loop) when batched verification is
        disabled via :mod:`repro.core.fastpath`.
        """
        with batch_verification.use_batch_caches():
            return [
                self.process_ingress(
                    domain, message, peer=peer,
                    peer_certificate=peer_certificate,
                    peer_kind=peer_kind, at_time=at_time,
                    operation=operation,
                )
                for message in messages
            ]

    # -- lifecycle helpers --------------------------------------------------------------

    def claim(self, outcome: SignallingOutcome) -> None:
        """Activate a granted end-to-end reservation in every domain (edge
        routers get configured through each broker's configurator)."""
        if not outcome.granted:
            raise SignallingError("cannot claim a denied reservation")
        logger.info("%s: claiming along %s", outcome.correlation_id,
                    " -> ".join(outcome.path))
        now = self.clock()
        with obs_events.correlation_scope(outcome.correlation_id):
            for domain in outcome.path:
                self._broker(domain).claim(
                    outcome.handles[domain], at_time=now
                )

    def cancel(self, outcome: SignallingOutcome) -> None:
        logger.info("%s: cancelling along %s", outcome.correlation_id,
                    " -> ".join(outcome.path))
        with obs_events.correlation_scope(outcome.correlation_id):
            for domain in outcome.path:
                handle = outcome.handles.get(domain)
                if handle is not None:
                    self._broker(domain).cancel(handle)

    def refresh(self, outcome: SignallingOutcome) -> None:
        """RSVP-style soft-state refresh: renew the lease of a granted
        reservation in every domain on its path (a no-op for hard-state
        brokers)."""
        if not outcome.granted:
            raise SignallingError("cannot refresh a denied reservation")
        now = self.clock()
        with obs_events.correlation_scope(outcome.correlation_id):
            for domain in outcome.path:
                handle = outcome.handles.get(domain)
                if handle is not None:
                    self._broker(domain).refresh(handle, at_time=now)

    def modify(
        self,
        user: UserAgent,
        outcome: SignallingOutcome,
        *,
        rate_mbps: float,
    ) -> SignallingOutcome:
        """Renegotiate a granted reservation's rate end to end.

        GARA models a modification as a fresh admission decision; the
        safe order is release-then-re-reserve with rollback: the old
        reservation is cancelled in every domain, the new rate is
        requested through the full protocol, and if any domain refuses —
        or the new attempt aborts outright — the original reservation is
        restored (it must fit — its capacity was just freed).  Returns
        the outcome of the *new* reservation (granted or not); on denial,
        ``outcome`` remains valid.
        """
        if not outcome.granted or outcome.verified is None:
            raise SignallingError("can only modify granted reservations")
        from dataclasses import replace as _replace

        old_request = outcome.verified.request
        new_request = _replace(old_request, rate_mbps=rate_mbps)
        self.cancel(outcome)
        try:
            fresh = self.reserve(user, new_request)
        except Exception:
            # The re-reserve aborted mid-flight; its own unwind released
            # any partial grants, so the old reservation must be restored
            # before the exception reaches the caller.
            self._restore_after_modify(user, old_request, outcome)
            raise
        if fresh.granted:
            return fresh
        self._restore_after_modify(user, old_request, outcome)
        return fresh

    def _restore_after_modify(
        self,
        user: UserAgent,
        old_request: ReservationRequest,
        outcome: SignallingOutcome,
    ) -> None:
        restored = self.reserve(user, old_request)
        if not restored.granted:  # pragma: no cover - defensive
            raise SignallingError(
                "failed to restore the original reservation after a denied "
                f"modification: {restored.denial_reason}"
            )
        # Keep the caller's outcome object pointing at live handles.
        outcome.handles = restored.handles
        outcome.approval = restored.approval
        outcome.final_rar = restored.final_rar
        outcome.verified = restored.verified
