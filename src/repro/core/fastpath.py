"""Process-wide configuration of the verification fast path.

PR-4's critical-path traces showed the signalling *miss path* — the work
PR-5's verdict caches cannot skip — dominated by canonical re-encoding
of nested envelopes and by repeated per-hop decode/verify work.  Three
coordinated optimisations close that gap (docs/PERFORMANCE.md, "The
verification miss path"):

* **append-only envelope chains** — a forwarding BB signs a digest link
  over the received layer's canonical bytes instead of re-signing the
  whole re-encoded chain (:mod:`repro.core.envelope`);
* **zero-copy ingress decode** — :class:`repro.core.codec.WireView`
  peeks the defense-gate fields out of received bytes without
  materializing the envelope tree;
* **batched verification** — :func:`repro.crypto.batch.verify_rar_batch`
  and the batch-scoped memo the concurrent signaller installs.

Each is independently toggleable so the differential harness
(``tests/differential/``) can run every scenario through the legacy
path and assert identical decisions; ``pytest --slow-path`` flips the
whole suite to the legacy configuration.  The module-global
pattern mirrors :mod:`repro.crypto.cache`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

from repro.errors import SignallingError

__all__ = [
    "FastPathConfig",
    "get_config",
    "configure",
    "reset",
    "use_config",
]

_MODES = ("append", "nested")


@dataclass(frozen=True)
class FastPathConfig:
    """Which fast-path features are armed (all on by default)."""

    #: ``"append"`` — BBs forward RARs as append-only chains (digest
    #: link signed, O(layer) signature bodies).  ``"nested"`` — the
    #: original §6.4 shape: every hop re-signs the full nested chain.
    envelope_mode: str = "append"
    #: Serve ``process_ingress`` gate/peek stages from a
    #: :class:`~repro.core.codec.WireView` over the received bytes
    #: instead of eagerly decoding the whole message.
    zero_copy_ingress: bool = True
    #: Let the concurrent signaller and the source-domain agent install
    #: a batch-scoped verification memo for the duration of a batch.
    batch_verification: bool = True

    def __post_init__(self) -> None:
        if self.envelope_mode not in _MODES:
            raise SignallingError(
                f"envelope_mode must be one of {_MODES}, "
                f"got {self.envelope_mode!r}"
            )

    def slow(self) -> "FastPathConfig":
        """The all-legacy configuration (the differential baseline)."""
        return replace(
            self,
            envelope_mode="nested",
            zero_copy_ingress=False,
            batch_verification=False,
        )


_default = FastPathConfig()
_active = _default
_lock = threading.Lock()


def get_config() -> FastPathConfig:
    """The active fast-path configuration."""
    return _active


def configure(config: FastPathConfig) -> FastPathConfig:
    """Install *config* process-wide; returns it."""
    global _active
    with _lock:
        _active = config
    return config


def reset() -> None:
    """Restore the all-on default configuration."""
    configure(_default)


@contextmanager
def use_config(config: FastPathConfig) -> Iterator[FastPathConfig]:
    """Scope-install *config*, restoring the previous one on exit."""
    global _active
    with _lock:
        previous = _active
        _active = config
    try:
        yield config
    finally:
        with _lock:
            _active = previous
