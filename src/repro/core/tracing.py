"""Signalling-path tracing from nested signatures.

"The signatures both assert the authenticity of the information and
allows for the tracking the path taken by a request as it moves from BB
to BB." (§6.4)

These helpers extract the path structurally (no keys needed — full
cryptographic verification is :func:`repro.core.trust.verify_rar`'s job):
useful for audit trails, diagnostics, and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.dn import DistinguishedName
from repro.core.envelope import SignedEnvelope
from repro.core.messages import (
    F_DOMAIN,
    F_DOWNSTREAM,
    F_HANDLE,
    F_INNER,
    F_TYPE,
    MSG_APPROVAL,
    MSG_RAR,
)
from repro.errors import SignallingError

__all__ = ["PathTrace", "trace_request_path", "trace_approval_chain"]


@dataclass(frozen=True)
class PathTrace:
    """The traced trajectory of a request."""

    #: Signers in travel order: user first, then each BB.
    signers: tuple[DistinguishedName, ...]
    #: The DN each hop addressed its message to.
    addressed_to: tuple[DistinguishedName, ...]
    #: True when every hop's addressee matches the next signer.
    consistent: bool


def trace_request_path(rar: SignedEnvelope) -> PathTrace:
    """Trace the hops of a (possibly nested) RAR, user first.

    Walks the nesting itself with the same depth guard as
    :func:`trace_approval_chain`, so a maliciously deep (or cyclic)
    envelope raises :class:`~repro.errors.SignallingError` instead of
    relying on downstream helpers to bound the walk.
    """
    layers: list[SignedEnvelope] = []
    current: SignedEnvelope | None = rar
    while current is not None:
        if current.get(F_TYPE) != MSG_RAR:
            raise SignallingError(
                f"layer signed by {current.signer} is not a RAR"
            )
        layers.append(current)
        inner = current.get(F_INNER)
        if inner is not None and not isinstance(inner, SignedEnvelope):
            raise SignallingError("inner RAR field holds a non-envelope")
        current = inner
        if len(layers) > 64:
            raise SignallingError("RAR nesting exceeds maximum depth")
    in_travel_order = list(reversed(layers))
    signers = tuple(layer.signer for layer in in_travel_order)
    addressed = tuple(layer.get(F_DOWNSTREAM) for layer in in_travel_order)
    consistent = all(
        addressed[i] == signers[i + 1] for i in range(len(signers) - 1)
    )
    return PathTrace(signers=signers, addressed_to=addressed, consistent=consistent)


def trace_approval_chain(
    approval: SignedEnvelope,
) -> tuple[tuple[DistinguishedName, str, str], ...]:
    """Unwind an approval: ``(signer, domain, handle)`` per hop, the hop
    closest to the user first (the destination's approval innermost)."""
    out = []
    current: SignedEnvelope | None = approval
    while current is not None:
        if current.get(F_TYPE) != MSG_APPROVAL:
            raise SignallingError("not an approval envelope")
        out.append((current.signer, current[F_DOMAIN], current[F_HANDLE]))
        current = current.get(F_INNER)
        if len(out) > 64:
            raise SignallingError("approval nesting exceeds maximum depth")
    return tuple(out)
