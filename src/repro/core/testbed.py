"""Testbed builder: wires every subsystem into a runnable multi-domain grid.

One call to :func:`build_linear_testbed` produces the paper's standard
scenario — a chain of administrative domains, each with its own CA,
bandwidth broker, policy server, admission controller, and DiffServ edge
routers, joined by SLAs, mutually authenticated signalling channels, and
a shared discrete-event network simulator.

The resulting :class:`Testbed` exposes the paper's three signalling
approaches side by side:

* ``testbed.hop_by_hop`` — Approach 2, the contribution;
* ``testbed.end_to_end_agent`` — Approach 1 (GARA end-to-end library);
* ``testbed.coordinator(domain)`` — the STARS-style variant;
* ``testbed.tunnels`` — aggregate tunnels with end-domain-only flows.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.bb.admission import AdmissionController
from repro.bb.broker import (
    INTRA,
    BandwidthBroker,
    egress_resource,
    ingress_resource,
)
from repro.bb.policyserver import PolicyServer
from repro.bb.reservations import Reservation, ReservationRequest
from repro.bb.sla import SLA, SLS
from repro.core.agent import UserAgent
from repro.core.channel import ChannelRegistry
from repro.core.concurrent import ConcurrentSignaller
from repro.core.hopbyhop import HopByHopProtocol, SignallingOutcome
from repro.core.sourcedomain import EndToEndAgent
from repro.core.stars import ReservationCoordinator
from repro.core.tunnels import TunnelService
from repro.crypto.dn import DN
from repro.crypto.truststore import TrustPolicy, TrustStore
from repro.crypto.x509 import Certificate, CertificateAuthority
from repro.errors import SignallingError
from repro.net.diffserv import ExceedAction, NetworkModel, TrafficProfile
from repro.net.packet import DSCP
from repro.net.simulator import Simulator
from repro.net.topology import (
    Topology,
    linear_domain_chain,
    mesh_domains,
    star_domains,
)
from repro.policy.cas import CommunityAuthorizationServer
from repro.policy.engine import Decision, PolicyEngine, Return
from repro.policy.groupserver import GroupServer
from repro.policy.language import compile_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bb.defense import DefensePolicy, DomainDefense
    from repro.faults.injector import FaultInjector

__all__ = [
    "Testbed",
    "build_linear_testbed",
    "build_star_testbed",
    "build_mesh_testbed",
    "NetworkEdgeConfigurator",
]

#: Default per-request SLS cap: generous so admission, not the SLS,
#: is normally the binding constraint.
_DEFAULT_SLS_RATE = 1000.0


class NetworkEdgeConfigurator:
    """Broker-to-data-plane glue: implements
    :class:`repro.bb.broker.EdgeConfigurator` against the DiffServ model."""

    def __init__(self, network: NetworkModel) -> None:
        self.network = network

    def _first_router(self, host: str) -> str:
        return self.network.topology.shortest_path(
            host, next(iter(self.network.topology.graph[host]))
        )[1]

    def provision_flow(self, domain: str, reservation: Reservation) -> None:
        request = reservation.request
        flow_id = str(request.attribute("flow_id", reservation.handle))
        router = self._first_router(request.source_host)
        self.network.install_flow_policer(
            router,
            flow_id,
            TrafficProfile(request.rate_mbps, request.burst_bits),
            mark=request.service_class,
            exceed=ExceedAction.DOWNGRADE,
        )

    def teardown_flow(self, domain: str, reservation: Reservation) -> None:
        request = reservation.request
        flow_id = str(request.attribute("flow_id", reservation.handle))
        router = self._first_router(request.source_host)
        if self.network.flow_policer(router, flow_id) is not None:
            self.network.remove_flow_policer(router, flow_id)

    def provision_ingress(
        self, domain: str, upstream: str, service_class: DSCP,
        total_rate_mbps: float,
    ) -> None:
        borders = self.network.topology.border_routers(domain, upstream)
        for router in borders:
            self.network.set_aggregate_rate(
                router,
                service_class,
                total_rate_mbps,
                burst_bits=max(1000.0, total_rate_mbps * 20_000.0),
                exceed=ExceedAction.DROP,
            )


class Testbed:
    """A fully wired multi-domain QoS testbed."""

    def __init__(
        self,
        topology: Topology,
        *,
        scheme: str = "simulated",
        channel_latency_s: float = 0.005,
        user_channel_latency_s: float = 0.001,
        processing_delay_s: float = 0.001,
        trust_policy: TrustPolicy | None = None,
        default_policy: str | PolicyEngine | None = None,
        seed: int = 2001,
        soft_state_ttl_s: float | None = None,
    ) -> None:
        self.topology = topology
        self.sim = Simulator()
        self.network = NetworkModel(topology, self.sim)
        self.scheme = scheme
        self.rng = random.Random(seed)
        self.channel_latency_s = channel_latency_s
        self.user_channel_latency_s = user_channel_latency_s
        self.channels = ChannelRegistry()
        self.users: dict[str, UserAgent] = {}
        self.cas_servers: dict[str, CommunityAuthorizationServer] = {}
        self.group_servers: dict[str, GroupServer] = {}
        self._trust_policy = trust_policy if trust_policy is not None else TrustPolicy(
            max_introduction_depth=16, require_ca_issued_peers=False
        )
        #: RSVP-style soft-state lease length for every broker (None =
        #: hard state, the pre-robustness default).
        self.soft_state_ttl_s = soft_state_ttl_s
        self._configurator = NetworkEdgeConfigurator(self.network)

        self.domain_cas: dict[str, CertificateAuthority] = {}
        self.brokers: dict[str, BandwidthBroker] = {}
        for domain in topology.domains():
            self._build_domain(domain, default_policy)
        self._peer_domains()

        clock = lambda: self.sim.now  # noqa: E731 - tiny closure
        self.hop_by_hop = HopByHopProtocol(
            self.brokers,
            self.channels,
            self.topology.domain_path,
            processing_delay_s=processing_delay_s,
            clock=clock,
        )
        self.end_to_end_agent = EndToEndAgent(
            self.brokers,
            self.channels,
            self.topology.domain_path,
            processing_delay_s=processing_delay_s,
            clock=clock,
        )
        self.tunnels = TunnelService(self.hop_by_hop, self.channels)
        self._coordinators: dict[str, ReservationCoordinator] = {}

    def concurrent_signaller(self, concurrency: int = 4) -> ConcurrentSignaller:
        """A concurrent engine over this testbed's hop-by-hop protocol
        (brokers, channels and tables are lock-safe; see
        docs/CONCURRENCY.md for the ordering guarantees)."""
        return ConcurrentSignaller(self.hop_by_hop, concurrency=concurrency)

    # -- construction ------------------------------------------------------------

    def _build_domain(
        self, domain: str, default_policy: str | PolicyEngine | None
    ) -> None:
        ca = CertificateAuthority(
            DN.make("Grid", domain, f"CA-{domain}"),
            rng=self.rng,
            scheme=self.scheme,
        )
        self.domain_cas[domain] = ca

        if default_policy is None:
            engine: PolicyEngine = PolicyEngine(
                [Return(Decision.GRANT, f"{domain}: default grant")], name=domain
            )
        elif isinstance(default_policy, str):
            engine = compile_policy(default_policy, name=domain)
        else:
            engine = default_policy

        admission = AdmissionController()
        intra_capacity = self._intra_capacity(domain)
        admission.add_resource(INTRA, intra_capacity)

        server = PolicyServer(domain, engine)
        keypair, cert = ca.issue_keypair(
            DN.make("Grid", domain, f"BB-{domain}"), rng=self.rng
        )
        store = TrustStore(self._trust_policy)
        store.add_anchor(ca.certificate)
        broker = BandwidthBroker(
            domain,
            policy_server=server,
            admission=admission,
            keypair=keypair,
            certificate=cert,
            truststore=store,
            configurator=self._configurator,
            soft_state_ttl_s=self.soft_state_ttl_s,
        )
        self.brokers[domain] = broker

    def _intra_capacity(self, domain: str) -> float:
        caps = [
            self.topology.link_attrs(a, b)["capacity_mbps"]
            for a, b in self.topology.graph.edges
            if self.topology.node(a).domain == domain
            and self.topology.node(b).domain == domain
        ]
        return min(caps) if caps else 1000.0

    def _peer_domains(self) -> None:
        """Create SLAs, trust relationships, admission resources, and
        signalling channels for each pair of adjacent domains."""
        seen: set[frozenset[str]] = set()
        for a, b in self.topology.interdomain_links():
            da, db = self.topology.node(a).domain, self.topology.node(b).domain
            key = frozenset({da, db})
            if key in seen:
                continue
            seen.add(key)
            capacity = self.topology.link_attrs(a, b)["capacity_mbps"]
            for up, down in ((da, db), (db, da)):
                sla = SLA(
                    up,
                    down,
                    slss={DSCP.EF: SLS(max_rate_mbps=min(_DEFAULT_SLS_RATE, capacity))},
                    peer_certificate=self.brokers[up].certificate,
                    peer_ca_certificate=self.domain_cas[up].certificate,
                )
                self.brokers[up].register_sla(sla)
                self.brokers[down].register_sla(sla)
                self.brokers[up].admission.add_resource(
                    egress_resource(down), capacity
                )
                self.brokers[down].admission.add_resource(
                    ingress_resource(up), capacity
                )
            # Contractual trust: each BB trusts the peer's certificate
            # directly (the SLA carries it), then the channel can open.
            self.brokers[da].truststore.add_introduced_peer(
                self.brokers[db].certificate
            )
            self.brokers[db].truststore.add_introduced_peer(
                self.brokers[da].certificate
            )
            self.channels.connect(
                self.brokers[da], self.brokers[db],
                latency_s=self.channel_latency_s,
            )

    # -- admission-plane defenses ------------------------------------------------

    def arm_defenses(
        self,
        policy: "DefensePolicy | None" = None,
        *,
        domains: Iterable[str] | None = None,
    ) -> "dict[str, DomainDefense]":
        """Attach admission-plane defenses (rate limits, quotas, replay
        guard, shedding) to every broker (or just *domains*); returns the
        per-domain defense states for inspection.  One shared policy, one
        independent state per domain."""
        from repro.bb.defense import DomainDefense

        armed: dict[str, DomainDefense] = {}
        for domain in (domains if domains is not None else self.brokers):
            defense = DomainDefense(policy, domain=domain)
            self.brokers[domain].defense = defense
            armed[domain] = defense
        return armed

    def disarm_defenses(self) -> None:
        """Detach every broker's defenses (back to the open fabric)."""
        for broker in self.brokers.values():
            broker.defense = None

    # -- fault injection ---------------------------------------------------------

    def attach_injector(self, injector: "FaultInjector | None") -> None:
        """Wire a deterministic fault injector into every instrumented
        subsystem: all signalling channels (present and future), every
        broker and its policy server, and the certificate repository when
        the protocol runs in repository mode."""
        self.channels.set_injector(injector)
        for broker in self.brokers.values():
            broker.injector = injector
            broker.policy_server.injector = injector
        if self.hop_by_hop.repository is not None:
            self.hop_by_hop.repository.injector = injector

    def detach_injector(self) -> None:
        """Remove the fault injector everywhere (back to a clean fabric)."""
        self.attach_injector(None)

    def sweep_soft_state(self, now: float | None = None) -> int:
        """Run every broker's soft-state sweep; returns reservations
        reclaimed.  A no-op unless the testbed was built with
        ``soft_state_ttl_s``."""
        when = self.sim.now if now is None else now
        return sum(
            len(broker.sweep_soft_state(when))
            for broker in self.brokers.values()
        )

    # -- population -----------------------------------------------------------------

    def add_user(self, domain: str, name: str) -> UserAgent:
        """Create a user homed in *domain*: certificate from the domain CA,
        bilateral trust with the local BB only (the paper's assumption)."""
        if domain not in self.brokers:
            raise SignallingError(f"unknown domain {domain!r}")
        ca = self.domain_cas[domain]
        dn = DN.make("Grid", domain, name)
        keypair, cert = ca.issue_keypair(dn, rng=self.rng)
        store = TrustStore(self._trust_policy)
        store.add_anchor(ca.certificate)
        user = UserAgent(
            dn, domain, keypair=keypair, certificate=cert, truststore=store
        )
        self.users[name] = user
        # The home BB trusts local users through the shared domain CA anchor;
        # pre-open the user channel so latency config applies.
        self.channels.connect(
            user, self.brokers[domain], latency_s=self.user_channel_latency_s
        )
        return user

    def introduce_user_to(self, user: UserAgent, domain: str) -> None:
        """Out-of-band bilateral trust between *user* and a remote domain's
        BB — what Approach 1 requires with every domain on the path."""
        bb = self.brokers[domain]
        bb.truststore.add_introduced_peer(user.certificate)
        user.truststore.add_introduced_peer(bb.certificate)
        self.channels.connect(user, bb, latency_s=self.channel_latency_s)

    def add_cas(
        self, community: str, *, domains: Iterable[str] | None = None
    ) -> CommunityAuthorizationServer:
        """Stand up a CAS and register it as a trusted community with the
        policy servers of *domains* (default: all)."""
        cas = CommunityAuthorizationServer(
            community, rng=self.rng, scheme=self.scheme
        )
        self.cas_servers[community] = cas
        for domain in domains if domains is not None else self.brokers:
            server = self.brokers[domain].policy_server
            server.trust_community(cas.name, cas.public_key)
            server.revocation_checker = self._capability_revoked
        return cas

    def _capability_revoked(self, cert: Certificate) -> bool:
        """Aggregate revocation oracle over every CAS this testbed runs:
        a capability is revoked when any community authority says so."""
        return any(
            cas.is_revoked(cert) for cas in self.cas_servers.values()
        )

    def add_group_server(
        self, name: str, *, domains: Iterable[str] | None = None
    ) -> GroupServer:
        gs = GroupServer(
            DN.make("Grid", name, "GroupServer"), rng=self.rng, scheme=self.scheme
        )
        self.group_servers[name] = gs
        for domain in domains if domains is not None else self.brokers:
            self.brokers[domain].policy_server.register_group_server(gs)
        return gs

    def set_policy(self, domain: str, policy: str | PolicyEngine) -> None:
        engine = (
            compile_policy(policy, name=domain)
            if isinstance(policy, str)
            else policy
        )
        self.brokers[domain].policy_server.engine = engine

    def coordinator(self, domain: str) -> ReservationCoordinator:
        """The STARS-style reservation coordinator of *domain* (created on
        first use; every BB is given contractual trust in it)."""
        rc = self._coordinators.get(domain)
        if rc is not None:
            return rc
        ca = self.domain_cas[domain]
        dn = DN.make("Grid", domain, f"RC-{domain}")
        keypair, cert = ca.issue_keypair(dn, rng=self.rng)
        store = TrustStore(self._trust_policy)
        store.add_anchor(ca.certificate)
        rc = ReservationCoordinator(
            domain,
            self.brokers,
            self.channels,
            self.topology.domain_path,
            dn=dn,
            keypair=keypair,
            certificate=cert,
            truststore=store,
            clock=lambda: self.sim.now,
        )
        for bb in self.brokers.values():
            bb.truststore.add_introduced_peer(cert)
            store.add_introduced_peer(bb.certificate)
        self._coordinators[domain] = rc
        return rc

    # -- convenience API ----------------------------------------------------------------

    def make_request(
        self,
        *,
        source: str,
        destination: str,
        bandwidth_mbps: float,
        start: float = 0.0,
        duration: float = 3600.0,
        source_host: str | None = None,
        destination_host: str | None = None,
        **kwargs: Any,
    ) -> ReservationRequest:
        if source_host is None:
            hosts = self.topology.hosts_in_domain(source)
            source_host = hosts[0].name if hosts else f"h0.{source}"
        if destination_host is None:
            hosts = self.topology.hosts_in_domain(destination)
            destination_host = hosts[0].name if hosts else f"h0.{destination}"
        return ReservationRequest(
            source_host=source_host,
            destination_host=destination_host,
            source_domain=source,
            destination_domain=destination,
            rate_mbps=bandwidth_mbps,
            start=start,
            end=start + duration,
            **kwargs,
        )

    def reserve(
        self,
        user: UserAgent,
        *,
        source: str,
        destination: str,
        bandwidth_mbps: float,
        start: float = 0.0,
        duration: float = 3600.0,
        deadline_s: float | None = None,
        **kwargs: Any,
    ) -> SignallingOutcome:
        """Hop-by-hop end-to-end reservation (the paper's protocol).

        ``deadline_s`` bounds the signalling attempt end to end (it rides
        in the RAR, not in the reservation spec)."""
        request = self.make_request(
            source=source,
            destination=destination,
            bandwidth_mbps=bandwidth_mbps,
            start=start,
            duration=duration,
            **kwargs,
        )
        return self.hop_by_hop.reserve(user, request, deadline_s=deadline_s)

    def schedule_activation(self, outcome: SignallingOutcome) -> None:
        """Automate an advance reservation's lifecycle on the simulation
        clock: claim it in every domain at its start time (configuring the
        edge routers) and expire it at its end time (releasing capacity
        and deprovisioning).  A reservation whose window has already begun
        is claimed immediately.
        """
        if not outcome.granted or outcome.verified is None:
            raise SignallingError("can only schedule granted reservations")
        request = outcome.verified.request

        def claim() -> None:
            # Tolerate a manual cancel between granting and the window
            # opening: only claim reservations still in GRANTED state.
            states = {
                self.brokers[d].reservations.get(outcome.handles[d]).state
                for d in outcome.path
            }
            from repro.bb.reservations import ReservationState

            if states == {ReservationState.GRANTED}:
                self.hop_by_hop.claim(outcome)

        def expire() -> None:
            for domain in outcome.path:
                broker = self.brokers[domain]
                handle = outcome.handles[domain]
                resv = broker.reservations.get(handle)
                if resv.state.value in ("granted", "active"):
                    broker.cancel(handle)

        self.sim.at(max(self.sim.now, request.start), claim)
        self.sim.at(max(self.sim.now, request.end), expire)


def build_linear_testbed(
    domains: list[str] | Mapping[str, str],
    *,
    hosts_per_domain: int = 2,
    inter_capacity_mbps: float = 155.0,
    intra_capacity_mbps: float = 1000.0,
    **kwargs: Any,
) -> Testbed:
    """Build the paper's standard chain testbed.

    *domains* is a list of names, or a mapping name → policy-file source
    for per-domain policies.
    """
    names = list(domains)
    topo = linear_domain_chain(
        names,
        hosts_per_domain=hosts_per_domain,
        inter_capacity_mbps=inter_capacity_mbps,
        intra_capacity_mbps=intra_capacity_mbps,
    )
    testbed = Testbed(topo, **kwargs)
    if isinstance(domains, Mapping):
        for name, policy in domains.items():
            testbed.set_policy(name, policy)
    return testbed


def build_star_testbed(
    hub: str,
    leaves: list[str],
    *,
    hosts_per_domain: int = 1,
    inter_capacity_mbps: float = 155.0,
    **kwargs: Any,
) -> Testbed:
    """An ISP-hub testbed: stub domains peering only with *hub* (the
    common 2001 deployment shape — every leaf-to-leaf reservation crosses
    exactly three domains)."""
    topo = star_domains(
        hub, leaves,
        hosts_per_domain=hosts_per_domain,
        inter_capacity_mbps=inter_capacity_mbps,
    )
    return Testbed(topo, **kwargs)


def build_mesh_testbed(
    domains: list[str],
    *,
    hosts_per_domain: int = 1,
    inter_capacity_mbps: float = 155.0,
    **kwargs: Any,
) -> Testbed:
    """A full-mesh testbed: every domain pair peers directly."""
    topo = mesh_domains(
        domains,
        hosts_per_domain=hosts_per_domain,
        inter_capacity_mbps=inter_capacity_mbps,
    )
    return Testbed(topo, **kwargs)
