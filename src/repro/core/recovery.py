"""Failure-recovery primitives for the signalling path.

The paper's protocol crosses many administrative domains, and every hop
adds an independent failure mode: a peer channel can lose or delay a
message, a neighbouring BB can crash between two admissions, a policy
server or the certificate repository can stop answering.  This module
holds the three small, deterministic mechanisms the hop-by-hop engine
uses to survive them:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  seeded jitter (never a global RNG: the whole schedule must replay
  under a fixed seed);
* :class:`Deadline` — an absolute end-to-end signalling deadline carried
  in the RAR and checked against *modelled* elapsed time at every hop,
  so retries at an early hop shrink the budget of every later hop;
* :class:`CircuitBreaker` — a per-peer-link closed/open/half-open gate
  that fails fast once a link has proven itself down, and probes it
  again after a quiet period on the simulated clock.

Everything here runs on simulated time supplied by the caller; nothing
reads a wall clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import CircuitOpenError, DeadlineExceededError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.events import EventKind

__all__ = ["RetryPolicy", "Deadline", "CircuitBreaker", "BreakerPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``max_attempts`` counts the first try: ``max_attempts=4`` means one
    attempt plus at most three retries.  The backoff before retry *n*
    (1-based) is ``base_backoff_s * multiplier**(n-1)``, stretched by up
    to ``jitter`` of itself using the injected RNG — jitter decorrelates
    retry storms from concurrent requests without breaking determinism.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.5

    def backoff_s(self, attempt: int, rng: random.Random | None = None) -> float:
        """Modelled delay before retry *attempt* (1 = first retry)."""
        if attempt < 1:
            return 0.0
        base = self.base_backoff_s * self.multiplier ** (attempt - 1)
        if rng is None or self.jitter <= 0.0:
            return base
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class Deadline:
    """An absolute point on the modelled clock after which signalling for
    one request must stop trying and deny instead."""

    expires_at: float

    def remaining(self, now: float) -> float:
        return self.expires_at - now

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def check(self, now: float, *, what: str) -> None:
        if self.expired(now):
            raise DeadlineExceededError(
                f"signalling deadline exceeded before {what} "
                f"(deadline t={self.expires_at:.3f}, now t={now:.3f})"
            )


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs for :class:`CircuitBreaker` instances."""

    failure_threshold: int = 4
    reset_timeout_s: float = 30.0


class CircuitBreaker:
    """A per-peer-link circuit breaker on simulated time.

    States: ``closed`` (normal), ``open`` (failing fast), ``half_open``
    (one probe allowed after the reset timeout).  A success anywhere
    closes the breaker; a failure in half-open re-opens it immediately.
    Transitions emit ``BREAKER`` events and a transition counter so an
    operator can see exactly when a link was declared down.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, link: str, policy: BreakerPolicy | None = None) -> None:
        self.link = link
        self.policy = policy if policy is not None else BreakerPolicy()
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        #: Transition history as ``(from, to, at_time)`` — test hook and
        #: operator breadcrumb.
        self.transitions: list[tuple[str, str, float]] = []

    def _transition(self, new_state: str, now: float) -> None:
        if new_state == self.state:
            return
        old = self.state
        self.state = new_state
        self.transitions.append((old, new_state, now))
        registry = obs_metrics.get_registry()
        if registry is not None:
            registry.counter(
                "breaker_transitions_total",
                "Circuit-breaker state transitions, by link and new state",
            ).inc(link=self.link, to=new_state)
        event_log = obs_events.get_event_log()
        if event_log is not None:
            event_log.emit(
                EventKind.BREAKER, at_time=now,
                reason=f"{old} -> {new_state}", link=self.link,
            )

    def allow(self, now: float) -> bool:
        """May a message be sent over this link right now?"""
        if self.state == self.OPEN:
            if now - self.opened_at >= self.policy.reset_timeout_s:
                self._transition(self.HALF_OPEN, now)
                return True
            return False
        return True

    def check(self, now: float) -> None:
        if not self.allow(now):
            raise CircuitOpenError(
                f"circuit breaker open for link {self.link} "
                f"(since t={self.opened_at:.3f})"
            )

    def record_success(self, now: float) -> None:
        self.failures = 0
        self._transition(self.CLOSED, now)

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if (
            self.state == self.HALF_OPEN
            or self.failures >= self.policy.failure_threshold
        ):
            self.opened_at = now
            self._transition(self.OPEN, now)
