"""Concurrent hop-by-hop signalling over a thread pool.

The north star ("a system that serves heavy traffic from millions of
users") needs many *independent* reservations in flight at once:
requests whose paths share no domain have no reason to wait on each
other, while two RARs touching the same domain must serialize so the
admission ledger sees a deterministic order.

:class:`ConcurrentSignaller` drives a batch of reservation jobs through
one :class:`~repro.core.hopbyhop.HopByHopProtocol` on a thread pool with
**per-domain ticket ordering**: at submission each job atomically takes
one ticket per domain on its path, and a worker only starts once every
one of its domains is serving that job's ticket.  The consequences:

* two jobs with a common domain run in exactly submission order with
  respect to that domain — the same order a serial loop would produce,
  so grants/denials and per-domain capacity ledgers are **identical to
  serial execution** (the property suite asserts this);
* jobs with disjoint paths share no ticket queue and proceed in
  parallel;
* deadlock is impossible: a job only ever waits for *earlier* jobs
  (ticket numbers are assigned in one pass, so the waits-for graph is a
  DAG ordered by submission index).

Throughput is reported in **modelled time**, consistent with every
latency figure in this repository (channel ``latency_s`` + per-hop
processing delay on a simulated clock — nothing actually sleeps): the
batch's modelled makespan is the classic greedy schedule where each job
starts when a worker slot *and* all domains on its path are free, and
occupies its domains for its modelled signalling latency.  With
``concurrency=1`` the schedule degenerates to the serial sum, so the
speedup of ``--concurrency 8`` over ``--concurrency 1`` is an honest
statement about the modelled system, not about the GIL.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bb.reservations import ReservationRequest
from repro.core.agent import UserAgent
from repro.core.hopbyhop import HopByHopProtocol, SignallingOutcome
from repro.crypto import batch as batch_verification
from repro.errors import ReproError, SignallingError
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.policy.attributes import SignedAssertion

__all__ = [
    "ReservationJob",
    "BatchResult",
    "ScheduledOutcome",
    "ConcurrentSignaller",
    "run_serial",
]


@dataclass(frozen=True)
class ReservationJob:
    """One independent reservation to signal."""

    user: UserAgent
    request: ReservationRequest
    assertions: tuple[SignedAssertion, ...] = ()
    restrictions: tuple[str, ...] = ()
    deadline_s: float | None = None


@dataclass(frozen=True)
class ScheduledOutcome:
    """A job's protocol outcome plus its slot in the modelled schedule."""

    job: ReservationJob
    #: The protocol outcome, or ``None`` when signalling aborted with an
    #: error (recorded in ``error``) before producing one.
    outcome: SignallingOutcome | None
    error: str
    #: Modelled start/end of this job in the batch schedule (seconds).
    start_s: float
    end_s: float

    @property
    def granted(self) -> bool:
        return self.outcome is not None and self.outcome.granted


@dataclass
class BatchResult:
    """Everything a batch run produced, in submission order."""

    concurrency: int
    scheduled: list[ScheduledOutcome] = field(default_factory=list)

    @property
    def outcomes(self) -> tuple[SignallingOutcome | None, ...]:
        return tuple(s.outcome for s in self.scheduled)

    @property
    def granted_count(self) -> int:
        return sum(1 for s in self.scheduled if s.granted)

    @property
    def makespan_s(self) -> float:
        """Modelled wall time of the whole batch (max job end)."""
        return max((s.end_s for s in self.scheduled), default=0.0)

    @property
    def throughput_rps(self) -> float:
        """Completed reservations per modelled second."""
        makespan = self.makespan_s
        return len(self.scheduled) / makespan if makespan > 0 else 0.0


class ConcurrentSignaller:
    """Drive many reservations through one protocol on a thread pool.

    All mutable protocol/broker state the workers share must be
    lock-safe (it is: brokers, admission schedules, reservation tables,
    channels, breakers and the obs registries all take internal locks);
    the ticket discipline here adds the *ordering* guarantee on top of
    that safety.
    """

    def __init__(
        self,
        protocol: HopByHopProtocol,
        *,
        concurrency: int = 4,
    ) -> None:
        if concurrency < 1:
            raise SignallingError(
                f"concurrency must be >= 1, got {concurrency}"
            )
        self.protocol = protocol
        self.concurrency = concurrency

    # -- ordering ------------------------------------------------------------------

    def _paths(
        self, jobs: Sequence[ReservationJob]
    ) -> list[tuple[str, ...]]:
        return [
            tuple(
                self.protocol.domain_path(
                    job.request.source_domain, job.request.destination_domain
                )
            )
            for job in jobs
        ]

    def run(self, jobs: Sequence[ReservationJob]) -> BatchResult:
        """Signal every job; returns outcomes in submission order.

        Jobs sharing a domain execute in submission order with respect
        to that domain; disjoint jobs overlap.  Worker exceptions are
        captured per job (``ScheduledOutcome.error``), never raised —
        one poisoned request must not sink the batch.
        """
        paths = self._paths(jobs)
        # One ticket per (job, domain), assigned in submission order.
        next_ticket: dict[str, int] = {}
        tickets: list[dict[str, int]] = []
        for path in paths:
            mine: dict[str, int] = {}
            for domain in path:
                mine[domain] = next_ticket.get(domain, 0)
                next_ticket[domain] = mine[domain] + 1
            tickets.append(mine)

        now_serving: dict[str, int] = {d: 0 for d in next_ticket}
        turnstile = threading.Condition()
        results: list[tuple[SignallingOutcome | None, str]] = [
            (None, "") for _ in jobs
        ]

        depth_registry = obs_metrics.get_registry()

        def publish_depths() -> None:
            # Per-domain turnstile depth: tickets issued minus tickets
            # served.  Called with the turnstile held (or before the
            # pool starts), so reads of now_serving are consistent.
            if depth_registry is None:
                return
            gauge = depth_registry.gauge(
                "concurrent_queue_depth",
                "Jobs queued at the per-domain signalling turnstile",
            )
            for domain, issued in next_ticket.items():
                gauge.set(
                    float(issued - now_serving[domain]), domain=domain
                )

        publish_depths()

        def ready(index: int) -> bool:
            return all(
                now_serving[d] == t for d, t in tickets[index].items()
            )

        def work(index: int) -> None:
            job = jobs[index]
            with turnstile:
                turnstile.wait_for(lambda: ready(index))
            try:
                outcome = self.protocol.reserve(
                    job.user,
                    job.request,
                    assertions=job.assertions,
                    restrictions=job.restrictions,
                    deadline_s=job.deadline_s,
                )
                results[index] = (outcome, "")
            except ReproError as exc:
                results[index] = (None, f"{type(exc).__name__}: {exc}")
            finally:
                with turnstile:
                    for domain in tickets[index]:
                        now_serving[domain] += 1
                    publish_depths()
                    turnstile.notify_all()

        tracer = obs_spans.get_tracer()
        span = None
        if tracer is not None:
            span = tracer.begin(
                "concurrent_batch",
                trace_id=obs_spans.mint_correlation_id(),
                jobs=len(jobs),
                concurrency=self.concurrency,
            )
        try:
            # The whole burst shares one verification-cache scope
            # (repro.crypto.batch): inner RAR layers, introduced
            # certificates and delegation links repeated across jobs are
            # each verified once instead of once per job.  No-op when
            # batched verification is disabled or global caches already
            # feed every hop.
            with batch_verification.use_batch_caches():
                with ThreadPoolExecutor(
                    max_workers=self.concurrency,
                    thread_name_prefix="signaller",
                ) as pool:
                    futures = [
                        pool.submit(work, i) for i in range(len(jobs))
                    ]
                    for future in futures:
                        future.result()
        finally:
            if tracer is not None and span is not None:
                tracer.end(span)

        result = BatchResult(concurrency=self.concurrency)
        self._schedule(jobs, paths, results, into=result)
        registry = obs_metrics.get_registry()
        if registry is not None:
            counter = registry.counter(
                "concurrent_jobs_total",
                "Jobs driven through the concurrent signaller, by result",
            )
            for item in result.scheduled:
                counter.inc(
                    result="granted" if item.granted
                    else ("error" if item.error else "denied")
                )
            registry.histogram(
                "concurrent_batch_makespan_seconds",
                "Modelled makespan of concurrent signalling batches",
            ).observe(result.makespan_s)
        return result

    # -- modelled schedule -----------------------------------------------------------

    def _schedule(
        self,
        jobs: Sequence[ReservationJob],
        paths: Sequence[tuple[str, ...]],
        results: Sequence[tuple[SignallingOutcome | None, str]],
        *,
        into: BatchResult,
    ) -> None:
        """Greedy modelled schedule: a job starts when a worker slot and
        every domain on its path are free, and holds its domains for its
        modelled signalling latency.  ``concurrency=1`` degenerates to
        the serial sum of latencies."""
        worker_free = [0.0] * self.concurrency
        heapq.heapify(worker_free)
        domain_free: dict[str, float] = {}
        for job, path, (outcome, error) in zip(jobs, paths, results):
            latency = outcome.latency_s if outcome is not None else 0.0
            start = heapq.heappop(worker_free)
            for domain in path:
                start = max(start, domain_free.get(domain, 0.0))
            end = start + latency
            heapq.heappush(worker_free, end)
            for domain in path:
                domain_free[domain] = end
            into.scheduled.append(
                ScheduledOutcome(
                    job=job, outcome=outcome, error=error,
                    start_s=start, end_s=end,
                )
            )


def run_serial(
    protocol: HopByHopProtocol, jobs: Sequence[ReservationJob]
) -> BatchResult:
    """Reference serial execution: the same jobs, one at a time.

    Equivalent to ``ConcurrentSignaller(protocol, concurrency=1).run``
    but with no threads at all — the differential baseline the property
    suite compares the concurrent engine against.
    """
    result = BatchResult(concurrency=1)
    clock_s = 0.0
    for job in jobs:
        outcome: SignallingOutcome | None
        try:
            outcome = protocol.reserve(
                job.user,
                job.request,
                assertions=job.assertions,
                restrictions=job.restrictions,
                deadline_s=job.deadline_s,
            )
            error = ""
        except ReproError as exc:
            outcome, error = None, f"{type(exc).__name__}: {exc}"
        latency = outcome.latency_s if outcome is not None else 0.0
        result.scheduled.append(
            ScheduledOutcome(
                job=job, outcome=outcome, error=error,
                start_s=clock_s, end_s=clock_s + latency,
            )
        )
        clock_s += latency
    return result
