"""User agents: the entity that signs and submits reservation requests.

"A user (or agent acting on their behalf) signals a reservation request
to the BB in the user's administrative network domain" (§6.1).  The agent
holds the user's identity key pair and certificate, the proxy credentials
obtained from CAS grid-logins, and any signed group assertions collected
from group servers.
"""

from __future__ import annotations

import random
import zlib

from repro.crypto.capability import ProxyCredential, delegate
from repro.crypto.dn import DN, DistinguishedName
from repro.crypto.keys import KeyPair, PublicKey, get_scheme
from repro.crypto.truststore import TrustStore
from repro.crypto.x509 import Certificate
from repro.errors import SignallingError
from repro.policy.attributes import SignedAssertion
from repro.policy.cas import CommunityAuthorizationServer

__all__ = ["UserAgent"]


class UserAgent:
    """A user's signing agent."""

    def __init__(
        self,
        dn: DistinguishedName | str,
        domain: str,
        *,
        keypair: KeyPair | None = None,
        certificate: Certificate | None = None,
        truststore: TrustStore | None = None,
        scheme: str = "rsa",
        rng: random.Random | None = None,
    ) -> None:
        self.dn = DN.parse(dn) if isinstance(dn, str) else dn
        self.domain = domain
        if keypair is None:
            keypair = get_scheme(scheme).generate(
                # crc32, not hash(): str hashing is salted per process (REP108).
                rng if rng is not None else random.Random(zlib.crc32(str(dn).encode()))
            )
        self.keypair = keypair
        self.certificate = certificate
        self.truststore = truststore if truststore is not None else TrustStore()
        #: Proxy credentials from CAS logins, by community name.
        self.credentials: dict[str, ProxyCredential] = {}
        #: Signed group assertions collected from group servers.
        self.assertions: list[SignedAssertion] = []

    @property
    def name(self) -> str:
        return self.dn.common_name or str(self.dn)

    # -- credential acquisition ----------------------------------------------------

    def grid_login(
        self, cas: CommunityAuthorizationServer, *, at_time: float = 0.0,
        validity_s: float = 12 * 3600.0,
    ) -> ProxyCredential:
        """Log in to a community: obtain and store a capability credential."""
        credential = cas.grid_login(self.dn, at_time=at_time, validity_s=validity_s)
        self.credentials[cas.community] = credential
        return credential

    def collect_assertion(self, assertion: SignedAssertion) -> None:
        if assertion.subject != self.dn:
            raise SignallingError(
                f"assertion about {assertion.subject} does not concern {self.dn}"
            )
        self.assertions.append(assertion)

    # -- delegation -----------------------------------------------------------------

    def delegate_capabilities_to(
        self,
        subject: DistinguishedName,
        subject_public_key: PublicKey,
        *,
        restrictions: tuple[str, ...] = (),
    ) -> tuple[Certificate, ...]:
        """Delegate every held credential to *subject* (the source-domain BB).

        Returns, per credential, the original CAS-issued certificate
        followed by the user's delegation certificate — the
        ``Capability_Cert'_CAS, Capability_Cert'_U`` pair of the paper's
        RAR_U notation, for all communities at once.
        """
        certs: list[Certificate] = []
        for credential in self.credentials.values():
            delegated = delegate(
                credential,
                delegate_subject=subject,
                delegate_public_key=subject_public_key,
                extra_restrictions=restrictions,
            )
            certs.append(credential.certificate)
            certs.append(delegated)
        return tuple(certs)
