"""Signed envelopes: the ``sign_pkey(...)`` primitive of the paper's §6.4.

"A complete request therefore is comprised of a collection of
information, each signed by the entity that added it.  The signatures
both assert the authenticity of the information and allows for the
tracking the path taken by a request as it moves from BB to BB."

A :class:`SignedEnvelope` is a mapping payload plus the signer's DN and a
signature over the canonical encoding of both.  Payload values may be any
canonically encodable object — including *nested envelopes*, which is how
``RAR_B = sign_BBB({RAR_A, cert_A, DN_BBC, ...})`` is built.

The library passes Python objects rather than bytes between simulated
parties; the canonical encoding (DESIGN.md: our stand-in for DER) is what
signatures cover, so any tampering with any nested field invalidates the
enclosing signatures exactly as it would on the wire.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.crypto import cache as verification_cache
from repro.crypto import canonical
from repro.crypto.dn import DistinguishedName
from repro.crypto.keys import PrivateKey, PublicKey, get_scheme
from repro.errors import TamperedMessageError

__all__ = [
    "SignedEnvelope",
    "seal",
    "chain_link_digest",
    "LINKED_FIELD",
    "LINK_DIGEST_FIELD",
]

#: The nested-message payload field (``messages.F_INNER`` re-exports it).
LINKED_FIELD = "inner_rar"
#: Append-only chain link: the SHA-256 of the inner envelope's canonical
#: bytes.  When a payload carries this field, the *signature* covers the
#: digest instead of the inner envelope itself (which stays in the
#: payload for the wire and for provenance walks) — so a forwarding hop
#: signs O(own fields) bytes, yet any tampering below still breaks the
#: chain: the inner layer's bytes no longer hash to the signed link
#: (``messages.unwrap_rar_layers`` enforces this before any signature
#: is checked).
LINK_DIGEST_FIELD = "inner_digest"


def chain_link_digest(inner: "SignedEnvelope") -> bytes:
    """The append-chain commitment to *inner*: SHA-256 of its canonical
    bytes (the exact bytes a nested-mode signature would have covered)."""
    return hashlib.sha256(inner.cbe_bytes()).digest()


def _to_cbe_value(value: Any) -> Any:
    """Recursively render payload values canonically encodable.

    Objects that memoize their canonical bytes (``cbe_bytes``) are passed
    through untouched: :func:`repro.crypto.canonical.encode` splices the
    cached bytes directly, which is what keeps sealing and verifying a
    deeply nested chain linear — eagerly calling ``to_cbe()`` here would
    re-encode every certificate and inner envelope at every layer.
    """
    if hasattr(value, "cbe_bytes"):
        return value
    if hasattr(value, "to_cbe"):
        return value.to_cbe()
    if isinstance(value, (tuple, list)):
        return [_to_cbe_value(v) for v in value]
    if isinstance(value, dict):
        return {k: _to_cbe_value(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class SignedEnvelope:
    """An immutable signed collection of named fields."""

    payload: tuple[tuple[str, Any], ...]
    signer: DistinguishedName
    signature: bytes
    scheme: str

    # -- payload access ---------------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        for k, v in self.payload:
            if k == key:
                return v
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.payload:
            if k == key:
                return v
        return default

    def keys(self) -> tuple[str, ...]:
        return tuple(k for k, _ in self.payload)

    # -- encoding ------------------------------------------------------------------

    def body_cbe(self) -> dict:
        """The signed portion (payload + signer identity).

        In an append-only chain layer (payload carries
        :data:`LINK_DIGEST_FIELD`) the inner envelope is *excluded* from
        the signed bytes — the signature covers its digest link instead,
        so signing/verifying one layer costs O(that layer), not
        O(whole chain).  The mode is self-describing and itself signed:
        an attacker can neither add nor strip the link field without
        breaking this layer's signature.
        """
        linked = LINKED_FIELD if self.get(LINK_DIGEST_FIELD) is not None else None
        return {
            "payload": {
                k: _to_cbe_value(v)
                for k, v in self.payload
                if k != linked
            },
            "signer": self.signer.to_cbe(),
        }

    def to_cbe(self) -> dict:
        """The full envelope (always includes the inner message: the wire
        representation is identical in both chain modes' shape)."""
        data = {
            "payload": {k: _to_cbe_value(v) for k, v in self.payload},
            "signer": self.signer.to_cbe(),
        }
        data["signature"] = self.signature
        data["scheme"] = self.scheme
        return data

    def body_bytes(self) -> bytes:
        """Canonical bytes of the signed portion (memoized: the envelope is
        immutable, and nested RARs re-verify inner layers at every hop)."""
        cached = getattr(self, "_body_bytes_cache", None)
        if cached is None:
            cached = canonical.encode(self.body_cbe())
            object.__setattr__(self, "_body_bytes_cache", cached)
        return cached

    def cbe_bytes(self) -> bytes:
        """Canonical bytes of the full envelope (memoized; spliced directly
        into enclosing encodings by :mod:`repro.crypto.canonical`)."""
        cached = getattr(self, "_cbe_bytes_cache", None)
        if cached is None:
            cached = canonical.encode(self.to_cbe())
            object.__setattr__(self, "_cbe_bytes_cache", cached)
        return cached

    def wire_size(self) -> int:
        """Bytes this envelope would occupy on the wire."""
        return len(self.cbe_bytes())

    # -- verification ----------------------------------------------------------------

    def verify(self, public_key: PublicKey) -> bool:
        """True iff the signature verifies under *public_key*."""
        scheme = get_scheme(self.scheme)
        caches = verification_cache.get_caches()
        if caches is None:
            return scheme.verify(public_key, self.body_bytes(), self.signature)
        return caches.verify_signature(
            self.scheme, public_key.key_id, self.body_bytes(), self.signature,
            lambda: scheme.verify(public_key, self.body_bytes(), self.signature),
        )

    def require_valid(self, public_key: PublicKey) -> None:
        if not self.verify(public_key):
            raise TamperedMessageError(
                f"envelope signed by {self.signer} failed verification"
            )

    # -- test helpers -----------------------------------------------------------------

    def with_tampered_field(self, key: str, value: Any) -> "SignedEnvelope":
        """A copy with one payload field replaced but the old signature kept
        (must always fail verification)."""
        payload = tuple(
            (k, value if k == key else v) for k, v in self.payload
        )
        if key not in self.keys():
            payload = payload + ((key, value),)
        return replace(self, payload=payload)


def seal(
    payload: Mapping[str, Any],
    *,
    signer: DistinguishedName,
    key: PrivateKey,
) -> SignedEnvelope:
    """Sign *payload* as *signer*: the paper's ``sign_pkey(attributes)``."""
    envelope = SignedEnvelope(
        payload=tuple(sorted(payload.items())),
        signer=signer,
        signature=b"",
        scheme=key.scheme,
    )
    scheme = get_scheme(key.scheme)
    signature = scheme.sign(key, envelope.body_bytes())
    signed = replace(envelope, signature=signature)
    # The signed portion is identical; carry the memo across.
    object.__setattr__(signed, "_body_bytes_cache", envelope.body_bytes())
    return signed
