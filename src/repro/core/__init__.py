"""The paper's contribution: signed RAR envelopes, mutually authenticated
channels, hop-by-hop inter-BB signalling with transitive trust, capability
delegation, tunnels, the source-domain baselines, and the testbed facade.
"""

from repro.core.agent import UserAgent
from repro.core.channel import ChannelRegistry, SecureChannel
from repro.core.envelope import SignedEnvelope, seal
from repro.core.hopbyhop import HopByHopProtocol, SignallingOutcome
from repro.core.messages import (
    make_approval,
    make_bb_rar,
    make_denial,
    make_user_rar,
    unwrap_rar_layers,
)
from repro.core.sourcedomain import EndToEndAgent, SourceDomainOutcome
from repro.core.stars import CoordinatorOutcome, ReservationCoordinator
from repro.core.testbed import Testbed, build_linear_testbed
from repro.core.tracing import PathTrace, trace_approval_chain, trace_request_path
from repro.core.trust import VerifiedRAR, verify_rar
from repro.core.tunnels import FlowAllocation, Tunnel, TunnelService

__all__ = [
    "SignedEnvelope",
    "seal",
    "make_user_rar",
    "make_bb_rar",
    "make_approval",
    "make_denial",
    "unwrap_rar_layers",
    "verify_rar",
    "VerifiedRAR",
    "SecureChannel",
    "ChannelRegistry",
    "UserAgent",
    "HopByHopProtocol",
    "SignallingOutcome",
    "EndToEndAgent",
    "SourceDomainOutcome",
    "ReservationCoordinator",
    "CoordinatorOutcome",
    "Tunnel",
    "TunnelService",
    "FlowAllocation",
    "PathTrace",
    "trace_request_path",
    "trace_approval_chain",
    "Testbed",
    "build_linear_testbed",
]
