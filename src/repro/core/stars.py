"""A STARS-style reservation coordinator (the paper's second baseline).

"The STARS system adopts a variant of this approach, in which a separate
source domain entity — the reservation coordinator (RC) — performs the
end-to-end reservation.  This strategy alleviates the problems noted
above, in two respects: first, in many situations it may be feasible for
the RC to be 'trusted' to make all necessary reservations; second, all
bandwidth-brokers need not be aware of all end-users.  However, we still
require a direct trust relationship between all intermediate and possible
end-domains." (§3)

The coordinator authenticates the user itself, then contacts every BB
over its *own* trust relationships, asserting the user's identity.  BBs
that trust the RC accept the asserted identity; BBs with no channel to
the RC still fail — the residual flaw the hop-by-hop protocol removes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.bb.broker import BandwidthBroker
from repro.bb.reservations import ReservationRequest
from repro.core.agent import UserAgent
from repro.core.channel import ChannelRegistry
from repro.crypto.dn import DN, DistinguishedName
from repro.crypto.keys import KeyPair, get_scheme
from repro.crypto.truststore import TrustStore
from repro.crypto.x509 import Certificate
from repro.errors import HandshakeError
from repro.policy.attributes import make_assertion

__all__ = ["CoordinatorOutcome", "ReservationCoordinator"]


@dataclass
class CoordinatorOutcome:
    granted: bool
    complete: bool
    handles: dict[str, str] = field(default_factory=dict)
    failures: dict[str, str] = field(default_factory=dict)
    latency_s: float = 0.0
    messages: int = 0
    path: tuple[str, ...] = ()


class ReservationCoordinator:
    """A trusted source-domain entity reserving on users' behalf."""

    def __init__(
        self,
        domain: str,
        brokers: Mapping[str, BandwidthBroker],
        channels: ChannelRegistry,
        domain_path: Callable[[str, str], list[str]],
        *,
        dn: DistinguishedName | None = None,
        keypair: KeyPair | None = None,
        certificate: Certificate | None = None,
        truststore: TrustStore | None = None,
        processing_delay_s: float = 0.001,
        clock: Callable[[], float] = lambda: 0.0,
    ) -> None:
        self.domain = domain
        self.dn = dn if dn is not None else DN.make("Grid", domain, f"RC-{domain}")
        self.keypair = (
            keypair
            if keypair is not None
            else get_scheme("simulated").generate(random.Random(0x57A5))
        )
        self.certificate = certificate
        self.truststore = truststore if truststore is not None else TrustStore()
        self.brokers = dict(brokers)
        self.channels = channels
        self.domain_path = domain_path
        self.processing_delay_s = processing_delay_s
        self.clock = clock
        #: Users this coordinator has authenticated locally.
        self._known_users: set[DistinguishedName] = set()

    def enroll_user(self, user: UserAgent) -> None:
        """Authenticate a local user (out of band) so the RC will assert
        their identity to remote BBs."""
        self._known_users.add(user.dn)

    def reserve(
        self,
        user: UserAgent,
        request: ReservationRequest,
        *,
        concurrent: bool = True,
    ) -> CoordinatorOutcome:
        """Reserve end-to-end on the user's behalf.

        The RC signs an identity assertion ("this request is made for
        user U") with its own key; BBs that trust the RC accept the
        asserted user for policy purposes without knowing U themselves.
        """
        at_time = self.clock()
        path = self.domain_path(request.source_domain, request.destination_domain)
        outcome = CoordinatorOutcome(granted=False, complete=False, path=tuple(path))
        if user.dn not in self._known_users:
            outcome.failures[self.domain] = f"user {user.dn} not enrolled with RC"
            return outcome

        identity_assertion = make_assertion(
            issuer=self.dn,
            issuer_key=self.keypair.private,
            subject=user.dn,
            attributes={"authenticated_by": str(self.dn)},
        )
        latencies: list[float] = []
        for index, domain in enumerate(path):
            bb = self.brokers[domain]
            try:
                channel = self.channels.connect(self, bb, at_time=at_time)
            except HandshakeError as exc:
                outcome.failures[domain] = f"no trust relationship: {exc}"
                continue
            # Request + reply across the channel.
            channel.transmit(self.dn, identity_assertion)
            upstream = path[index - 1] if index > 0 else None
            downstream = path[index + 1] if index + 1 < len(path) else None
            # The BB trusts the RC contractually; it accepts the asserted
            # user identity for its policy decision.
            from repro.bb.policyserver import VerifiedInfo

            info = VerifiedInfo(user=user.dn)
            admit = bb.admit(
                request, info, at_time=at_time,
                upstream=upstream, downstream=downstream,
            )
            channel.transmit(bb.dn, admit.reservation.handle)
            latencies.append(2 * channel.latency_s + self.processing_delay_s)
            outcome.messages += 2
            if admit.granted:
                outcome.handles[domain] = admit.reservation.handle
            else:
                outcome.failures[domain] = admit.reason
                if not concurrent:
                    break

        # user -> RC round trip plus the fan-out.
        outcome.latency_s = (
            max(latencies, default=0.0) if concurrent else sum(latencies)
        ) + self.processing_delay_s
        outcome.messages += 2  # user <-> RC
        outcome.granted = bool(outcome.handles) and not outcome.failures
        outcome.complete = outcome.granted and all(d in outcome.handles for d in path)
        if outcome.failures:
            for domain, handle in list(outcome.handles.items()):
                self.brokers[domain].cancel(handle)
                del outcome.handles[domain]
        return outcome
