"""Wire codec for protocol messages.

The paper proposed carrying its policy-information model inside the
Internet2 **SIBBS** BB-to-BB protocol (§7/§8): "the extension semantics,
not the wire syntax, are the contribution" (DESIGN.md).  The engines in
this package therefore pass Python objects; this module supplies the
missing wire layer — a complete, self-describing serialization of every
protocol object to bytes and back:

* nested :class:`~repro.core.envelope.SignedEnvelope` RARs, approvals,
  denials;
* :class:`~repro.crypto.x509.Certificate` (incl. capability extensions),
  :class:`~repro.policy.attributes.SignedAssertion`,
  :class:`~repro.bb.reservations.ReservationRequest`,
  :class:`~repro.crypto.dn.DistinguishedName`,
  :class:`~repro.crypto.keys.PublicKey`.

Signatures survive the round trip: objects are reconstructed
field-for-field, so the canonical bytes they sign are identical and
:meth:`SignedEnvelope.verify` still passes on the decoded copy.  That
property is what makes it legitimate for the in-memory engines to skip
the byte layer — and it is asserted by the test suite.
"""

from __future__ import annotations

from typing import Any

from repro.bb.reservations import ReservationRequest
from repro.core.envelope import SignedEnvelope
from repro.crypto import canonical
from repro.crypto.dn import DistinguishedName
from repro.crypto.keys import PublicKey
from repro.crypto.x509 import Certificate
from repro.errors import EncodingError
from repro.net.packet import DSCP
from repro.policy.attributes import SignedAssertion

__all__ = ["pack", "unpack", "to_wire", "from_wire"]

_KIND = "__kind__"


def pack(value: Any) -> Any:
    """Render *value* as a plain, canonically encodable structure with
    ``__kind__`` tags for protocol object types."""
    if isinstance(value, DSCP):
        # Before the scalar fast path: DSCP is an IntEnum and would
        # otherwise decay to a bare int on the wire.
        return {_KIND: "dscp", "value": int(value)}
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return value
    if isinstance(value, float):
        if value == float("inf"):
            return {_KIND: "+inf"}
        if value == float("-inf"):
            return {_KIND: "-inf"}
        return value
    if isinstance(value, (tuple, list)):
        return {_KIND: "seq", "items": [pack(v) for v in value]}
    if isinstance(value, dict):
        return {_KIND: "map", "items": {k: pack(v) for k, v in value.items()}}
    if isinstance(value, DistinguishedName):
        return {_KIND: "dn", "rdns": [list(p) for p in value.rdns]}
    if isinstance(value, PublicKey):
        material = []
        for m in value.material:
            if isinstance(m, int):
                material.append(["int", str(m)])
            elif isinstance(m, str):
                material.append(["str", m])
            else:
                raise EncodingError(
                    f"unsupported key material type {type(m).__name__}"
                )
        return {_KIND: "pubkey", "scheme": value.scheme, "material": material}
    if isinstance(value, Certificate):
        return {
            _KIND: "certificate",
            "serial": value.serial,
            "issuer": pack(value.issuer),
            "subject": pack(value.subject),
            "public_key": pack(value.public_key),
            "not_before": value.not_before,
            "not_after": value.not_after,
            "extensions": [[k, pack(v)] for k, v in value.extensions],
            "signature": value.signature,
            "signature_scheme": value.signature_scheme,
        }
    if isinstance(value, SignedAssertion):
        return {
            _KIND: "assertion",
            "issuer": pack(value.issuer),
            "subject": pack(value.subject),
            "attributes": [[k, pack(v)] for k, v in value.attributes],
            "signature": value.signature,
            "signature_scheme": value.signature_scheme,
            "valid_from": value.valid_from,
            "valid_until": pack(value.valid_until),
        }
    if isinstance(value, ReservationRequest):
        return {
            _KIND: "res_spec",
            "source_host": value.source_host,
            "destination_host": value.destination_host,
            "source_domain": value.source_domain,
            "destination_domain": value.destination_domain,
            "rate_mbps": value.rate_mbps,
            "start": value.start,
            "end": value.end,
            "service_class": int(value.service_class),
            "burst_bits": value.burst_bits,
            "cost_ceiling": pack(value.cost_ceiling),
            "linked_reservations": [list(p) for p in value.linked_reservations],
            "attributes": [[k, pack(v)] for k, v in value.attributes],
        }
    if isinstance(value, SignedEnvelope):
        return {
            _KIND: "envelope",
            "payload": [[k, pack(v)] for k, v in value.payload],
            "signer": pack(value.signer),
            "signature": value.signature,
            "scheme": value.scheme,
        }
    raise EncodingError(f"cannot pack values of type {type(value).__name__}")


def unpack(data: Any) -> Any:
    """Inverse of :func:`pack`."""
    if data is None or isinstance(data, (bool, int, float, str, bytes)):
        return data
    if isinstance(data, list):
        # Bare lists only appear inside known structures; treat as tuple.
        return tuple(unpack(v) for v in data)
    if not isinstance(data, dict):
        raise EncodingError(f"cannot unpack {type(data).__name__}")
    kind = data.get(_KIND)
    if kind is None:
        raise EncodingError("mapping without __kind__ tag")
    if kind == "+inf":
        return float("inf")
    if kind == "-inf":
        return float("-inf")
    if kind == "seq":
        return tuple(unpack(v) for v in data["items"])
    if kind == "map":
        return {k: unpack(v) for k, v in data["items"].items()}
    if kind == "dn":
        return DistinguishedName(tuple((a, v) for a, v in data["rdns"]))
    if kind == "dscp":
        return DSCP(data["value"])
    if kind == "pubkey":
        material = []
        for t, v in data["material"]:
            material.append(int(v) if t == "int" else v)
        return PublicKey(data["scheme"], tuple(material))
    if kind == "certificate":
        return Certificate(
            serial=data["serial"],
            issuer=unpack(data["issuer"]),
            subject=unpack(data["subject"]),
            public_key=unpack(data["public_key"]),
            not_before=data["not_before"],
            not_after=data["not_after"],
            extensions=tuple((k, unpack(v)) for k, v in data["extensions"]),
            signature=data["signature"],
            signature_scheme=data["signature_scheme"],
        )
    if kind == "assertion":
        return SignedAssertion(
            issuer=unpack(data["issuer"]),
            subject=unpack(data["subject"]),
            attributes=tuple((k, unpack(v)) for k, v in data["attributes"]),
            signature=data["signature"],
            signature_scheme=data["signature_scheme"],
            valid_from=data["valid_from"],
            valid_until=unpack(data["valid_until"]),
        )
    if kind == "res_spec":
        return ReservationRequest(
            source_host=data["source_host"],
            destination_host=data["destination_host"],
            source_domain=data["source_domain"],
            destination_domain=data["destination_domain"],
            rate_mbps=data["rate_mbps"],
            start=data["start"],
            end=data["end"],
            service_class=DSCP(data["service_class"]),
            burst_bits=data["burst_bits"],
            cost_ceiling=unpack(data["cost_ceiling"]),
            linked_reservations=tuple(
                (k, v) for k, v in data["linked_reservations"]
            ),
            attributes=tuple((k, unpack(v)) for k, v in data["attributes"]),
        )
    if kind == "envelope":
        return SignedEnvelope(
            payload=tuple((k, unpack(v)) for k, v in data["payload"]),
            signer=unpack(data["signer"]),
            signature=data["signature"],
            scheme=data["scheme"],
        )
    raise EncodingError(f"unknown __kind__ tag {kind!r}")


def to_wire(value: Any) -> bytes:
    """Serialize a protocol object (or nested message) to bytes."""
    return canonical.encode(pack(value))


def from_wire(data: bytes) -> Any:
    """Parse bytes produced by :func:`to_wire` back into protocol objects."""
    return unpack(canonical.decode(data))
