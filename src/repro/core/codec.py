"""Wire codec for protocol messages.

The paper proposed carrying its policy-information model inside the
Internet2 **SIBBS** BB-to-BB protocol (§7/§8): "the extension semantics,
not the wire syntax, are the contribution" (DESIGN.md).  The engines in
this package therefore pass Python objects; this module supplies the
missing wire layer — a complete, self-describing serialization of every
protocol object to bytes and back:

* nested :class:`~repro.core.envelope.SignedEnvelope` RARs, approvals,
  denials;
* :class:`~repro.crypto.x509.Certificate` (incl. capability extensions),
  :class:`~repro.policy.attributes.SignedAssertion`,
  :class:`~repro.bb.reservations.ReservationRequest`,
  :class:`~repro.crypto.dn.DistinguishedName`,
  :class:`~repro.crypto.keys.PublicKey`.

Signatures survive the round trip: objects are reconstructed
field-for-field, so the canonical bytes they sign are identical and
:meth:`SignedEnvelope.verify` still passes on the decoded copy.  That
property is what makes it legitimate for the in-memory engines to skip
the byte layer — and it is asserted by the test suite.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.bb.reservations import ReservationRequest
from repro.core.envelope import SignedEnvelope
from repro.crypto import canonical
from repro.crypto.dn import DistinguishedName
from repro.crypto.keys import PublicKey
from repro.crypto.x509 import Certificate
from repro.errors import EncodingError
from repro.net.packet import DSCP
from repro.policy.attributes import SignedAssertion

__all__ = [
    "pack",
    "unpack",
    "to_wire",
    "from_wire",
    "WireView",
    "WireCodecError",
    "TruncatedWireError",
    "WireDepthError",
    "WireTagError",
    "WireValueError",
]

_KIND = "__kind__"


def pack(value: Any) -> Any:
    """Render *value* as a plain, canonically encodable structure with
    ``__kind__`` tags for protocol object types."""
    if isinstance(value, DSCP):
        # Before the scalar fast path: DSCP is an IntEnum and would
        # otherwise decay to a bare int on the wire.
        return {_KIND: "dscp", "value": int(value)}
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return value
    if isinstance(value, float):
        if value == float("inf"):
            return {_KIND: "+inf"}
        if value == float("-inf"):
            return {_KIND: "-inf"}
        return value
    if isinstance(value, (tuple, list)):
        return {_KIND: "seq", "items": [pack(v) for v in value]}
    if isinstance(value, dict):
        return {_KIND: "map", "items": {k: pack(v) for k, v in value.items()}}
    if isinstance(value, DistinguishedName):
        return {_KIND: "dn", "rdns": [list(p) for p in value.rdns]}
    if isinstance(value, PublicKey):
        material = []
        for m in value.material:
            if isinstance(m, int):
                material.append(["int", str(m)])
            elif isinstance(m, str):
                material.append(["str", m])
            else:
                raise EncodingError(
                    f"unsupported key material type {type(m).__name__}"
                )
        return {_KIND: "pubkey", "scheme": value.scheme, "material": material}
    if isinstance(value, Certificate):
        return {
            _KIND: "certificate",
            "serial": value.serial,
            "issuer": pack(value.issuer),
            "subject": pack(value.subject),
            "public_key": pack(value.public_key),
            "not_before": value.not_before,
            "not_after": value.not_after,
            "extensions": [[k, pack(v)] for k, v in value.extensions],
            "signature": value.signature,
            "signature_scheme": value.signature_scheme,
        }
    if isinstance(value, SignedAssertion):
        return {
            _KIND: "assertion",
            "issuer": pack(value.issuer),
            "subject": pack(value.subject),
            "attributes": [[k, pack(v)] for k, v in value.attributes],
            "signature": value.signature,
            "signature_scheme": value.signature_scheme,
            "valid_from": value.valid_from,
            "valid_until": pack(value.valid_until),
        }
    if isinstance(value, ReservationRequest):
        return {
            _KIND: "res_spec",
            "source_host": value.source_host,
            "destination_host": value.destination_host,
            "source_domain": value.source_domain,
            "destination_domain": value.destination_domain,
            "rate_mbps": value.rate_mbps,
            "start": value.start,
            "end": value.end,
            "service_class": int(value.service_class),
            "burst_bits": value.burst_bits,
            "cost_ceiling": pack(value.cost_ceiling),
            "linked_reservations": [list(p) for p in value.linked_reservations],
            "attributes": [[k, pack(v)] for k, v in value.attributes],
        }
    if isinstance(value, SignedEnvelope):
        return {
            _KIND: "envelope",
            "payload": [[k, pack(v)] for k, v in value.payload],
            "signer": pack(value.signer),
            "signature": value.signature,
            "scheme": value.scheme,
        }
    raise EncodingError(f"cannot pack values of type {type(value).__name__}")


def unpack(data: Any) -> Any:
    """Inverse of :func:`pack`."""
    if data is None or isinstance(data, (bool, int, float, str, bytes)):
        return data
    if isinstance(data, list):
        # Bare lists only appear inside known structures; treat as tuple.
        return tuple(unpack(v) for v in data)
    if not isinstance(data, dict):
        raise EncodingError(f"cannot unpack {type(data).__name__}")
    kind = data.get(_KIND)
    if kind is None:
        raise EncodingError("mapping without __kind__ tag")
    if kind == "+inf":
        return float("inf")
    if kind == "-inf":
        return float("-inf")
    if kind == "seq":
        return tuple(unpack(v) for v in data["items"])
    if kind == "map":
        return {k: unpack(v) for k, v in data["items"].items()}
    if kind == "dn":
        return DistinguishedName(tuple((a, v) for a, v in data["rdns"]))
    if kind == "dscp":
        return DSCP(data["value"])
    if kind == "pubkey":
        material = []
        for t, v in data["material"]:
            material.append(int(v) if t == "int" else v)
        return PublicKey(data["scheme"], tuple(material))
    if kind == "certificate":
        return Certificate(
            serial=data["serial"],
            issuer=unpack(data["issuer"]),
            subject=unpack(data["subject"]),
            public_key=unpack(data["public_key"]),
            not_before=data["not_before"],
            not_after=data["not_after"],
            extensions=tuple((k, unpack(v)) for k, v in data["extensions"]),
            signature=data["signature"],
            signature_scheme=data["signature_scheme"],
        )
    if kind == "assertion":
        return SignedAssertion(
            issuer=unpack(data["issuer"]),
            subject=unpack(data["subject"]),
            attributes=tuple((k, unpack(v)) for k, v in data["attributes"]),
            signature=data["signature"],
            signature_scheme=data["signature_scheme"],
            valid_from=data["valid_from"],
            valid_until=unpack(data["valid_until"]),
        )
    if kind == "res_spec":
        return ReservationRequest(
            source_host=data["source_host"],
            destination_host=data["destination_host"],
            source_domain=data["source_domain"],
            destination_domain=data["destination_domain"],
            rate_mbps=data["rate_mbps"],
            start=data["start"],
            end=data["end"],
            service_class=DSCP(data["service_class"]),
            burst_bits=data["burst_bits"],
            cost_ceiling=unpack(data["cost_ceiling"]),
            linked_reservations=tuple(
                (k, v) for k, v in data["linked_reservations"]
            ),
            attributes=tuple((k, unpack(v)) for k, v in data["attributes"]),
        )
    if kind == "envelope":
        return SignedEnvelope(
            payload=tuple((k, unpack(v)) for k, v in data["payload"]),
            signer=unpack(data["signer"]),
            signature=data["signature"],
            scheme=data["scheme"],
        )
    raise EncodingError(f"unknown __kind__ tag {kind!r}")


def to_wire(value: Any) -> bytes:
    """Serialize a protocol object (or nested message) to bytes."""
    return canonical.encode(pack(value))


def from_wire(data: bytes) -> Any:
    """Parse bytes produced by :func:`to_wire` back into protocol objects."""
    return unpack(canonical.decode(data))


# ---------------------------------------------------------------------------
# Zero-copy wire views (the fast miss path's decoder)
# ---------------------------------------------------------------------------
#
# :func:`from_wire` builds an intermediate plain-value tree
# (``canonical.decode``) and then walks it again (``unpack``).  On the
# ingress path that double walk — plus the copies it implies — is pure
# overhead: the PR-8 defense gate only needs the message *kind* and a
# couple of scalar payload fields (traceparent, deadline) to classify a
# message, and a rejected message should never pay for a full decode.
#
# :class:`WireView` is a sliced decoder over the received buffer:
# ``parse`` checks only the outer frame, ``kind``/``peek`` skip across
# the tag+length frames (O(1) per skipped field, no payload copies) to
# extract single fields, and ``materialize`` runs one fused
# decode+unpack pass that builds the final protocol objects directly —
# no intermediate tree.  The accept-set is identical to
# ``from_wire``: every byte string either parses to an equal value
# under both decoders or is rejected by both (the golden-vector corpus,
# the Hypothesis round-trip suite and the bit-flip fuzz tests in
# ``tests/`` enforce this).  All failures raise
# :class:`WireCodecError` subclasses (never bare ``KeyError`` /
# ``ValueError``) at cost bounded by the buffer length and the
# canonical depth bound.

_MAX_DEPTH = 200

_T_NONE = 0x4E   # N
_T_TRUE = 0x54   # T
_T_FALSE = 0x46  # F
_T_INT = 0x49    # I
_T_FLOAT = 0x44  # D
_T_STR = 0x53    # S
_T_BYTES = 0x42  # B
_T_SEQ = 0x4C    # L
_T_MAP = 0x4D    # M


class WireCodecError(EncodingError):
    """A zero-copy decode failure (malformed, truncated, non-canonical)."""


class TruncatedWireError(WireCodecError):
    """The buffer ends before a frame's declared payload does."""


class WireDepthError(WireCodecError):
    """Nesting beyond the canonical depth bound (depth-bomb defense)."""


class WireTagError(WireCodecError):
    """An unknown type tag or an unexpected frame type."""


class WireValueError(WireCodecError):
    """A structurally framed but non-canonical or ill-typed payload."""


def _frame(buf: memoryview, pos: int, data_end: int) -> tuple[int, int, int]:
    """Read one ``tag + length`` frame header at *pos*.

    Returns ``(tag, payload_start, payload_end)``.  Bounds are checked
    against the whole buffer (like :func:`canonical.decode`); containment
    within the *enclosing* frame is the caller's length-mismatch check,
    so error messages match the eager decoder's exactly.
    """
    if pos + 5 > data_end:
        raise TruncatedWireError("truncated encoding (missing tag/length)")
    tag = buf[pos]
    (length,) = struct.unpack_from(">I", buf, pos + 1)
    start = pos + 5
    stop = start + length
    if stop > data_end:
        raise TruncatedWireError(
            "truncated encoding (payload shorter than length)"
        )
    return tag, start, stop


def _scalar(buf: memoryview, tag: int, start: int, stop: int) -> Any:
    """Decode one scalar frame with the canonical strictness rules."""
    if tag == _T_NONE:
        if stop != start:
            raise WireValueError("None payload must be empty")
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    payload = bytes(buf[start:stop])
    if tag == _T_INT:
        try:
            value = int(payload.decode("ascii"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireValueError("malformed integer payload") from exc
        if str(value).encode("ascii") != payload:
            raise WireValueError("non-canonical integer payload")
        return value
    if tag == _T_FLOAT:
        try:
            value_f = float.fromhex(payload.decode("ascii"))
        except (UnicodeDecodeError, ValueError, OverflowError) as exc:
            raise WireValueError("malformed float payload") from exc
        if value_f != value_f or value_f in (float("inf"), float("-inf")):
            raise WireValueError("non-finite float payload")
        if value_f.hex().encode("ascii") != payload:
            raise WireValueError("non-canonical float payload")
        return value_f
    if tag == _T_STR:
        try:
            return payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireValueError("malformed utf-8 string payload") from exc
    if tag == _T_BYTES:
        return payload
    raise WireTagError(f"unknown type tag {bytes((tag,))!r}")


def _plain(
    buf: memoryview, pos: int, data_end: int, depth: int
) -> tuple[Any, int]:
    """Strict canonical decode of one value (lists stay lists — exactly
    :func:`canonical.decode`'s result shape)."""
    if depth > _MAX_DEPTH:
        raise WireDepthError("encoded nesting exceeds maximum depth 200")
    tag, start, stop = _frame(buf, pos, data_end)
    if tag == _T_SEQ:
        items: list[Any] = []
        inner = start
        while inner < stop:
            item, inner = _plain(buf, inner, data_end, depth + 1)
            items.append(item)
        if inner != stop:
            raise WireValueError("sequence payload length mismatch")
        return items, stop
    if tag == _T_MAP:
        mapping: dict[str, Any] = {}
        inner = start
        previous: str | None = None
        while inner < stop:
            key, inner = _plain(buf, inner, data_end, depth + 1)
            if not isinstance(key, str):
                raise WireValueError("mapping key is not a string")
            if previous is not None and key <= previous:
                raise WireValueError(
                    "non-canonical mapping (duplicate or unsorted keys)"
                )
            previous = key
            value, inner = _plain(buf, inner, data_end, depth + 1)
            mapping[key] = value
        if inner != stop:
            raise WireValueError("mapping payload length mismatch")
        return mapping, stop
    return _scalar(buf, tag, start, stop), stop


def _map_spans(
    buf: memoryview, start: int, stop: int, data_end: int, depth: int
) -> dict[str, tuple[int, int]]:
    """Scan a map frame's entries into ``{key: (value_pos, value_end)}``
    without decoding the values (skips are O(1) per frame)."""
    spans: dict[str, tuple[int, int]] = {}
    inner = start
    previous: str | None = None
    while inner < stop:
        key, inner = _plain(buf, inner, data_end, depth + 1)
        if not isinstance(key, str):
            raise WireValueError("mapping key is not a string")
        if previous is not None and key <= previous:
            raise WireValueError(
                "non-canonical mapping (duplicate or unsorted keys)"
            )
        previous = key
        _, _, value_end = _frame(buf, inner, data_end)
        spans[key] = (inner, value_end)
        inner = value_end
    if inner != stop:
        raise WireValueError("mapping payload length mismatch")
    return spans


def _require(
    spans: dict[str, tuple[int, int]], key: str, kind: str
) -> tuple[int, int]:
    span = spans.get(key)
    if span is None:
        raise WireValueError(f"{kind} wire value lacks key {key!r}")
    return span


def _pair_spans(
    buf: memoryview, pos: int, end: int, data_end: int
) -> "tuple[int, int] | None":
    """Positions of the two elements of a ``[key, value]`` pair frame, or
    ``None`` when the frame is not a two-item sequence (caller falls back
    to the eager decoder's permissive semantics)."""
    tag, start, stop = _frame(buf, pos, data_end)
    if tag != _T_SEQ or stop != end or start == stop:
        return None
    _, _, first_end = _frame(buf, start, data_end)
    if first_end >= stop:
        return None
    _, _, second_end = _frame(buf, first_end, data_end)
    if second_end != stop:
        return None
    return start, first_end


def _legacy_pairs(container: Any) -> tuple[tuple[Any, Any], ...]:
    """:func:`unpack`'s exact pair semantics for non-standard shapes —
    anything iterable yielding length-2 items is accepted, exactly like
    ``tuple((k, unpack(v)) for k, v in container)``."""
    out: list[tuple[Any, Any]] = []
    try:
        for element in container:
            k, v = element
            out.append((k, unpack(v)))
    except (TypeError, ValueError) as exc:
        raise WireValueError(str(exc)) from exc
    return tuple(out)


def _packed_pairs(
    buf: memoryview, pos: int, data_end: int, depth: int
) -> tuple[tuple[Any, Any], ...]:
    """Decode a ``[[key, packed-value], ...]`` field into key/value pairs
    (the shape :func:`pack` uses for payloads, extensions, attributes).

    The common frame shape — a sequence of two-item sequences — is
    decoded fused, one pass, zero copies.  Any other shape the eager
    decoder would tolerate is plain-decoded and run through its exact
    pair semantics so the accept-sets stay identical.
    """
    if depth > _MAX_DEPTH:
        raise WireDepthError("encoded nesting exceeds maximum depth 200")
    tag, start, stop = _frame(buf, pos, data_end)
    if tag != _T_SEQ:
        container, _ = _plain(buf, pos, data_end, depth)
        return _legacy_pairs(container)
    out: list[tuple[Any, Any]] = []
    inner = start
    while inner < stop:
        _, _, item_end = _frame(buf, inner, data_end)
        spans = _pair_spans(buf, inner, item_end, data_end)
        if spans is None:
            element, _ = _plain(buf, inner, data_end, depth + 1)
            out.extend(_legacy_pairs((element,)))
        else:
            key_pos, value_pos = spans
            key, _ = _plain(buf, key_pos, data_end, depth + 2)
            value, _ = _packed(buf, value_pos, data_end, depth + 2)
            out.append((key, value))
        inner = item_end
    if inner != stop:
        raise WireValueError("sequence payload length mismatch")
    return tuple(out)


def _packed(
    buf: memoryview, pos: int, data_end: int, depth: int
) -> tuple[Any, int]:
    """One fused decode+unpack step: the zero-copy equivalent of
    ``unpack(canonical.decode(...))`` for the value at *pos*."""
    if depth > _MAX_DEPTH:
        raise WireDepthError("encoded nesting exceeds maximum depth 200")
    tag, start, stop = _frame(buf, pos, data_end)
    if tag == _T_SEQ:
        # Bare lists only appear inside known structures; like unpack(),
        # decode to a tuple.
        items: list[Any] = []
        inner = start
        while inner < stop:
            item, inner = _packed(buf, inner, data_end, depth + 1)
            items.append(item)
        if inner != stop:
            raise WireValueError("sequence payload length mismatch")
        return tuple(items), stop
    if tag != _T_MAP:
        return _scalar(buf, tag, start, stop), stop

    spans = _map_spans(buf, start, stop, data_end, depth)
    kind_span = spans.get(_KIND)
    if kind_span is None:
        raise WireValueError("mapping without __kind__ tag")
    kind, _ = _plain(buf, kind_span[0], data_end, depth + 1)
    value = _packed_tagged(buf, spans, str(kind), data_end, depth)
    # Parity with the eager decoder: every entry of the map is decoded
    # (a malformed value hiding under an ignored key must still reject).
    for key, (value_pos, _) in spans.items():
        if key != _KIND and key not in _CONSUMED_KEYS.get(str(kind), ()):
            _plain(buf, value_pos, data_end, depth + 1)
    return value, stop


#: Keys each ``__kind__`` dispatch actually decodes (everything else is
#: validated canonically and then ignored, matching :func:`unpack`).
_CONSUMED_KEYS: dict[str, tuple[str, ...]] = {
    "+inf": (),
    "-inf": (),
    "seq": ("items",),
    "map": ("items",),
    "dn": ("rdns",),
    "dscp": ("value",),
    "pubkey": ("scheme", "material"),
    "certificate": (
        "serial", "issuer", "subject", "public_key", "not_before",
        "not_after", "extensions", "signature", "signature_scheme",
    ),
    "assertion": (
        "issuer", "subject", "attributes", "signature",
        "signature_scheme", "valid_from", "valid_until",
    ),
    "res_spec": (
        "source_host", "destination_host", "source_domain",
        "destination_domain", "rate_mbps", "start", "end",
        "service_class", "burst_bits", "cost_ceiling",
        "linked_reservations", "attributes",
    ),
    "envelope": ("payload", "signer", "signature", "scheme"),
}


def _packed_tagged(
    buf: memoryview,
    spans: dict[str, tuple[int, int]],
    kind: str,
    data_end: int,
    depth: int,
) -> Any:
    def plain(key: str) -> Any:
        return _plain(
            buf, _require(spans, key, kind)[0], data_end, depth + 1
        )[0]

    def packed(key: str) -> Any:
        return _packed(
            buf, _require(spans, key, kind)[0], data_end, depth + 1
        )[0]

    def pairs(key: str) -> tuple[tuple[Any, Any], ...]:
        return _packed_pairs(
            buf, _require(spans, key, kind)[0], data_end, depth + 1
        )

    if kind == "+inf":
        return float("inf")
    if kind == "-inf":
        return float("-inf")
    if kind == "seq":
        pos, _ = _require(spans, "items", kind)
        return _packed_seq(buf, pos, data_end, depth + 1)
    if kind == "map":
        pos, _ = _require(spans, "items", kind)
        tag, istart, istop = _frame(buf, pos, data_end)
        if tag != _T_MAP:
            # unpack() calls .items() on whatever decoded; only a plain
            # mapping survives that, so any other frame type rejects.
            raise WireTagError("map wire items is not a mapping")
        if depth + 1 > _MAX_DEPTH:
            raise WireDepthError("encoded nesting exceeds maximum depth 200")
        items = _map_spans(buf, istart, istop, data_end, depth + 1)
        return {
            k: _packed(buf, vpos, data_end, depth + 2)[0]
            for k, (vpos, _) in items.items()
        }
    if kind == "dn":
        rdns = plain("rdns")
        try:
            out = tuple((a, v) for a, v in rdns)
        except (TypeError, ValueError) as exc:
            raise WireValueError(str(exc)) from exc
        return DistinguishedName(out)
    if kind == "dscp":
        try:
            return DSCP(plain("value"))
        except (TypeError, ValueError) as exc:
            raise WireValueError(str(exc)) from exc
    if kind == "pubkey":
        raw = plain("material")
        material: list[Any] = []
        try:
            for t, v in raw:
                material.append(int(v) if t == "int" else v)
        except (TypeError, ValueError) as exc:
            raise WireValueError(str(exc)) from exc
        return PublicKey(plain("scheme"), tuple(material))
    if kind == "certificate":
        return Certificate(
            serial=plain("serial"),
            issuer=packed("issuer"),
            subject=packed("subject"),
            public_key=packed("public_key"),
            not_before=plain("not_before"),
            not_after=plain("not_after"),
            extensions=pairs("extensions"),
            signature=plain("signature"),
            signature_scheme=plain("signature_scheme"),
        )
    if kind == "assertion":
        return SignedAssertion(
            issuer=packed("issuer"),
            subject=packed("subject"),
            attributes=pairs("attributes"),
            signature=plain("signature"),
            signature_scheme=plain("signature_scheme"),
            valid_from=plain("valid_from"),
            valid_until=packed("valid_until"),
        )
    if kind == "res_spec":
        linked = plain("linked_reservations")
        try:
            linked_pairs = tuple((k, v) for k, v in linked)
        except (TypeError, ValueError) as exc:
            raise WireValueError(str(exc)) from exc
        try:
            service_class = DSCP(plain("service_class"))
        except (TypeError, ValueError) as exc:
            raise WireValueError(str(exc)) from exc
        return ReservationRequest(
            source_host=plain("source_host"),
            destination_host=plain("destination_host"),
            source_domain=plain("source_domain"),
            destination_domain=plain("destination_domain"),
            rate_mbps=plain("rate_mbps"),
            start=plain("start"),
            end=plain("end"),
            service_class=service_class,
            burst_bits=plain("burst_bits"),
            cost_ceiling=packed("cost_ceiling"),
            linked_reservations=linked_pairs,
            attributes=pairs("attributes"),
        )
    if kind == "envelope":
        return SignedEnvelope(
            payload=pairs("payload"),
            signer=packed("signer"),
            signature=plain("signature"),
            scheme=plain("scheme"),
        )
    raise WireValueError(f"unknown __kind__ tag {kind!r}")


def _packed_seq(
    buf: memoryview, pos: int, data_end: int, depth: int
) -> tuple[Any, ...]:
    """The ``seq`` kind's items: fused when the frame is a sequence,
    legacy-iterated otherwise (``unpack`` tolerates any iterable)."""
    if depth > _MAX_DEPTH:
        raise WireDepthError("encoded nesting exceeds maximum depth 200")
    tag, start, stop = _frame(buf, pos, data_end)
    if tag != _T_SEQ:
        container, _ = _plain(buf, pos, data_end, depth)
        try:
            return tuple(unpack(v) for v in container)
        except (TypeError, ValueError) as exc:
            raise WireValueError(str(exc)) from exc
    items: list[Any] = []
    inner = start
    while inner < stop:
        item, inner = _packed(buf, inner, data_end, depth + 1)
        items.append(item)
    if inner != stop:
        raise WireValueError("sequence payload length mismatch")
    return tuple(items)


class WireView:
    """A zero-copy, lazily materialized view over one wire message.

    ``parse`` validates only the outer frame; ``kind``/``peek`` skip
    across inner frames to answer single-field questions without
    decoding (the PR-8 gate's pre-verification needs); ``materialize``
    runs the fused single-pass decode and caches the result.  Behaviour
    is byte-for-byte equivalent to :func:`from_wire`; every failure is a
    :class:`WireCodecError` (an :class:`~repro.errors.EncodingError`).
    """

    __slots__ = (
        "_buf", "_tag", "_start", "_stop", "_value", "_decoded",
        "_kind", "_kind_known", "_field_spans",
    )

    def __init__(
        self, buf: memoryview, tag: int, start: int, stop: int
    ) -> None:
        self._buf = buf
        self._tag = tag
        self._start = start
        self._stop = stop
        self._value: Any = None
        self._decoded = False
        self._kind: "str | None" = None
        self._kind_known = False
        self._field_spans: "dict[str, int] | None" = None

    @classmethod
    def parse(cls, data: "bytes | bytearray | memoryview") -> "WireView":
        """Frame-validate *data* (outer tag, length, no trailing bytes)
        and return a view.  No payload bytes are copied or decoded."""
        buf = memoryview(data)
        if buf.ndim != 1 or buf.itemsize != 1:
            raise WireTagError("wire buffer must be a flat byte buffer")
        tag, start, stop = _frame(buf, 0, len(buf))
        # Trailing bytes are rejected by materialize(), *after* the
        # decode — the same error order as the eager decoder.
        return cls(buf, tag, start, stop)

    def wire_size(self) -> int:
        """Bytes this message occupies on the wire."""
        return len(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def kind(self) -> "str | None":
        """The ``__kind__`` tag of a packed object (``"envelope"`` for
        protocol messages) — found by skipping frames, not by decoding
        the message.  Total: returns ``None`` for scalars, sequences and
        anything malformed; :meth:`materialize` is the authority on
        rejects, so a malformed message fails identically on the fast
        and the slow path.  Memoized: the buffer is immutable, and the
        ingress gate asks several times per message."""
        if self._kind_known:
            return self._kind
        value = self._kind_uncached()
        self._kind = value
        self._kind_known = True
        return value

    def _kind_uncached(self) -> "str | None":
        if self._tag != _T_MAP:
            return None
        buf = self._buf
        data_end = len(buf)
        inner = self._start
        try:
            while inner < self._stop:
                key, inner = _plain(buf, inner, data_end, 1)
                if not isinstance(key, str):
                    return None
                tag, vstart, vstop = _frame(buf, inner, data_end)
                if key == _KIND:
                    if tag != _T_STR:
                        return None
                    value = _scalar(buf, tag, vstart, vstop)
                    return value if isinstance(value, str) else None
                if key > _KIND:
                    # Keys are sorted on a canonical wire; no tag follows.
                    return None
                inner = vstop
        except WireCodecError:
            return None
        return None

    def peek(self, field: str, default: Any = None) -> Any:
        """The scalar payload field *field* of an envelope message,
        extracted by skipping frames (no materialization, no copies of
        anything but the returned scalar).  Total like :meth:`kind`:
        returns *default* when the message is not an envelope, the field
        is absent or non-scalar, or the buffer is malformed.

        The field->offset walk is memoized (one frame-skipping pass over
        the payload, first occurrence wins — identical to the linear
        scan it replaces, including on malformed buffers: pairs after a
        framing error are simply absent, exactly the pairs the scan
        could never have reached)."""
        position = self._payload_field_spans().get(field)
        if position is None:
            return default
        buf = self._buf
        try:
            vtag, vstart, vstop = _frame(buf, position, len(buf))
            if vtag in (_T_SEQ, _T_MAP):
                return default
            return _scalar(buf, vtag, vstart, vstop)
        except WireCodecError:
            return default

    def _payload_field_spans(self) -> "dict[str, int]":
        """First occurrence of each payload field -> value offset."""
        if self._field_spans is not None:
            return self._field_spans
        spans: "dict[str, int]" = {}
        if self.kind() == "envelope":
            buf = self._buf
            data_end = len(buf)
            try:
                outer = _map_spans(
                    buf, self._start, self._stop, data_end, 0
                )
                payload_span = outer.get("payload")
                if payload_span is not None:
                    tag, start, stop = _frame(
                        buf, payload_span[0], data_end
                    )
                    if tag == _T_SEQ:
                        inner = start
                        while inner < stop:
                            _, _, item_end = _frame(buf, inner, data_end)
                            pair = _pair_spans(
                                buf, inner, item_end, data_end
                            )
                            inner = item_end
                            if pair is None:
                                continue
                            key_pos, value_pos = pair
                            key, _ = _plain(buf, key_pos, data_end, 3)
                            if isinstance(key, str):
                                spans.setdefault(key, value_pos)
            except WireCodecError:
                pass
        self._field_spans = spans
        return spans

    def materialize(self) -> Any:
        """Decode the full message into protocol objects (one fused
        pass, cached).  Equal to ``from_wire(bytes(view))`` by the
        differential property suite."""
        if not self._decoded:
            data_end = len(self._buf)
            value, end = _packed(self._buf, 0, data_end, 0)
            if end != data_end:
                raise WireValueError(
                    f"{data_end - end} trailing bytes after value"
                )
            self._value = value
            self._decoded = True
        return self._value
