"""Transitive-trust verification of nested RAR messages (paper §6.4).

A bandwidth broker receiving ``RAR_N`` over a mutually authenticated
channel can verify:

* the outermost signature — the channel peer's certificate is known (SLA
  + handshake), so this is direct trust;
* every inner signature — each layer *introduces* the certificate of the
  next-inner signer (``cert_N`` inside ``RAR_{N+1}``), forming a web of
  trust: "this web of trust allows each domain to access a list of key
  introducers when deciding whether to accept the public key stored in
  the certificate";
* path consistency — every layer names the DN of the BB it was sent to
  (``DN_BB_{N+2}``), so the verifier can trace the exact path the request
  took and confirm it terminates at itself;
* its own security policy — "checking its own security policy which might
  limit the depth of an acceptable trust chain" — via the verifier's
  :class:`~repro.crypto.truststore.TrustPolicy`.

The result of :func:`verify_rar` is everything the BB's policy server
needs: the authenticated user, the original request, the collected
capability chain (in delegation order, ready for the §6.5 checks), the
assertions added along the path, and the traced path itself.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.bb.reservations import ReservationRequest
from repro.crypto import cache as verification_cache
from repro.crypto.dn import DistinguishedName
from repro.crypto.repository import CertificateRepository
from repro.crypto.truststore import TrustStore
from repro.crypto.x509 import Certificate
from repro.core.envelope import SignedEnvelope
from repro.core.messages import (
    F_ASSERTIONS,
    F_CAPABILITY_CERTS,
    F_DOWNSTREAM,
    F_INTRODUCED_CERT,
    F_RES_SPEC,
    unwrap_rar_layers,
)
from repro.errors import (
    ChainTooDeepError,
    IntroductionError,
    ReproError,
    SignallingError,
    TamperedMessageError,
)
from repro.obs import metrics as obs_metrics
from repro.obs.audit import ledger as obs_audit
from repro.policy.attributes import SignedAssertion

__all__ = ["VerifiedRAR", "verify_rar", "verify_rar_with_repository"]

logger = logging.getLogger(__name__)

#: Buckets for the introduction-depth histogram (layers below the outer).
_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

_V = TypeVar("_V")


def _meter_verification(fn: Callable[[], _V], mode: str) -> _V:
    """Wrap a RAR verifier with signature/depth/timing telemetry.

    Counts every verification attempt (``rar_verifications_total`` with a
    ``result`` label), the individual signature checks it implied (one
    per envelope layer), the introduction depth distribution, and the
    wall-clock cost — all skipped entirely when no registry is active.
    """
    registry = obs_metrics.get_registry()
    if registry is None:
        return fn()
    timer = registry.histogram(
        "rar_verification_seconds",
        "Wall-clock cost of one transitive-trust verification",
    )
    try:
        with timer.time():
            result = fn()
    except ReproError as exc:
        registry.counter(
            "rar_verifications_total",
            "Transitive-trust RAR verifications, by result",
        ).inc(result="fail", mode=mode)
        logger.debug("RAR verification failed (%s): %s", mode, exc)
        raise
    verified = result[0] if mode == "repository" else result
    registry.counter(
        "rar_verifications_total",
        "Transitive-trust RAR verifications, by result",
    ).inc(result="ok", mode=mode)
    registry.counter(
        "signature_verifications_total",
        "Individual envelope-signature checks performed",
    ).inc(verified.depth + 1)
    registry.histogram(
        "rar_verification_depth",
        "Introduction depth of verified RARs",
        buckets=_DEPTH_BUCKETS,
    ).observe(verified.depth)
    return result


def _note_rar_checks(
    verified: "VerifiedRAR", peer_certificate: Certificate, source: str
) -> None:
    """Note every certificate this verification vouched for, plus a
    summary trust check, into the audit pending buffer.  The *source*
    records verdict provenance: ``fresh`` (full signature math) or
    ``cache:rar`` (PR-5 cache hit after the validity/revocation
    guards)."""
    for cert in (peer_certificate, *verified.introduced):
        obs_audit.note_check(
            "certificate",
            subject=str(cert.subject),
            fingerprint=cert.fingerprint,
            source=source,
        )
    obs_audit.note_check(
        "rar_trust",
        subject=str(verified.user),
        fingerprint=peer_certificate.fingerprint,
        source=source,
        detail=f"depth {verified.depth}",
    )


@dataclass(frozen=True)
class VerifiedRAR:
    """Outcome of successful transitive-trust verification."""

    #: The authenticated originating user.
    user: DistinguishedName
    #: The user's identity certificate (introduced by the source BB), when
    #: the chain is longer than the bare user RAR.
    user_certificate: Certificate | None
    #: The original reservation specification, exactly as the user signed it.
    request: ReservationRequest
    #: Signers from the user outward: (user, BB_source, ..., BB_previous).
    path: tuple[DistinguishedName, ...]
    #: Capability certificates in delegation order (CAS-issued first).
    capability_chain: tuple[Certificate, ...]
    #: All signed assertions collected along the path.
    assertions: tuple[SignedAssertion, ...]
    #: Introduction depth of the innermost (user) signature.
    depth: int
    #: Certificates introduced along the way, by subject (the "list of key
    #: introducers" a later tunnel handshake can draw on).
    introduced: tuple[Certificate, ...]


def verify_rar(
    rar: SignedEnvelope,
    *,
    verifier: DistinguishedName,
    peer_certificate: Certificate,
    truststore: TrustStore,
    at_time: float = 0.0,
) -> VerifiedRAR:
    """Verify a (possibly nested) RAR received from the holder of
    *peer_certificate* over a mutually authenticated channel.

    Raises :class:`~repro.errors.TamperedMessageError` on any signature
    failure, :class:`~repro.errors.IntroductionError` on broken
    introductions or path inconsistencies, and
    :class:`~repro.errors.ChainTooDeepError` when the verifier's trust
    policy rejects the introduction depth.

    When verification caching is enabled (:mod:`repro.crypto.cache`), a
    previously verified identical envelope is served from cache — but
    only after the time/policy-dependent guards (certificate validity,
    revocation, direct trust of the peer, depth and scheme policy) are
    re-checked against the *current* truststore and clock, so a hit can
    never admit what a fresh verification would reject.
    """
    caches = verification_cache.get_caches()
    key: tuple[object, ...] | None = None
    if caches is not None:
        key = (
            verification_cache.digest(rar.cbe_bytes()),
            str(verifier),
            peer_certificate.fingerprint,
        )
        entry = caches.get_verdict("rar", key)
        if entry is not None and _rar_hit_valid(
            entry,
            peer_certificate=peer_certificate,
            truststore=truststore,
            at_time=at_time,
        ):
            verdict: VerifiedRAR = entry[0]
            if obs_audit.get_ledger() is not None:
                _note_rar_checks(verdict, peer_certificate, "cache:rar")
            return verdict
    try:
        verified = _meter_verification(
            lambda: _verify_rar_impl(
                rar,
                verifier=verifier,
                peer_certificate=peer_certificate,
                truststore=truststore,
                at_time=at_time,
            ),
            "introduction",
        )
    except ReproError as exc:
        obs_audit.note_check(
            "rar_trust",
            fingerprint=peer_certificate.fingerprint,
            verdict="rejected",
            source="fresh",
            detail=str(exc),
        )
        raise
    if obs_audit.get_ledger() is not None:
        _note_rar_checks(verified, peer_certificate, "fresh")
    if caches is not None and key is not None:
        dependencies = (peer_certificate, *verified.introduced)
        caches.put_verdict(
            "rar", key, (verified, dependencies),
            tuple(cert.fingerprint for cert in dependencies),
        )
    return verified


def _rar_hit_valid(
    entry: tuple[VerifiedRAR, tuple[Certificate, ...]],
    *,
    peer_certificate: Certificate,
    truststore: TrustStore,
    at_time: float,
) -> bool:
    """Re-run every cheap, mutable-state-dependent check of
    :func:`_verify_rar_impl` against the current truststore and clock.

    The cached part is exactly the immutable remainder: signature math
    over fixed bytes and the structural layer/path checks.  Returning
    ``False`` falls back to full verification, which raises the precise
    error a cold call would have raised.
    """
    verdict, dependencies = entry
    if not truststore.accepts_directly(peer_certificate, at_time=at_time):
        return False
    for depth in range(verdict.depth + 1):
        if not truststore.depth_acceptable(depth):
            return False
    for cert in dependencies:
        if not cert.valid_at(at_time):
            return False
        if truststore.is_revoked(cert):
            return False
        if not truststore.scheme_acceptable(cert.public_key):
            return False
    return True


def _verify_rar_impl(
    rar: SignedEnvelope,
    *,
    verifier: DistinguishedName,
    peer_certificate: Certificate,
    truststore: TrustStore,
    at_time: float = 0.0,
) -> VerifiedRAR:
    layers = unwrap_rar_layers(rar)

    # Layer 0 (outermost) must be signed by the channel peer: direct trust.
    outer = layers[0]
    if outer.signer != peer_certificate.subject:
        raise IntroductionError(
            f"outermost RAR signed by {outer.signer}, but the channel peer is "
            f"{peer_certificate.subject}"
        )
    if not truststore.accepts_directly(peer_certificate, at_time=at_time):
        raise IntroductionError(
            f"channel peer certificate {peer_certificate.subject} is not "
            f"directly trusted"
        )
    if outer.get(F_DOWNSTREAM) != verifier:
        raise IntroductionError(
            f"outermost RAR is addressed to {outer.get(F_DOWNSTREAM)}, "
            f"not to verifier {verifier}"
        )

    signer_cert = peer_certificate
    capability_chain: list[Certificate] = []
    assertions: list[SignedAssertion] = []
    introduced: list[Certificate] = []
    user_certificate: Certificate | None = None

    for depth, layer in enumerate(layers):
        if not truststore.depth_acceptable(depth):
            raise ChainTooDeepError(
                f"introduction depth {depth} exceeds local trust policy "
                f"(max {truststore.policy.max_introduction_depth})"
            )
        if not truststore.scheme_acceptable(signer_cert.public_key):
            raise IntroductionError(
                f"signature scheme of {signer_cert.subject} violates local policy"
            )
        if not signer_cert.valid_at(at_time):
            raise IntroductionError(
                f"certificate for {signer_cert.subject} not valid at t={at_time}"
            )
        if truststore.is_revoked(signer_cert):
            raise IntroductionError(
                f"certificate for {signer_cert.subject} has been revoked"
            )
        layer.require_valid(signer_cert.public_key)

        # Collect what this layer adds.  Capability certificates appear
        # outermost-last in delegation order, so prepend.
        capability_chain[:0] = list(layer.get(F_CAPABILITY_CERTS, ()))
        assertions[:0] = list(layer.get(F_ASSERTIONS, ()))

        inner = layers[depth + 1] if depth + 1 < len(layers) else None
        if inner is None:
            break
        # Path consistency: the inner layer must name this layer's signer
        # as the BB it was sent to.
        if inner.get(F_DOWNSTREAM) != layer.signer:
            raise IntroductionError(
                f"path break: layer signed by {inner.signer} was addressed to "
                f"{inner.get(F_DOWNSTREAM)}, not to {layer.signer} who "
                f"forwarded it"
            )
        # Introduction: this layer carries the certificate of the inner
        # signer, vouched for by this layer's (already verified) signature.
        cert = layer.get(F_INTRODUCED_CERT)
        if cert is None:
            raise IntroductionError(
                f"layer signed by {layer.signer} introduces no certificate for "
                f"inner signer {inner.signer}"
            )
        if not isinstance(cert, Certificate):
            raise IntroductionError("introduced certificate field is malformed")
        if cert.subject != inner.signer:
            raise IntroductionError(
                f"introduced certificate names {cert.subject}, inner layer is "
                f"signed by {inner.signer}"
            )
        introduced.append(cert)
        user_certificate = cert  # the last introduction is the user's cert
        signer_cert = cert

    user_layer = layers[-1]
    request = user_layer.get(F_RES_SPEC)
    if not isinstance(request, ReservationRequest):
        raise SignallingError("innermost RAR carries no reservation spec")

    path = tuple(layer.signer for layer in reversed(layers))
    return VerifiedRAR(
        user=user_layer.signer,
        user_certificate=user_certificate if len(layers) > 1 else None,
        request=request,
        path=path,
        capability_chain=tuple(capability_chain),
        assertions=tuple(assertions),
        depth=len(layers) - 1,
        introduced=tuple(introduced),
    )


def verify_rar_with_repository(
    rar: SignedEnvelope,
    *,
    verifier: DistinguishedName,
    peer_certificate: Certificate,
    truststore: TrustStore,
    repository: CertificateRepository,
    at_time: float = 0.0,
) -> tuple[VerifiedRAR, int]:
    """Verify a nested RAR resolving inner-signer keys from a trusted
    certificate *repository* instead of in-request introductions.

    This is the paper's §6.4 alternative 2 ("secure LDAP"), implemented so
    the key-distribution ablation compares real code paths.  The RAR may
    omit introduced certificates entirely; each inner signer's key is
    fetched by DN.  Requires "a strong trust relationship with the
    repository" — here, the caller choosing to pass one.

    Returns ``(verified, lookups)`` where *lookups* is the number of
    repository queries this verification performed.
    """
    try:
        result = _meter_verification(
            lambda: _verify_rar_with_repository_impl(
                rar,
                verifier=verifier,
                peer_certificate=peer_certificate,
                truststore=truststore,
                repository=repository,
                at_time=at_time,
            ),
            "repository",
        )
    except ReproError as exc:
        obs_audit.note_check(
            "rar_trust",
            fingerprint=peer_certificate.fingerprint,
            verdict="rejected",
            source="fresh",
            detail=f"repository: {exc}",
        )
        raise
    if obs_audit.get_ledger() is not None:
        _note_rar_checks(result[0], peer_certificate, "fresh")
    return result


def _verify_rar_with_repository_impl(
    rar: SignedEnvelope,
    *,
    verifier: DistinguishedName,
    peer_certificate: Certificate,
    truststore: TrustStore,
    repository: CertificateRepository,
    at_time: float = 0.0,
) -> tuple[VerifiedRAR, int]:
    layers = unwrap_rar_layers(rar)

    outer = layers[0]
    if outer.signer != peer_certificate.subject:
        raise IntroductionError(
            f"outermost RAR signed by {outer.signer}, but the channel peer is "
            f"{peer_certificate.subject}"
        )
    if not truststore.accepts_directly(peer_certificate, at_time=at_time):
        raise IntroductionError(
            f"channel peer certificate {peer_certificate.subject} is not "
            f"directly trusted"
        )
    if outer.get(F_DOWNSTREAM) != verifier:
        raise IntroductionError(
            f"outermost RAR is addressed to {outer.get(F_DOWNSTREAM)}, "
            f"not to verifier {verifier}"
        )

    queries_before = repository.queries
    signer_cert = peer_certificate
    capability_chain: list[Certificate] = []
    assertions: list[SignedAssertion] = []
    fetched: list[Certificate] = []
    user_certificate: Certificate | None = None

    for depth, layer in enumerate(layers):
        if not signer_cert.valid_at(at_time):
            raise IntroductionError(
                f"certificate for {signer_cert.subject} not valid at t={at_time}"
            )
        if truststore.is_revoked(signer_cert):
            raise IntroductionError(
                f"certificate for {signer_cert.subject} has been revoked"
            )
        layer.require_valid(signer_cert.public_key)
        capability_chain[:0] = list(layer.get(F_CAPABILITY_CERTS, ()))
        assertions[:0] = list(layer.get(F_ASSERTIONS, ()))

        inner = layers[depth + 1] if depth + 1 < len(layers) else None
        if inner is None:
            break
        if inner.get(F_DOWNSTREAM) != layer.signer:
            raise IntroductionError(
                f"path break: layer signed by {inner.signer} was addressed to "
                f"{inner.get(F_DOWNSTREAM)}, not to {layer.signer} who "
                f"forwarded it"
            )
        signer_cert = repository.lookup(inner.signer)
        fetched.append(signer_cert)
        user_certificate = signer_cert

    user_layer = layers[-1]
    request = user_layer.get(F_RES_SPEC)
    if not isinstance(request, ReservationRequest):
        raise SignallingError("innermost RAR carries no reservation spec")

    verified = VerifiedRAR(
        user=user_layer.signer,
        user_certificate=user_certificate if len(layers) > 1 else None,
        request=request,
        path=tuple(layer.signer for layer in reversed(layers)),
        capability_chain=tuple(capability_chain),
        assertions=tuple(assertions),
        depth=len(layers) - 1,
        introduced=tuple(fetched),
    )
    return verified, repository.queries - queries_before
