"""Tunnels: aggregate reservations with end-domain-only flow signalling.

"Support for tunnels allows an entity to request an aggregate end-to-end
reservation.  Users authorized to use this tunnel can then request
portions of this aggregate bandwidth by contacting just the two end
domains — the intermediate domains do not need to be contacted as long
[as] the total bandwidth remains less than the size of the tunnel." (§1)

Establishment rides on the hop-by-hop protocol; what makes the *direct*
source↔destination signalling channel possible afterwards is the identity
information the protocol propagates: the destination BB traced the path
and holds the source BB's certificate from the introduction chain
("because of this direct connection, it must be possible for the
end-domain to derive the identity of the source domain's BB", §6.4).

Scalability claim (benchmark C2): N flows over a k-domain path cost
``N * 2k`` messages per-flow but only ``2k + 4N`` with a tunnel.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, field

from repro.bb.reservations import ReservationRequest
from repro.core.agent import UserAgent
from repro.core.channel import ChannelRegistry, SecureChannel
from repro.core.hopbyhop import HopByHopProtocol, SignallingOutcome
from repro.crypto.dn import DistinguishedName
from repro.errors import ChannelError, TunnelError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.audit import ledger as obs_audit
from repro.obs.events import EventKind, ReasonCode

__all__ = ["Tunnel", "FlowAllocation", "TunnelService"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class FlowAllocation:
    """A slice of a tunnel granted to one flow."""

    allocation_id: str
    tunnel_id: str
    owner: DistinguishedName
    rate_mbps: float
    start: float
    end: float
    #: ``"tunnel"`` for a slice of the aggregate; ``"per-flow"`` when the
    #: direct end-domain signalling failed and the flow fell back to an
    #: ordinary hop-by-hop reservation (graceful degradation).
    via: str = "tunnel"


@dataclass
class Tunnel:
    """An established aggregate reservation between two end domains."""

    tunnel_id: str
    source_domain: str
    destination_domain: str
    capacity_mbps: float
    start: float
    end: float
    owner: DistinguishedName
    #: Per-domain reservation handles of the underlying aggregate.
    handles: dict[str, str] = field(default_factory=dict)
    #: DNs authorized to request slices (owner always is).
    authorized: set[DistinguishedName] = field(default_factory=set)
    allocations: dict[str, FlowAllocation] = field(default_factory=dict)
    #: The direct end-to-end signalling channel (source BB <-> dest BB).
    direct_channel: SecureChannel | None = None

    def allocated_mbps(self, start: float, end: float) -> float:
        """Peak allocation over [start, end).  Piecewise-constant sweep over
        allocation boundaries, like the admission controller.  Fallback
        (per-flow) allocations hold their own hop-by-hop reservations and
        do not consume tunnel capacity."""
        slices = [
            a for a in self.allocations.values() if a.via == "tunnel"
        ]
        points = {start}
        for a in slices:
            if a.end > start and a.start < end:
                points.add(max(a.start, start))
        peak = 0.0
        for p in points:
            load = sum(
                a.rate_mbps for a in slices
                if a.start <= p < a.end
            )
            peak = max(peak, load)
        return peak

    def headroom(self, start: float, end: float) -> float:
        return self.capacity_mbps - self.allocated_mbps(start, end)

    def may_allocate(self, who: DistinguishedName) -> bool:
        return who == self.owner or who in self.authorized


class TunnelService:
    """Tunnel establishment and intra-tunnel flow allocation."""

    def __init__(
        self, protocol: HopByHopProtocol, channels: ChannelRegistry
    ) -> None:
        self.protocol = protocol
        self.channels = channels
        self._tunnels: dict[str, Tunnel] = {}
        self._ids = itertools.count(1)
        self._alloc_ids = itertools.count(1)
        #: Hop-by-hop outcomes backing fallback (per-flow) allocations,
        #: keyed by allocation id — released with the allocation.
        self._fallbacks: dict[str, SignallingOutcome] = {}

    def get(self, tunnel_id: str) -> Tunnel:
        try:
            return self._tunnels[tunnel_id]
        except KeyError:
            raise TunnelError(f"unknown tunnel {tunnel_id!r}") from None

    # -- establishment ---------------------------------------------------------------

    def establish(
        self,
        user: UserAgent,
        request: ReservationRequest,
    ) -> tuple[Tunnel | None, SignallingOutcome]:
        """Reserve the aggregate hop-by-hop and, on success, open the direct
        source↔destination channel using the traced identity information."""
        tagged = request.with_attributes(tunnel=True)
        outcome = self.protocol.reserve(user, tagged)
        registry = obs_metrics.get_registry()
        if not outcome.granted:
            if registry is not None:
                registry.counter(
                    "tunnels_established_total",
                    "Tunnel establishment attempts, by result",
                ).inc(result="denied")
            logger.info(
                "tunnel %s->%s denied: %s",
                request.source_domain, request.destination_domain,
                outcome.denial_reason,
            )
            return None, outcome
        source_bb = self.protocol.brokers[request.source_domain]
        dest_bb = self.protocol.brokers[request.destination_domain]

        # The destination traced the path; the source BB's certificate is
        # among the introduced certificates (or, for adjacent domains, is
        # already the SLA peer certificate).
        direct: SecureChannel
        if self.channels.has(source_bb.dn, dest_bb.dn):
            direct = self.channels.between(source_bb.dn, dest_bb.dn)
        else:
            assert outcome.verified is not None
            introduced = {c.subject: c for c in outcome.verified.introduced}
            source_cert = introduced.get(source_bb.dn)
            if source_cert is None:
                raise TunnelError(
                    "destination could not derive the source BB identity from "
                    "the signalling path"
                )
            dest_bb.truststore.add_introduced_peer(source_cert)
            source_bb.truststore.add_introduced_peer(dest_bb.certificate)
            direct = self.channels.connect(source_bb, dest_bb)

        tunnel = Tunnel(
            tunnel_id=f"TUN-{next(self._ids):04d}",
            source_domain=request.source_domain,
            destination_domain=request.destination_domain,
            capacity_mbps=request.rate_mbps,
            start=request.start,
            end=request.end,
            owner=user.dn,
            handles=dict(outcome.handles),
            direct_channel=direct,
        )
        self._tunnels[tunnel.tunnel_id] = tunnel
        if registry is not None:
            registry.counter(
                "tunnels_established_total",
                "Tunnel establishment attempts, by result",
            ).inc(result="ok")
        logger.info(
            "established %s: %.1f Mb/s %s->%s",
            tunnel.tunnel_id, tunnel.capacity_mbps,
            tunnel.source_domain, tunnel.destination_domain,
        )
        return tunnel, outcome

    def authorize(self, tunnel_id: str, who: DistinguishedName) -> None:
        self.get(tunnel_id).authorized.add(who)

    # -- intra-tunnel flows -------------------------------------------------------------

    def allocate_flow(
        self,
        tunnel_id: str,
        user: UserAgent,
        rate_mbps: float,
        *,
        start: float | None = None,
        end: float | None = None,
    ) -> tuple[FlowAllocation, float, int]:
        """Allocate a slice by contacting ONLY the two end domains.

        Returns ``(allocation, signalling_latency_s, messages)``.  Raises
        :class:`~repro.errors.TunnelError` on authorization, window, or
        headroom failure.
        """
        registry = obs_metrics.get_registry()
        try:
            allocation, latency, messages = self._allocate_flow(
                tunnel_id, user, rate_mbps, start=start, end=end
            )
        except TunnelError as exc:
            if registry is not None:
                registry.counter(
                    "tunnel_flow_allocations_total",
                    "Intra-tunnel flow allocations, by result",
                ).inc(result="rejected")
            logger.info("flow allocation on %s rejected: %s", tunnel_id, exc)
            raise
        if registry is not None:
            registry.counter(
                "tunnel_flow_allocations_total",
                "Intra-tunnel flow allocations, by result",
            ).inc(result="ok")
            registry.gauge(
                "tunnel_allocations_active",
                "Live flow allocations per tunnel",
            ).set(len(self.get(tunnel_id).allocations), tunnel=tunnel_id)
        logger.debug(
            "allocated %s: %.1f Mb/s on %s (%d msgs)",
            allocation.allocation_id, rate_mbps, tunnel_id, messages,
        )
        return allocation, latency, messages

    def _allocate_flow(
        self,
        tunnel_id: str,
        user: UserAgent,
        rate_mbps: float,
        *,
        start: float | None = None,
        end: float | None = None,
    ) -> tuple[FlowAllocation, float, int]:
        tunnel = self.get(tunnel_id)
        start = tunnel.start if start is None else start
        end = tunnel.end if end is None else end
        if not tunnel.may_allocate(user.dn):
            raise TunnelError(f"{user.dn} is not authorized for {tunnel_id}")
        if start < tunnel.start or end > tunnel.end or end <= start:
            raise TunnelError(
                f"allocation window [{start}, {end}) outside tunnel window "
                f"[{tunnel.start}, {tunnel.end})"
            )
        if rate_mbps <= 0:
            raise TunnelError("allocation rate must be positive")
        headroom = tunnel.headroom(start, end)
        if rate_mbps > headroom + 1e-9:
            raise TunnelError(
                f"tunnel {tunnel_id} has {max(headroom, 0.0):.3f} Mb/s headroom, "
                f"requested {rate_mbps}"
            )
        # Signalling: user -> source BB, source BB -> dest BB (direct), and
        # the two replies.  Intermediate domains are never touched.
        source_bb = self.protocol.brokers[tunnel.source_domain]
        dest_bb = self.protocol.brokers[tunnel.destination_domain]
        user_channel = self.channels.connect(user, source_bb)
        direct = tunnel.direct_channel
        assert direct is not None
        messages = 0
        latency = 0.0
        legs = (
            (user_channel, user.dn, {"allocate": tunnel_id, "rate": rate_mbps}),
            (direct, source_bb.dn, {"allocate": tunnel_id, "rate": rate_mbps}),
            (direct, dest_bb.dn, {"ok": tunnel_id}),
            (user_channel, source_bb.dn, {"ok": tunnel_id}),
        )
        try:
            for channel, sender, payload in legs:
                _, extra_delay = channel.transmit_timed(sender, payload)
                messages += 1
                latency += channel.latency_s + extra_delay
        except ChannelError as exc:
            # Graceful degradation (§1): when the direct end-domain
            # exchange fails — a tunnel end-domain unreachable — the flow
            # falls back to ordinary per-flow hop-by-hop signalling
            # through the intermediate domains, which brings retries and
            # its own admission along.
            return self._fallback_per_flow(
                tunnel, user, rate_mbps, start=start, end=end,
                cause=exc, spent_latency_s=latency, spent_messages=messages,
            )
        latency += 2 * self.protocol.processing_delay_s

        allocation = FlowAllocation(
            allocation_id=f"ALC-{next(self._alloc_ids):05d}",
            tunnel_id=tunnel_id,
            owner=user.dn,
            rate_mbps=rate_mbps,
            start=start,
            end=end,
        )
        tunnel.allocations[allocation.allocation_id] = allocation
        return allocation, latency, messages

    def _fallback_per_flow(
        self,
        tunnel: Tunnel,
        user: UserAgent,
        rate_mbps: float,
        *,
        start: float,
        end: float,
        cause: ChannelError,
        spent_latency_s: float,
        spent_messages: int,
    ) -> tuple[FlowAllocation, float, int]:
        """Degrade gracefully: reserve the flow hop by hop instead.

        The per-flow reservation crosses every intermediate domain (losing
        the tunnel's message savings for this flow, keeping its service),
        is tracked against the allocation id, and is released with it."""
        logger.warning(
            "%s: direct end-domain signalling failed (%s); falling back to "
            "per-flow hop-by-hop", tunnel.tunnel_id, cause,
        )
        registry = obs_metrics.get_registry()
        if registry is not None:
            registry.counter(
                "tunnel_fallbacks_total",
                "Intra-tunnel flows degraded to per-flow signalling",
            ).inc(tunnel=tunnel.tunnel_id)
        # The degradation gets a correlation ID and a span of its own: the
        # FALLBACK event carries the ID, and the span links to the
        # per-flow reservation's trace once that has run.
        fallback_cid = obs_spans.mint_correlation_id()
        tracer = obs_spans.get_tracer()
        fallback_span = None
        if tracer is not None:
            fallback_span = tracer.begin(
                "tunnel_fallback",
                trace_id=fallback_cid,
                tunnel=tunnel.tunnel_id,
                cause=str(cause),
            )
        request = ReservationRequest(
            source_host=f"h0.{tunnel.source_domain}",
            destination_host=f"h0.{tunnel.destination_domain}",
            source_domain=tunnel.source_domain,
            destination_domain=tunnel.destination_domain,
            rate_mbps=rate_mbps,
            start=start,
            end=end,
        )
        with obs_events.correlation_scope(fallback_cid):
            event_log = obs_events.get_event_log()
            if event_log is not None:
                event_log.emit(
                    EventKind.FALLBACK, reason=str(cause),
                    target=tunnel.tunnel_id,
                    reason_code=ReasonCode.TUNNEL_DIRECT_FAILED,
                )
            obs_audit.record_decision(
                obs_audit.RecordKind.FALLBACK,
                domain=tunnel.source_domain, user=str(user.dn),
                reason=str(cause),
                reason_code=ReasonCode.TUNNEL_DIRECT_FAILED.value,
                rate_mbps=rate_mbps,
                tunnel=tunnel.tunnel_id,
            )
            outcome = self.protocol.reserve(user, request)
        if not outcome.granted:
            if tracer is not None and fallback_span is not None:
                tracer.end(
                    fallback_span, status="error",
                    error=outcome.denial_reason,
                    link=outcome.correlation_id,
                )
            raise TunnelError(
                f"tunnel {tunnel.tunnel_id} direct signalling failed "
                f"({cause}) and the per-flow fallback was denied by "
                f"{outcome.denial_domain}: {outcome.denial_reason}"
            ) from cause
        if tracer is not None and fallback_span is not None:
            tracer.end(fallback_span, link=outcome.correlation_id)
        allocation = FlowAllocation(
            allocation_id=f"ALC-{next(self._alloc_ids):05d}",
            tunnel_id=tunnel.tunnel_id,
            owner=user.dn,
            rate_mbps=rate_mbps,
            start=start,
            end=end,
            via="per-flow",
        )
        tunnel.allocations[allocation.allocation_id] = allocation
        self._fallbacks[allocation.allocation_id] = outcome
        return (
            allocation,
            spent_latency_s + outcome.latency_s,
            spent_messages + outcome.messages,
        )

    def release_flow(self, tunnel_id: str, allocation_id: str) -> None:
        tunnel = self.get(tunnel_id)
        if allocation_id not in tunnel.allocations:
            raise TunnelError(f"unknown allocation {allocation_id!r}")
        del tunnel.allocations[allocation_id]
        fallback = self._fallbacks.pop(allocation_id, None)
        if fallback is not None:
            self.protocol.cancel(fallback)
        registry = obs_metrics.get_registry()
        if registry is not None:
            registry.counter(
                "tunnel_flow_releases_total", "Flow allocations released",
            ).inc()
            registry.gauge(
                "tunnel_allocations_active",
                "Live flow allocations per tunnel",
            ).set(len(tunnel.allocations), tunnel=tunnel_id)
        logger.debug("released %s from %s", allocation_id, tunnel_id)

    def teardown(self, tunnel_id: str) -> None:
        """Cancel the aggregate reservation in every domain (plus any
        fallback per-flow reservations still alive)."""
        tunnel = self.get(tunnel_id)
        for allocation_id in list(tunnel.allocations):
            fallback = self._fallbacks.pop(allocation_id, None)
            if fallback is not None:
                self.protocol.cancel(fallback)
        for domain, handle in tunnel.handles.items():
            self.protocol.brokers[domain].cancel(handle)
        del self._tunnels[tunnel_id]
