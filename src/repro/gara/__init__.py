"""GARA-style uniform reservation API over network, CPU, and disk, with
all-or-nothing co-reservation (paper §3, Figures 5/6)."""

from repro.gara.api import GaraAPI, GaraReservation, ResourceSpec
from repro.gara.coreservation import CoReservation, CoReservationAgent
from repro.gara.resources import CPUManager, DiskManager, SlotReservation

__all__ = [
    "GaraAPI",
    "GaraReservation",
    "ResourceSpec",
    "CoReservation",
    "CoReservationAgent",
    "CPUManager",
    "DiskManager",
    "SlotReservation",
]
