"""The GARA-style uniform reservation API.

"GARA ... defines APIs that allows users and applications to manipulate
reservations of different resources in uniform ways" (§3).  One facade,
:class:`GaraAPI`, exposes ``reserve`` / ``modify`` / ``claim`` /
``cancel`` / ``status`` over three resource types:

* ``network`` — delegated to the hop-by-hop inter-BB protocol;
* ``cpu`` / ``disk`` — delegated to slot managers registered per domain.

Registering a CPU/disk manager also wires an online *linked-reservation
validator* into that domain's bandwidth broker, which is what lets a
network policy say ``HasValidCPUResv(RAR)`` (Figure 6, Policy File C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bb.reservations import ReservationRequest
from repro.core.agent import UserAgent
from repro.core.hopbyhop import HopByHopProtocol, SignallingOutcome
from repro.errors import GaraError, UnknownReservationError
from repro.gara.resources import CPUManager, DiskManager, _SlotManager

__all__ = ["ResourceSpec", "GaraReservation", "GaraAPI"]

_RESOURCE_TYPES = ("network", "cpu", "disk")


@dataclass(frozen=True)
class ResourceSpec:
    """A uniform resource request.

    ``network`` params: everything
    :class:`~repro.bb.reservations.ReservationRequest` takes.
    ``cpu`` params: ``domain``, ``cpus``, ``start``, ``end``.
    ``disk`` params: ``domain``, ``bandwidth_mbs``, ``start``, ``end``.
    """

    resource_type: str
    params: tuple[tuple[str, Any], ...]

    @classmethod
    def make(cls, resource_type: str, **params: Any) -> "ResourceSpec":
        if resource_type not in _RESOURCE_TYPES:
            raise GaraError(
                f"unknown resource type {resource_type!r}; "
                f"expected one of {_RESOURCE_TYPES}"
            )
        return cls(resource_type, tuple(sorted(params.items())))

    def param(self, name: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == name:
                return v
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(self.params)


@dataclass
class GaraReservation:
    """A uniform reservation record returned by :class:`GaraAPI`."""

    handle: str
    resource_type: str
    spec: ResourceSpec
    #: The network signalling outcome (network reservations only).
    outcome: SignallingOutcome | None = None
    #: Backend handle(s): per-domain for network, single for cpu/disk.
    backend_handles: dict[str, str] = field(default_factory=dict)
    state: str = "granted"


class GaraAPI:
    """Uniform reservations over network, CPU, and disk resources."""

    def __init__(self, network_protocol: HopByHopProtocol):
        self.network = network_protocol
        self._cpu: dict[str, CPUManager] = {}
        self._disk: dict[str, DiskManager] = {}
        self._reservations: dict[str, GaraReservation] = {}
        self._counter = 0

    # -- backend registration ------------------------------------------------------

    def _register_slots(self, registry: dict, manager: _SlotManager,
                        kind: str) -> None:
        if manager.domain in registry:
            raise GaraError(f"domain {manager.domain!r} already has a {kind} manager")
        registry[manager.domain] = manager
        broker = self.network.brokers.get(manager.domain)
        if broker is not None:
            broker.register_linked_validator(kind, manager.is_valid)

    def register_cpu_manager(self, manager: CPUManager) -> None:
        self._register_slots(self._cpu, manager, "cpu")

    def register_disk_manager(self, manager: DiskManager) -> None:
        self._register_slots(self._disk, manager, "disk")

    def cpu_manager(self, domain: str) -> CPUManager:
        try:
            return self._cpu[domain]
        except KeyError:
            raise GaraError(f"no CPU manager in domain {domain!r}") from None

    def disk_manager(self, domain: str) -> DiskManager:
        try:
            return self._disk[domain]
        except KeyError:
            raise GaraError(f"no disk manager in domain {domain!r}") from None

    # -- the uniform five operations --------------------------------------------------

    def reserve(self, user: UserAgent, spec: ResourceSpec) -> GaraReservation:
        """Reserve; raises :class:`GaraError` with the denial reason on
        failure (uniform across resource types)."""
        self._counter += 1
        handle = f"GARA-{self._counter:05d}"
        if spec.resource_type == "network":
            request = ReservationRequest(**spec.as_dict())
            outcome = self.network.reserve(user, request)
            if not outcome.granted:
                raise GaraError(
                    f"network reservation denied by {outcome.denial_domain}: "
                    f"{outcome.denial_reason}"
                )
            resv = GaraReservation(
                handle, "network", spec, outcome=outcome,
                backend_handles=dict(outcome.handles),
            )
        elif spec.resource_type == "cpu":
            manager = self.cpu_manager(spec.param("domain"))
            slot = manager.reserve(
                spec.param("cpus"), spec.param("start"), spec.param("end"),
                owner=user.dn,
            )
            resv = GaraReservation(
                handle, "cpu", spec, backend_handles={manager.domain: slot.handle}
            )
        elif spec.resource_type == "disk":
            manager = self.disk_manager(spec.param("domain"))
            slot = manager.reserve(
                spec.param("bandwidth_mbs"), spec.param("start"), spec.param("end"),
                owner=user.dn,
            )
            resv = GaraReservation(
                handle, "disk", spec, backend_handles={manager.domain: slot.handle}
            )
        else:  # pragma: no cover - ResourceSpec.make already guards
            raise GaraError(f"unknown resource type {spec.resource_type!r}")
        self._reservations[handle] = resv
        return resv

    def get(self, handle: str) -> GaraReservation:
        try:
            return self._reservations[handle]
        except KeyError:
            raise UnknownReservationError(f"no GARA reservation {handle!r}") from None

    def status(self, handle: str) -> str:
        return self.get(handle).state

    def claim(self, handle: str) -> GaraReservation:
        resv = self.get(handle)
        if resv.state != "granted":
            raise GaraError(f"{handle}: cannot claim from state {resv.state!r}")
        if resv.resource_type == "network":
            assert resv.outcome is not None
            self.network.claim(resv.outcome)
        elif resv.resource_type == "cpu":
            domain, backend = next(iter(resv.backend_handles.items()))
            self.cpu_manager(domain).claim(backend)
        else:
            domain, backend = next(iter(resv.backend_handles.items()))
            self.disk_manager(domain).claim(backend)
        resv.state = "active"
        return resv

    def cancel(self, handle: str) -> GaraReservation:
        resv = self.get(handle)
        if resv.state == "cancelled":
            raise GaraError(f"{handle}: already cancelled")
        if resv.resource_type == "network":
            assert resv.outcome is not None
            self.network.cancel(resv.outcome)
        elif resv.resource_type == "cpu":
            domain, backend = next(iter(resv.backend_handles.items()))
            self.cpu_manager(domain).cancel(backend)
        else:
            domain, backend = next(iter(resv.backend_handles.items()))
            self.disk_manager(domain).cancel(backend)
        resv.state = "cancelled"
        return resv

    def modify(self, handle: str, **changes: Any) -> GaraReservation:
        """Modify a cpu/disk reservation in place; network modifications are
        cancel-and-re-reserve at this API level (as in GARA's bandwidth
        broker, where a modify is a new admission decision)."""
        resv = self.get(handle)
        if resv.resource_type == "cpu":
            domain, backend = next(iter(resv.backend_handles.items()))
            self.cpu_manager(domain).modify(backend, amount=changes["cpus"])
            return resv
        if resv.resource_type == "disk":
            domain, backend = next(iter(resv.backend_handles.items()))
            self.disk_manager(domain).modify(
                backend, amount=changes["bandwidth_mbs"]
            )
            return resv
        raise GaraError(
            "network reservations are modified by cancel + re-reserve"
        )

    def network_handle(self, handle: str, domain: str) -> str:
        """The backend handle of a network reservation in *domain* — what a
        linked-reservation reference ('CPU_Reservation_ID=111') points at."""
        resv = self.get(handle)
        try:
            return resv.backend_handles[domain]
        except KeyError:
            raise GaraError(
                f"{handle} has no backend reservation in domain {domain!r}"
            ) from None
