"""All-or-nothing co-reservation across resource types.

"End-to-end performance guarantees typically require the co-reservation
of several distinct resources" (§1).  Figure 5 shows "the use of the GARA
API to couple a multi-domain network reservation with a CPU reservation
in domain C"; :meth:`CoReservationAgent.reserve_all` implements exactly
that coupling, including the linking of the CPU handle into the network
request so destination policies can check ``HasValidCPUResv(RAR)``.

Ordering matters: non-network resources are reserved first so their
handles exist when the network request is evaluated; on any failure,
everything already reserved is rolled back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.agent import UserAgent
from repro.errors import CoReservationError, GaraError
from repro.gara.api import GaraAPI, GaraReservation, ResourceSpec

__all__ = ["CoReservation", "CoReservationAgent"]


@dataclass
class CoReservation:
    """A bundle of reservations that live and die together."""

    reservations: list[GaraReservation] = field(default_factory=list)

    @property
    def handles(self) -> tuple[str, ...]:
        return tuple(r.handle for r in self.reservations)

    def by_type(self, resource_type: str) -> tuple[GaraReservation, ...]:
        return tuple(
            r for r in self.reservations if r.resource_type == resource_type
        )


class CoReservationAgent:
    """Coordinates multi-resource reservations through the GARA API."""

    def __init__(self, api: GaraAPI):
        self.api = api

    def reserve_all(
        self,
        user: UserAgent,
        specs: Sequence[ResourceSpec],
        *,
        link_into_network: bool = True,
    ) -> CoReservation:
        """Reserve every spec or nothing.

        With ``link_into_network`` (the Figure 5/6 coupling), handles of
        already-reserved cpu/disk resources are attached to each network
        spec as ``linked_reservations``, so destination policies can
        validate them online.
        """
        if not specs:
            raise CoReservationError("no resource specs given")
        non_network = [s for s in specs if s.resource_type != "network"]
        network = [s for s in specs if s.resource_type == "network"]
        bundle = CoReservation()
        try:
            for spec in non_network:
                bundle.reservations.append(self.api.reserve(user, spec))
            links: tuple[tuple[str, str], ...] = ()
            if link_into_network:
                links = tuple(
                    (r.resource_type, next(iter(r.backend_handles.values())))
                    for r in bundle.reservations
                )
            for spec in network:
                if links:
                    merged = spec.as_dict()
                    merged["linked_reservations"] = (
                        tuple(merged.get("linked_reservations", ())) + links
                    )
                    spec = ResourceSpec.make("network", **merged)
                bundle.reservations.append(self.api.reserve(user, spec))
        except GaraError as exc:
            self.release_all(bundle)
            raise CoReservationError(f"co-reservation failed: {exc}") from exc
        return bundle

    def claim_all(self, bundle: CoReservation) -> None:
        for resv in bundle.reservations:
            self.api.claim(resv.handle)

    def release_all(self, bundle: CoReservation) -> None:
        for resv in bundle.reservations:
            if resv.state != "cancelled":
                self.api.cancel(resv.handle)
