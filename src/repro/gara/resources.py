"""Non-network resource managers: CPU and disk.

GARA "provides advance reservations and end-to-end management for
quality of service on different types of resources, including networks,
CPUs, and disks" (§3).  The Figure 5/6 scenarios couple a network
reservation with a CPU reservation in the destination domain; these
managers supply that substrate with the same advance-reservation
semantics as the network brokers (time-slotted capacity, claimed/active
lifecycle), built on the shared admission machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bb.admission import CapacitySchedule
from repro.crypto.dn import DistinguishedName
from repro.errors import (
    AdmissionError,
    GaraError,
    ReservationStateError,
    UnknownReservationError,
)

__all__ = ["SlotReservation", "CPUManager", "DiskManager"]


@dataclass
class SlotReservation:
    """A reservation of `amount` units over [start, end)."""

    handle: str
    owner: DistinguishedName | None
    amount: float
    start: float
    end: float
    state: str = "granted"  # granted | active | cancelled | expired
    booking_id: int = 0

    def active_at(self, when: float) -> bool:
        return self.state in ("granted", "active") and self.start <= when < self.end


class _SlotManager:
    """Shared implementation: capacity over time + lifecycle."""

    kind = "generic"
    unit = "units"

    def __init__(self, name: str, capacity: float, *, domain: str = ""):
        self.name = name
        self.domain = domain
        self.schedule = CapacitySchedule(name, capacity)
        self._by_handle: dict[str, SlotReservation] = {}
        self._counter = 0

    @property
    def capacity(self) -> float:
        return self.schedule.capacity_mbps

    def available(self, start: float, end: float) -> float:
        return self.schedule.available(start, end)

    def reserve(
        self,
        amount: float,
        start: float,
        end: float,
        *,
        owner: DistinguishedName | None = None,
    ) -> SlotReservation:
        if amount <= 0:
            raise GaraError(f"{self.kind} reservation amount must be positive")
        if end <= start:
            raise GaraError("end must follow start")
        booking = self.schedule.book(start, end, amount, tag=self.kind)
        self._counter += 1
        handle = f"{self.kind.upper()}-{self.name}-{self._counter:05d}"
        resv = SlotReservation(
            handle, owner, amount, start, end, booking_id=booking.booking_id
        )
        self._by_handle[handle] = resv
        return resv

    def get(self, handle: str) -> SlotReservation:
        try:
            return self._by_handle[handle]
        except KeyError:
            raise UnknownReservationError(
                f"no {self.kind} reservation {handle!r}"
            ) from None

    def claim(self, handle: str) -> SlotReservation:
        resv = self.get(handle)
        if resv.state != "granted":
            raise ReservationStateError(
                f"{handle}: cannot claim from state {resv.state!r}"
            )
        resv.state = "active"
        return resv

    def cancel(self, handle: str) -> SlotReservation:
        resv = self.get(handle)
        if resv.state in ("cancelled", "expired"):
            raise ReservationStateError(f"{handle}: already {resv.state}")
        try:
            self.schedule.release(resv.booking_id)
        except AdmissionError:
            pass  # already released
        resv.state = "cancelled"
        return resv

    def modify(self, handle: str, *, amount: float) -> SlotReservation:
        """Change the reserved amount in place (GARA's modify operation):
        re-book atomically, keep the old reservation on failure."""
        resv = self.get(handle)
        if resv.state not in ("granted", "active"):
            raise ReservationStateError(
                f"{handle}: cannot modify from state {resv.state!r}"
            )
        if amount <= 0:
            raise GaraError("modified amount must be positive")
        self.schedule.release(resv.booking_id)
        try:
            booking = self.schedule.book(resv.start, resv.end, amount, tag=self.kind)
        except AdmissionError:
            # Restore the original booking; it must fit since we just freed it.
            restored = self.schedule.book(
                resv.start, resv.end, resv.amount, tag=self.kind
            )
            resv.booking_id = restored.booking_id
            raise
        resv.amount = amount
        resv.booking_id = booking.booking_id
        return resv

    def is_valid(self, handle: str, *, at_time: float | None = None) -> bool:
        resv = self._by_handle.get(handle)
        if resv is None:
            return False
        if at_time is not None:
            return resv.active_at(at_time)
        return resv.state in ("granted", "active")


class CPUManager(_SlotManager):
    """Advance reservation of CPUs on a compute resource."""

    kind = "cpu"
    unit = "cpus"


class DiskManager(_SlotManager):
    """Advance reservation of storage bandwidth (MB/s) on a disk system."""

    kind = "disk"
    unit = "MB/s"
