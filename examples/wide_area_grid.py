#!/usr/bin/env python3
"""A wide-area grid: everything at once on an ISP-hub topology.

Four stub domains (two universities, a national lab, a supercomputer
centre) buy transit from one backbone ISP — the common shape of 2001-era
research networking.  The scenario exercises the whole stack end to end:

1. a STARS-style reservation coordinator reserving for a user the remote
   brokers have never heard of;
2. a hop-by-hop reservation with ESnet capability delegation;
3. an aggregate tunnel for a 12-flow parallel transfer;
4. reserved EF traffic and a best-effort flood sharing the backbone on
   the packet-level simulator;
5. transitive billing of the whole affair.

Run:  python examples/wide_area_grid.py
"""

import random

from repro.accounting.billing import TransitiveBilling
from repro.core.testbed import build_star_testbed
from repro.net.flows import FlowSpec
from repro.net.packet import DSCP
from repro.net.trafficgen import CBRSource, PoissonSource


def main() -> None:
    testbed = build_star_testbed(
        "ISP", ["UniA", "UniB", "Lab", "HPC"], hosts_per_domain=2,
        inter_capacity_mbps=100.0,
    )
    print("Domains:", ", ".join(testbed.topology.domains()))
    print("Domain-level paths go through the hub: UniA -> ISP -> Lab\n")

    # --- 1. STARS coordinator ------------------------------------------------
    alice = testbed.add_user("UniA", "Alice")
    rc = testbed.coordinator("UniA")
    rc.enroll_user(alice)
    outcome = rc.reserve(
        alice,
        testbed.make_request(source="UniA", destination="Lab",
                             bandwidth_mbps=20.0),
    )
    print("1. STARS coordinator reservation UniA->Lab:",
          "granted" if outcome.complete else "failed")
    print(f"   handles: {sorted(outcome.handles.values())}")

    # --- 2. hop-by-hop with capability --------------------------------------
    cas = testbed.add_cas("ESnet")
    bob = testbed.add_user("UniB", "Bob")
    cas.grant(bob.dn, ["member"])
    bob.grid_login(cas, validity_s=30 * 24 * 3600.0)
    testbed.set_policy(
        "HPC",
        "If Issued_by(Capability) = ESnet\n    Return GRANT\nReturn DENY",
    )
    hop = testbed.reserve(
        bob, source="UniB", destination="HPC", bandwidth_mbps=30.0,
        attributes=(("flow_id", "bob-stream"),),
    )
    print(f"\n2. Hop-by-hop UniB->HPC with ESnet capability: "
          f"{'granted' if hop.granted else hop.denial_reason}")
    print(f"   capability chain length at HPC: "
          f"{len(hop.verified.capability_chain)} certificates")
    testbed.hop_by_hop.claim(hop)

    # --- 3. tunnel ------------------------------------------------------------
    # Alice needs the ESnet capability too now that HPC demands it.
    cas.grant(alice.dn, ["member"])
    alice.grid_login(cas, validity_s=30 * 24 * 3600.0)
    tunnel, t_outcome = testbed.tunnels.establish(
        alice,
        testbed.make_request(source="UniA", destination="HPC",
                             bandwidth_mbps=24.0),
    )
    for _ in range(12):
        testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 2.0)
    print(f"\n3. Tunnel {tunnel.tunnel_id} UniA->HPC: 12 x 2 Mb/s flows, "
          f"{tunnel.allocated_mbps(tunnel.start, tunnel.end):.0f}/"
          f"{tunnel.capacity_mbps:.0f} Mb/s used")

    # --- 4. traffic -------------------------------------------------------------
    CBRSource(
        testbed.network,
        FlowSpec("bob-stream", "h0.UniB", "h0.HPC", 28.0, dscp=DSCP.EF),
        stop_time=1.0,
    ).start()
    PoissonSource(
        testbed.network,
        FlowSpec("be-flood", "h1.UniB", "h1.HPC", 120.0),
        rng=random.Random(9),
        stop_time=1.0,
    ).start()
    testbed.sim.run()
    ef = testbed.network.stats_for("bob-stream")
    be = testbed.network.stats_for("be-flood")
    print("\n4. Traffic over the shared 100 Mb/s backbone link:")
    print(f"   reserved EF : {ef.goodput_mbps(1.0):6.2f} Mb/s "
          f"(loss {ef.loss_ratio * 100:4.1f}%)")
    print(f"   BE flood    : {be.goodput_mbps(1.0):6.2f} Mb/s "
          f"(loss {be.loss_ratio * 100:4.1f}%) of 120 offered")

    # --- 5. billing ----------------------------------------------------------------
    for broker in testbed.brokers.values():
        for sla in broker.slas_in.values():
            sla.price_per_mbps_hour = 2.0 if broker.domain == "ISP" else 1.0
    billing = TransitiveBilling(testbed.brokers, user_tariff_per_mbps_hour=0.5)
    run = billing.bill(hop)
    print("\n5. Transitive billing of Bob's 30 Mb/s hour:")
    for inv in run.invoices:
        print(f"   {inv.issuer:>5s} bills {inv.payer.split('CN=')[-1]:<28s} "
              f"{inv.amount:8.2f}  (own {inv.own_charge:6.2f} + "
              f"pass-through {inv.passed_through:6.2f})")
    assert TransitiveBilling.conservation_holds(run)
    print("   conservation: user payment == sum of domain charges ✓")


if __name__ == "__main__":
    main()
