#!/usr/bin/env python3
"""Quickstart: a three-domain testbed and one end-to-end reservation.

Builds the paper's Figure 2 scenario — Alice in domain A reserving
bandwidth to Charlie's domain C across intermediate domain B — using the
hop-by-hop inter-BB signalling protocol (Approach 2), then inspects the
signature chain that the destination verified.

Run:  python examples/quickstart.py
"""

from repro import build_linear_testbed
from repro.core.tracing import trace_approval_chain, trace_request_path


def main() -> None:
    # One call wires topologies, CAs, brokers, SLAs, trust and channels.
    testbed = build_linear_testbed(["A", "B", "C"])
    alice = testbed.add_user("A", "Alice")

    print("== Hop-by-hop end-to-end reservation (Approach 2) ==")
    outcome = testbed.reserve(
        alice, source="A", destination="C", bandwidth_mbps=10.0,
        start=0.0, duration=3600.0,
    )
    print(f"granted        : {outcome.granted}")
    print(f"domain path    : {' -> '.join(outcome.path)}")
    for domain in outcome.path:
        print(f"  handle in {domain} : {outcome.handles[domain]}")
    print(f"messages       : {outcome.messages}")
    print(f"latency        : {outcome.latency_s * 1000:.1f} ms")

    print("\n== Path traced from the nested signatures ==")
    trace = trace_request_path(outcome.final_rar)
    for signer, addressee in zip(trace.signers, trace.addressed_to):
        print(f"  {signer}  ->  {addressee}")
    print(f"  consistent: {trace.consistent}")

    print("\n== Approval chain (signed by each BB on the way back) ==")
    for signer, domain, handle in trace_approval_chain(outcome.approval):
        print(f"  {domain}: {handle}  signed by {signer}")

    print("\n== Claim: edge routers get configured ==")
    testbed.hop_by_hop.claim(outcome)
    from repro.net.packet import DSCP

    for router in ("edge.B.left", "edge.C.left"):
        policer = testbed.network.aggregate_policer(router, DSCP.EF)
        rate = policer.bucket.rate_bps / 1e6 if policer else 0.0
        print(f"  {router}: EF aggregate policer at {rate:.0f} Mb/s")

    print("\n== A second, oversized request is refused ==")
    big = testbed.reserve(
        alice, source="A", destination="C", bandwidth_mbps=500.0
    )
    print(f"granted: {big.granted}")
    print(f"denied by {big.denial_domain}: {big.denial_reason}")


if __name__ == "__main__":
    main()
