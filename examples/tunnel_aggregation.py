#!/usr/bin/env python3
"""Tunnels: one aggregate reservation, many cheap flows (paper §1, §6.4).

A physics collaboration runs many parallel transfers between the same two
end domains.  Reserving each flow end-to-end does not scale; instead the
collaboration establishes one 80 Mb/s tunnel A→E and each flow claims a
slice by contacting only the two end domains over the direct signalling
channel whose establishment the hop-by-hop protocol enabled (the
destination traced the source BB's identity from the signature chain).

Run:  python examples/tunnel_aggregation.py
"""

from repro import build_linear_testbed


def main() -> None:
    domains = ["A", "B", "C", "D", "E"]
    testbed = build_linear_testbed(domains)
    alice = testbed.add_user("A", "Alice")
    k = len(domains)

    print(f"== Establishing an 80 Mb/s tunnel across {k} domains ==")
    request = testbed.make_request(
        source="A", destination="E", bandwidth_mbps=80.0, duration=7200.0
    )
    tunnel, outcome = testbed.tunnels.establish(alice, request)
    print(f"tunnel          : {tunnel.tunnel_id}")
    print(f"setup messages  : {outcome.messages} (2 per domain)")
    print(f"direct channel  : {' <-> '.join(str(d) for d in tunnel.direct_channel.endpoints)}")

    # A colleague is authorized to draw from the tunnel too.
    bob = testbed.add_user("A", "Bob")
    testbed.tunnels.authorize(tunnel.tunnel_id, bob.dn)

    print("\n== 20 parallel flows, end-domain-only signalling ==")
    flow_messages = 0
    flow_latency = 0.0
    for i in range(20):
        user = alice if i % 2 == 0 else bob
        alloc, latency, messages = testbed.tunnels.allocate_flow(
            tunnel.tunnel_id, user, 4.0
        )
        flow_messages += messages
        flow_latency += latency
    print(f"per-flow messages : {flow_messages // 20} each, {flow_messages} total")
    print(f"mean flow latency : {flow_latency / 20 * 1000:.1f} ms")
    print(f"tunnel load       : {tunnel.allocated_mbps(tunnel.start, tunnel.end):.0f}"
          f" / {tunnel.capacity_mbps:.0f} Mb/s")

    print("\n== The 21st 4 Mb/s flow exceeds the aggregate and is refused ==")
    try:
        testbed.tunnels.allocate_flow(tunnel.tunnel_id, alice, 4.0)
    except Exception as exc:  # TunnelError
        print(f"refused: {exc}")

    print("\n== Comparison: the same 20 flows reserved individually ==")
    testbed2 = build_linear_testbed(domains)
    alice2 = testbed2.add_user("A", "Alice")
    total = 0
    for _ in range(20):
        o = testbed2.reserve(alice2, source="A", destination="E",
                             bandwidth_mbps=4.0)
        assert o.granted
        total += o.messages
    print(f"per-flow hop-by-hop: {total} messages "
          f"({2 * k} per flow) vs tunnel total "
          f"{outcome.messages + flow_messages}")
    print("Intermediate brokers B, C, D processed "
          f"{sum(len(testbed2.brokers[d].reservations.all()) for d in 'BCD')} "
          "reservations in the per-flow world, vs "
          f"{sum(len(testbed.brokers[d].reservations.all()) for d in 'BCD')} "
          "with the tunnel.")


if __name__ == "__main__":
    main()
