#!/usr/bin/env python3
"""Figure 4: the misreservation attack, on the DiffServ data plane.

David, a user in domain A, reserves premium bandwidth in domains A and B
but — maliciously or accidentally — never contacts domain C, even though
his traffic terminates there.  Domain C polices traffic aggregates, not
individual users: its ingress admits exactly the EF bandwidth its broker
admitted (Alice's 10 Mb/s).  When David's reserved-marked traffic arrives
on top of Alice's, the aggregate policer drops the excess blindly —
harming Alice, who did everything right.

The second half repeats the run with hop-by-hop signalling, where an
incomplete reservation is structurally impossible, and Alice's flow is
unharmed.

Run:  python examples/misreservation_attack.py
"""

import random

from repro import build_linear_testbed
from repro.net.flows import FlowSpec
from repro.net.packet import DSCP
from repro.net.trafficgen import PoissonSource

DURATION = 2.0  # seconds of simulated traffic


def run_traffic(testbed, flows):
    for seed, spec in enumerate(flows):
        PoissonSource(
            testbed.network, spec, rng=random.Random(seed), stop_time=DURATION
        ).start()
    testbed.sim.run()
    return {spec.flow_id: testbed.network.stats_for(spec.flow_id) for spec in flows}


def report(stats):
    for flow_id, st in stats.items():
        print(
            f"  {flow_id:<8s} sent {st.sent_packets:4d}  "
            f"delivered {st.delivered_packets:4d}  "
            f"dropped {st.dropped_packets:4d}  "
            f"goodput {st.goodput_mbps(DURATION):5.2f} Mb/s  "
            f"loss {st.loss_ratio * 100:5.1f}%"
        )


def scenario_source_domain() -> None:
    print("== Scenario 1: source-domain signalling, David skips domain C ==")
    testbed = build_linear_testbed(["A", "B", "C"])
    alice = testbed.add_user("A", "Alice")
    david = testbed.add_user("A", "David")
    testbed.introduce_user_to(alice, "B")
    testbed.introduce_user_to(alice, "C")
    testbed.introduce_user_to(david, "B")  # David never talks to C

    agent = testbed.end_to_end_agent
    a_req = testbed.make_request(
        source="A", destination="C", bandwidth_mbps=10.0,
        attributes=(("flow_id", "alice"),),
    )
    alice_outcome = agent.reserve(alice, a_req)
    print(f"  Alice reserved in : {sorted(alice_outcome.handles)} "
          f"(complete={alice_outcome.complete})")

    d_req = testbed.make_request(
        source="A", destination="C", bandwidth_mbps=10.0,
        source_host="h1.A", destination_host="h1.C",
        attributes=(("flow_id", "david"),),
    )
    david_outcome = agent.reserve(david, d_req, skip_domains={"C"})
    print(f"  David reserved in : {sorted(david_outcome.handles)} "
          f"(complete={david_outcome.complete})  <- misreservation!")

    agent.claim(alice_outcome)
    agent.claim(david_outcome)

    stats = run_traffic(testbed, [
        FlowSpec("alice", "h0.A", "h0.C", 10.0, dscp=DSCP.EF),
        FlowSpec("david", "h1.A", "h1.C", 10.0, dscp=DSCP.EF),
    ])
    report(stats)
    drops = testbed.network.total_drops("aggregate-policer")
    print(f"  EF aggregate drops at C's ingress: {drops}")
    print("  -> Alice loses packets although her reservation was complete.\n")


def scenario_hop_by_hop() -> None:
    print("== Scenario 2: hop-by-hop signalling (the paper's protocol) ==")
    testbed = build_linear_testbed(["A", "B", "C"])
    alice = testbed.add_user("A", "Alice")
    david = testbed.add_user("A", "David")

    a_req = testbed.make_request(
        source="A", destination="C", bandwidth_mbps=10.0,
        attributes=(("flow_id", "alice"),),
    )
    alice_outcome = testbed.hop_by_hop.reserve(alice, a_req)
    testbed.hop_by_hop.claim(alice_outcome)
    print(f"  Alice reserved in : {sorted(alice_outcome.handles)}")

    # David cannot skip a domain: the request either reaches C (which then
    # provisions for him) or fails entirely.  Suppose C denies David.
    testbed.set_policy("C", "If User = Alice\n    Return GRANT\nReturn DENY")
    d_req = testbed.make_request(
        source="A", destination="C", bandwidth_mbps=10.0,
        source_host="h1.A", destination_host="h1.C",
        attributes=(("flow_id", "david"),),
    )
    david_outcome = testbed.hop_by_hop.reserve(david, d_req)
    print(f"  David granted     : {david_outcome.granted} "
          f"(denied by {david_outcome.denial_domain}; partial path released)")

    stats = run_traffic(testbed, [
        FlowSpec("alice", "h0.A", "h0.C", 10.0, dscp=DSCP.EF),
        FlowSpec("david", "h1.A", "h1.C", 10.0, dscp=DSCP.EF),
    ])
    report(stats)
    print("  -> David's unreserved traffic is demoted at his first hop; "
          "Alice's EF flow is untouched.")


def main() -> None:
    scenario_source_domain()
    scenario_hop_by_hop()


if __name__ == "__main__":
    main()
