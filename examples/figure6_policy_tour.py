#!/usr/bin/env python3
"""The complete Figure 6 scenario, with the paper's policy files verbatim.

Three domains enforce three different policies, written in the paper's
own ``If ... Return GRANT`` syntax:

* BB-A: Alice only; during business hours capped at 10 Mb/s, otherwise up
  to the available bandwidth;
* BB-B: 10 Mb/s for members of group "Atlas" or holders of an ESnet
  capability;
* BB-C: requests of 5 Mb/s and above need an ESnet capability AND a valid
  CPU reservation in domain C.

Alice logs in to the ESnet CAS, co-reserves CPUs in domain C through the
GARA API, and makes the network reservation referring to the CPU handle —
exactly the request annotated in the figure:
``BW=10Mb/s, User=Alice, Capability of ESnet, CPU_Reservation_ID=...``.

Run:  python examples/figure6_policy_tour.py
"""

from repro import build_linear_testbed
from repro.gara.api import GaraAPI, ResourceSpec
from repro.gara.coreservation import CoReservationAgent
from repro.gara.resources import CPUManager

POLICY_A = """
# Policy File A (Figure 6)
If User = Alice
    If Time > 8am and Time < 5pm
        If BW <= 10Mb/s
            Return GRANT
        Else Return DENY
    Else if BW <= Avail_BW
        Return GRANT
    Else Return DENY
Return DENY
"""

POLICY_B = """
# Policy File B (Figure 6)
If Group = Atlas
    If BW <= 10Mb/s
        Return GRANT
If Issued_by(Capability) = ESnet
    If BW <= 10Mb/s
        Return GRANT
Return DENY
"""

POLICY_C = """
# Policy File C (Figure 6)
If BW >= 5Mb/s
    If Issued_by(Capability) = ESnet and HasValidCPUResv(RAR)
        Return GRANT
    Else Return DENY
Return GRANT
"""


def attempt(testbed, api, user, rate, *, cpu_handle=None, label):
    linked = (("cpu", cpu_handle),) if cpu_handle else ()
    request = testbed.make_request(
        source="A", destination="C", bandwidth_mbps=rate,
        linked_reservations=linked,
    )
    outcome = testbed.hop_by_hop.reserve(user, request)
    verdict = "GRANT" if outcome.granted else f"DENY at {outcome.denial_domain}"
    print(f"  {label:<52s} -> {verdict}")
    if not outcome.granted:
        print(f"      reason: {outcome.denial_reason}")
    else:
        testbed.hop_by_hop.cancel(outcome)
    return outcome


def main() -> None:
    testbed = build_linear_testbed(
        {"A": POLICY_A, "B": POLICY_B, "C": POLICY_C}
    )
    api = GaraAPI(testbed.hop_by_hop)
    api.register_cpu_manager(CPUManager("cluster-C", 64.0, domain="C"))

    alice = testbed.add_user("A", "Alice")
    bob = testbed.add_user("A", "Bob")

    # Alice logs into the ESnet community at grid-login.
    cas = testbed.add_cas("ESnet")
    cas.grant(alice.dn, ["member"])
    alice.grid_login(cas, validity_s=10 * 24 * 3600.0)
    print(f"Alice's ESnet credential: "
          f"{sorted(alice.credentials['ESnet'].capabilities)}")

    # A CPU reservation in domain C, made through the GARA API.
    cpu = api.reserve(
        alice,
        ResourceSpec.make("cpu", domain="C", cpus=16.0, start=0.0, end=3600.0),
    )
    cpu_handle = next(iter(cpu.backend_handles.values()))
    print(f"CPU reservation in C    : {cpu_handle}\n")

    # Simulated clock: 8 pm -> BB-A's off-hours branch applies.
    testbed.sim.run(until=20 * 3600.0)
    print("t = 8 pm (off business hours)")
    attempt(testbed, api, alice, 10.0, cpu_handle=cpu_handle,
            label="Alice, 10 Mb/s, ESnet capability, CPU resv")
    attempt(testbed, api, alice, 10.0,
            label="Alice, 10 Mb/s, ESnet capability, NO cpu resv")
    attempt(testbed, api, alice, 12.0, cpu_handle=cpu_handle,
            label="Alice, 12 Mb/s (over BB-B's 10 Mb/s cap)")
    attempt(testbed, api, alice, 4.0,
            label="Alice, 4 Mb/s (below BB-C's 5 Mb/s threshold)")
    attempt(testbed, api, bob, 10.0, cpu_handle=cpu_handle,
            label="Bob, 10 Mb/s (not Alice -> denied by BB-A)")

    # Figure 5/6 one-shot co-reservation: CPU + network, linked.
    print("\nCo-reservation through the GARA API (Figure 5):")
    agent = CoReservationAgent(api)
    bundle = agent.reserve_all(
        alice,
        [
            ResourceSpec.make("cpu", domain="C", cpus=8.0, start=0.0,
                              end=3600.0),
            ResourceSpec.make(
                "network",
                source_host="h0.A", destination_host="h0.C",
                source_domain="A", destination_domain="C",
                rate_mbps=10.0, start=0.0, end=3600.0,
            ),
        ],
    )
    for resv in bundle.reservations:
        print(f"  {resv.resource_type:<8s} {resv.handle} "
              f"-> {sorted(resv.backend_handles.values())}")
    agent.release_all(bundle)


if __name__ == "__main__":
    main()
