#!/usr/bin/env python3
"""Figure 7 walkthrough: capability certificates at each hop.

Reproduces the paper's §6.5 use scenario: the user obtains a capability
certificate from the ESnet Community Authorization Server at grid-login,
then requests a reservation from a host in domain A to a (virtual
reality) device in domain C.  The capability cascades — user → BB-A →
BB-B → BB-C — each step signed with the previous holder's private proxy
key and narrowed by a "valid for RAR" restriction, and the destination
runs the seven verification checks.

Run:  python examples/capability_delegation.py
"""

from repro import build_linear_testbed
from repro.crypto.capability import capability_set, restriction_set

POLICY_C = """
If Issued_by(Capability) = ESnet
    Return GRANT
Return DENY
"""


def describe(cert, index):
    print(f"  [{index}] Issuer : {cert.issuer}")
    print(f"      Subject: {cert.subject}")
    print(f"      Capabilities: {sorted(capability_set(cert))}")
    restrictions = sorted(restriction_set(cert))
    if restrictions:
        print(f"      Restrictions: {restrictions}")


def main() -> None:
    testbed = build_linear_testbed(["A", "B", "C"])
    testbed.set_policy("C", POLICY_C)
    alice = testbed.add_user("A", "Alice")

    print("== Grid-login: the CAS issues a capability certificate ==")
    cas = testbed.add_cas("ESnet")
    cas.grant(alice.dn, ["member"])
    credential = alice.grid_login(cas, validity_s=10 * 24 * 3600.0)
    describe(credential.certificate, 0)

    print("\n== Hop-by-hop reservation with delegation at every hop ==")
    request = testbed.make_request(
        source="A", destination="C", bandwidth_mbps=10.0
    )
    outcome = testbed.hop_by_hop.reserve(
        alice, request, restrictions=("valid-for:RAR",)
    )
    print(f"granted: {outcome.granted}")

    print("\n== Capability list received by BB-C (Figure 7, right column) ==")
    chain = outcome.verified.capability_chain
    for i, cert in enumerate(chain):
        describe(cert, i)

    print("\n== The destination's §6.5 checks ==")
    result = outcome.delegation
    print(f"  1. CAS issued the root capability        : "
          f"issuer = {result.issuer}")
    print(f"  2-4. every delegation signed with the previous proxy key : "
          f"holders = {[str(h.common_name) for h in result.holders]}")
    print(f"  5. BB-C proved possession of its private key  : yes "
          f"(chain verification included a nonce challenge)")
    print(f"  6. capabilities never widened, restrictions never dropped : "
          f"{sorted(result.capabilities)} / {sorted(result.restrictions)}")
    print(f"  7. the policy engine authorized using the capabilities   : "
          f"granted = {outcome.granted}")

    print("\n== A forged widening is rejected ==")
    from repro.crypto.capability import (
        EXT_CAPABILITIES, EXT_CAPABILITY_FLAG, EXT_RESTRICTIONS,
        ProxyCredential, verify_delegation_chain,
    )
    from repro.crypto.x509 import sign_certificate
    from repro.errors import DelegationError

    bb_b = testbed.brokers["B"]
    bb_c = testbed.brokers["C"]
    # BB-B tries to hand BB-C MORE capabilities than it holds.
    widened = sign_certificate(
        serial=999,
        issuer=chain[2].subject,
        subject=bb_c.dn,
        public_key=bb_c.keypair.public,
        signing_key=bb_b.keypair.private,
        extensions={
            EXT_CAPABILITY_FLAG: True,
            EXT_CAPABILITIES: ("ESnet:member", "ESnet:admin"),
            EXT_RESTRICTIONS: (),
        },
    )
    try:
        verify_delegation_chain(
            list(chain[:3]) + [widened],
            trusted_issuers={cas.name: cas.public_key},
        )
    except DelegationError as exc:
        print(f"rejected: {exc}")


if __name__ == "__main__":
    main()
